/**
 * @file
 * Design-space exploration engine: model-first scoring with a sharded
 * memo cache, seed-deterministic search strategies, and DES confirmation
 * of the frontier. See explorer.hpp for the determinism contract.
 */
#include "lognic/dse/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "lognic/core/model.hpp"
#include "lognic/dse/materialize.hpp"
#include "lognic/io/checkpoint.hpp"
#include "lognic/runner/replicator.hpp"
#include "lognic/runner/seed.hpp"
#include "lognic/runner/thread_pool.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::dse {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Counter-mode deterministic RNG over runner::derive_seed — platform
/// stable, and (being serial) independent of thread count.
class Rng {
  public:
    explicit Rng(std::uint64_t root) : root_(root) {}
    std::uint64_t next() { return runner::derive_seed(root_, counter_++); }
    std::size_t pick(std::size_t n)
    {
        return static_cast<std::size_t>(next() % n);
    }

  private:
    std::uint64_t root_;
    std::uint64_t counter_{0};
};

double
worst_p99_us(const core::Report& rep)
{
    double worst = 0.0;
    for (const auto& cls : rep.latency.per_class)
        worst = std::max(worst, cls.p99.micros());
    return worst;
}

double
metric_value(const std::string& name, const core::Report& rep, double cost)
{
    if (name == "capacity_gbps")
        return rep.throughput.capacity.gbps();
    if (name == "throughput_gbps")
        return rep.throughput.achieved.gbps();
    if (name == "mean_latency_us")
        return rep.latency.mean.micros();
    if (name == "p99_latency_us")
        return worst_p99_us(rep);
    if (name == "drop_rate")
        return rep.latency.max_drop_probability;
    if (name == "cost")
        return cost;
    throw std::invalid_argument(
        "dse: unknown metric '" + name
        + "' (capacity_gbps, throughput_gbps, mean_latency_us, "
          "p99_latency_us, drop_rate, cost)");
}

/**
 * Shared scoring tail of both the fresh and the incremental oracle:
 * objective extraction, quarantine, constraint checks. One body so the
 * two paths cannot drift (the "constraint violated" why string is pinned
 * by tests to the round-trip double formatter).
 */
void
score_report(Evaluation& eval, const DesignSpace& space, const Config& c,
             const core::Report& rep,
             const std::vector<ObjectiveSpec>& objectives,
             const std::vector<Constraint>& constraints)
{
    const double cost = space.cost(c);
    for (const ObjectiveSpec& o : objectives)
        eval.objectives.push_back(metric_value(o.name, rep, cost));
    eval.finite = all_finite(eval.objectives);
    if (!eval.finite) {
        eval.feasible = false;
        eval.why = "non-finite objective value (quarantined)";
        return;
    }
    for (const Constraint& con : constraints) {
        const double v = metric_value(con.metric, rep, cost);
        if (std::isfinite(v) && v >= con.lower && v <= con.upper)
            continue;
        eval.feasible = false;
        eval.why = "constraint violated: " + con.metric + " = "
                   + io::format_double(v);
        break;
    }
}

/**
 * Incremental oracle: patch the worker's cached scenario to @p c, rebuild
 * the core::Model only when the hardware epoch moved, and solve with the
 * worker's SolveScratch. Bit-identical to evaluate_config for every
 * config regardless of what the Materializer saw before (see
 * materialize.hpp for why).
 */
Evaluation
evaluate_with(const DesignSpace& space, Materializer& mat,
              std::optional<core::Model>& model, std::uint64_t& model_epoch,
              const Config& c, const std::vector<ObjectiveSpec>& objectives,
              const std::vector<Constraint>& constraints)
{
    Evaluation eval;
    try {
        const io::Scenario& sc = mat.scenario(c);
        if (!model || model_epoch != mat.hw_epoch()) {
            model.emplace(sc.hw);
            model_epoch = mat.hw_epoch();
        }
        const core::Report rep =
            model->estimate(sc.graph, sc.traffic, &mat.scratch());
        score_report(eval, space, c, rep, objectives, constraints);
    } catch (const std::exception& e) {
        eval.objectives.assign(objectives.size(), kNan);
        eval.finite = false;
        eval.feasible = false;
        eval.why = std::string("evaluation failed: ") + e.what();
    }
    return eval;
}

void
validate_inputs(const DesignSpace& space,
                const std::vector<ObjectiveSpec>& objectives,
                const std::vector<Constraint>& constraints,
                const ExploreOptions& opts)
{
    if (space.size() == 0)
        throw std::invalid_argument("dse: design space has no knobs");
    if (objectives.empty())
        throw std::invalid_argument("dse: at least one objective required");
    for (std::size_t i = 0; i < objectives.size(); ++i) {
        objective_from_name(objectives[i].name); // known-name check
        for (std::size_t j = i + 1; j < objectives.size(); ++j)
            if (objectives[i].name == objectives[j].name)
                throw std::invalid_argument("dse: duplicate objective '"
                                            + objectives[i].name + "'");
    }
    for (const Constraint& c : constraints)
        objective_from_name(c.metric); // known-name check
    if (opts.population == 0)
        throw std::invalid_argument("dse: population must be >= 1");
    if (opts.generations == 0)
        throw std::invalid_argument("dse: generations must be >= 1");
    if (opts.budget == 0)
        throw std::invalid_argument("dse: budget must be >= 1");
}

Config
random_config(const DesignSpace& space, Rng& rng)
{
    Config c(space.size());
    for (std::size_t k = 0; k < space.size(); ++k)
        c[k] = static_cast<std::uint32_t>(
            rng.pick(space.knob(k).values.size()));
    return c;
}

void
run_exhaustive(const DesignSpace& space, const ExploreOptions& opts,
               BatchEvaluator& ev)
{
    const std::uint64_t total = space.combinations();
    if (total > opts.exhaustive_limit)
        throw std::invalid_argument(
            "dse: exhaustive search over " + std::to_string(total)
            + " combinations exceeds the limit of "
            + std::to_string(opts.exhaustive_limit)
            + "; use the mutation or nsga2 strategy");
    std::vector<Config> batch;
    batch.reserve(static_cast<std::size_t>(total));
    Config c(space.size(), 0);
    for (std::uint64_t i = 0; i < total; ++i) {
        batch.push_back(c);
        // Mixed-radix odometer, last knob fastest.
        for (std::size_t k = space.size(); k-- > 0;) {
            if (++c[k] < space.knob(k).values.size())
                break;
            c[k] = 0;
        }
    }
    ev.run_batch(batch);
}

std::vector<std::uint64_t>
frontier_ids(const std::vector<ScoredConfig>& archive,
             const std::vector<Sense>& senses)
{
    std::vector<std::uint64_t> ids;
    for (std::size_t idx : pareto_frontier(archive, senses))
        ids.push_back(archive[idx].id);
    return ids;
}

void
run_mutation(const DesignSpace& space, const ExploreOptions& opts,
             const std::vector<Sense>& senses, BatchEvaluator& ev)
{
    Rng rng(opts.seed);
    std::vector<Config> batch;
    for (std::size_t i = 0; i < opts.population; ++i)
        batch.push_back(random_config(space, rng));
    ev.run_batch(batch);

    std::vector<std::uint64_t> previous;
    std::size_t stale = 0;
    while (ev.requests() < opts.budget && stale < 3) {
        const auto archive = ev.archive_vector();
        const auto frontier = pareto_frontier(archive, senses);
        std::vector<std::uint64_t> ids;
        for (std::size_t idx : frontier)
            ids.push_back(archive[idx].id);
        stale = ids == previous ? stale + 1 : 0;
        previous = ids;
        if (stale >= 3)
            break;

        batch.clear();
        // Local mutation: every ±1-level neighbor of every frontier
        // member. Stable frontier members re-propose the same neighbors
        // round after round — the memo cache absorbs the repeats (that is
        // the asserted >0 hit count).
        for (std::size_t idx : frontier) {
            const Config& c = archive[idx].config;
            for (std::size_t k = 0; k < space.size(); ++k) {
                if (c[k] > 0) {
                    Config n = c;
                    --n[k];
                    batch.push_back(std::move(n));
                }
                if (c[k] + 1 < space.knob(k).values.size()) {
                    Config n = c;
                    ++n[k];
                    batch.push_back(std::move(n));
                }
            }
        }
        // Random immigrants keep the climb from stalling in a local
        // niche.
        const std::size_t immigrants =
            std::max<std::size_t>(1, opts.population / 2);
        for (std::size_t i = 0; i < immigrants; ++i)
            batch.push_back(random_config(space, rng));
        ev.run_batch(batch);
    }
}

void
run_nsga2(const DesignSpace& space, const ExploreOptions& opts,
          const std::vector<Sense>& senses, BatchEvaluator& ev)
{
    Rng rng(opts.seed);
    std::vector<Config> seed_batch;
    for (std::size_t i = 0; i < opts.population; ++i)
        seed_batch.push_back(random_config(space, rng));
    std::vector<ScoredConfig> pop = ev.run_batch(seed_batch);

    const auto rank_and_crowd =
        [&](const std::vector<ScoredConfig>& members,
            std::vector<std::size_t>& rank, std::vector<double>& crowd) {
            const std::size_t kUnranked =
                std::numeric_limits<std::size_t>::max();
            rank.assign(members.size(), kUnranked);
            crowd.assign(members.size(), 0.0);
            const auto fronts = non_dominated_sort(members, senses);
            for (std::size_t f = 0; f < fronts.size(); ++f) {
                const auto dist =
                    crowding_distance(fronts[f], members, senses);
                for (std::size_t i = 0; i < fronts[f].size(); ++i) {
                    rank[fronts[f][i]] = f;
                    crowd[fronts[f][i]] = dist[i];
                }
            }
        };

    for (std::size_t gen = 0; gen < opts.generations; ++gen) {
        if (ev.requests() >= opts.budget)
            break;
        std::vector<std::size_t> rank;
        std::vector<double> crowd;
        rank_and_crowd(pop, rank, crowd);
        const auto tournament = [&]() {
            const std::size_t a = rng.pick(pop.size());
            const std::size_t b = rng.pick(pop.size());
            if (rank[a] != rank[b])
                return rank[a] < rank[b] ? a : b;
            if (crowd[a] != crowd[b])
                return crowd[a] > crowd[b] ? a : b;
            return a < b ? a : b;
        };
        std::vector<Config> offspring;
        for (std::size_t j = 0; j < opts.population; ++j) {
            const std::size_t p1 = tournament();
            const std::size_t p2 = tournament();
            Config child(space.size());
            for (std::size_t k = 0; k < space.size(); ++k)
                child[k] = rng.next() % 2 == 0 ? pop[p1].config[k]
                                               : pop[p2].config[k];
            for (std::size_t k = 0; k < space.size(); ++k)
                if (rng.pick(space.size()) == 0)
                    child[k] = static_cast<std::uint32_t>(
                        rng.pick(space.knob(k).values.size()));
            offspring.push_back(std::move(child));
        }
        std::vector<ScoredConfig> scored_q = ev.run_batch(offspring);

        // Environmental selection over P u Q: fill whole fronts, break
        // the overflowing front by crowding (ties to lower index), and
        // pad with quarantined/infeasible members only when eligible ones
        // run out.
        std::vector<ScoredConfig> merged = pop;
        merged.insert(merged.end(), scored_q.begin(), scored_q.end());
        const auto fronts = non_dominated_sort(merged, senses);
        std::vector<ScoredConfig> next;
        std::vector<bool> taken(merged.size(), false);
        for (const auto& front : fronts) {
            if (next.size() >= opts.population)
                break;
            if (next.size() + front.size() <= opts.population) {
                for (std::size_t i : front) {
                    next.push_back(merged[i]);
                    taken[i] = true;
                }
                continue;
            }
            const auto dist = crowding_distance(front, merged, senses);
            std::vector<std::size_t> order(front.size());
            for (std::size_t i = 0; i < order.size(); ++i)
                order[i] = i;
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          if (dist[a] != dist[b])
                              return dist[a] > dist[b];
                          return front[a] < front[b];
                      });
            for (std::size_t i : order) {
                if (next.size() >= opts.population)
                    break;
                next.push_back(merged[front[i]]);
                taken[front[i]] = true;
            }
        }
        for (std::size_t i = 0;
             i < merged.size() && next.size() < opts.population; ++i)
            if (!taken[i])
                next.push_back(merged[i]);
        pop = std::move(next);
    }
}

DesValidation
validate_with_des(const DesignSpace& space, const ScoredConfig& who,
                  const ExploreOptions& opts)
{
    DesValidation v;
    v.seed = runner::derive_seed(opts.seed, who.id);
    const io::Scenario sc = space.materialize(who.config);
    const core::Report model_rep =
        core::Model(sc.hw).estimate(sc.graph, sc.traffic);

    runner::Replicator rep(opts.des.replications, v.seed);
    const auto guarded = rep.run_guarded(
        [&](std::uint64_t seed) {
            sim::SimOptions so;
            so.duration = sim::SimTime{opts.des.duration};
            so.warmup_fraction = opts.des.warmup_fraction;
            so.seed = seed;
            return sim::NicSimulator(sc.hw, sc.graph, sc.traffic, so).run();
        },
        1 /* outer parallel_for already fans candidates out */);
    v.replications = guarded.stats.replications;
    v.ok = guarded.complete() && guarded.stats.replications > 0;
    if (!guarded.failed.empty())
        v.error = guarded.failed.front().error;
    v.delivered_gbps = guarded.stats.delivered_gbps.mean;
    v.mean_latency_us = guarded.stats.mean_latency_us.mean;
    v.p99_latency_us = guarded.stats.p99_latency_us.mean;
    v.drop_rate = guarded.stats.drop_rate.mean;

    const auto rel = [](double model, double des) {
        const double denom = std::max(std::fabs(des), 1e-9);
        return (model - des) / denom;
    };
    v.throughput_disagreement =
        rel(model_rep.throughput.achieved.gbps(), v.delivered_gbps);
    v.p99_disagreement = rel(worst_p99_us(model_rep), v.p99_latency_us);
    return v;
}

} // namespace

std::string
strategy_name(Strategy s)
{
    switch (s) {
    case Strategy::kExhaustive:
        return "exhaustive";
    case Strategy::kMutation:
        return "mutation";
    case Strategy::kNsga2:
        return "nsga2";
    }
    return "unknown";
}

Strategy
strategy_from_name(const std::string& name)
{
    if (name == "exhaustive")
        return Strategy::kExhaustive;
    if (name == "mutation")
        return Strategy::kMutation;
    if (name == "nsga2")
        return Strategy::kNsga2;
    throw std::invalid_argument("dse: unknown strategy '" + name
                                + "' (exhaustive, mutation, nsga2)");
}

ObjectiveSpec
objective_from_name(const std::string& name)
{
    if (name == "capacity_gbps" || name == "throughput_gbps")
        return ObjectiveSpec{name, Sense::kMaximize};
    if (name == "mean_latency_us" || name == "p99_latency_us"
        || name == "drop_rate" || name == "cost")
        return ObjectiveSpec{name, Sense::kMinimize};
    throw std::invalid_argument(
        "dse: unknown objective '" + name
        + "' (capacity_gbps, throughput_gbps, mean_latency_us, "
          "p99_latency_us, drop_rate, cost)");
}

Evaluation
evaluate_config(const DesignSpace& space, const Config& c,
                const std::vector<ObjectiveSpec>& objectives,
                const std::vector<Constraint>& constraints)
{
    Evaluation eval;
    try {
        const io::Scenario sc = space.materialize(c);
        const core::Report rep =
            core::Model(sc.hw).estimate(sc.graph, sc.traffic);
        score_report(eval, space, c, rep, objectives, constraints);
    } catch (const std::exception& e) {
        // A config the model rejects outright is quarantined like a
        // non-finite one: it carries no comparable objectives.
        eval.objectives.assign(objectives.size(), kNan);
        eval.finite = false;
        eval.feasible = false;
        eval.why = std::string("evaluation failed: ") + e.what();
    }
    return eval;
}

// --- BatchEvaluator -----------------------------------------------------------

BatchEvaluator::BatchEvaluator(const DesignSpace& space,
                               const std::vector<ObjectiveSpec>& objectives,
                               const std::vector<Constraint>& constraints,
                               const ExploreOptions& opts, Pruner* pruner)
    : space_(space), objectives_(objectives), constraints_(constraints),
      opts_(opts), pruner_(pruner),
      cache_(opts.cache_capacity, opts.cache_shards)
{
}

std::vector<ScoredConfig>
BatchEvaluator::run_batch(const std::vector<Config>& batch)
{
    struct Pending {
        std::string key;
        Config config;
        Evaluation eval;
        bool resolved{false}; ///< replayed or pruned: no solve needed
    };
    std::vector<std::string> keys(batch.size());
    std::map<std::string, Evaluation> hits;
    std::vector<Pending> pending;
    std::map<std::string, std::size_t> pending_index;

    for (std::size_t i = 0; i < batch.size(); ++i) {
        keys[i] = space_.canonical_key(batch[i]);
        if (auto hit = cache_.lookup(keys[i])) {
            hits.emplace(keys[i], *std::move(hit));
            continue;
        }
        if (pending_index.count(keys[i]) != 0)
            continue; // duplicate within the batch: one solve
        Pending p;
        p.key = keys[i];
        p.config = batch[i];
        // A journaled outcome replaces the *work*, never the counters:
        // the lookup above already recorded the miss, exactly as the
        // uninterrupted run would have. Replays also bypass the pruner,
        // which keeps journals portable across prune modes.
        p.resolved = opts_.resume_eval && opts_.resume_eval(p.key, p.eval);
        if (!p.resolved && pruner_ != nullptr) {
            if (auto r = pruner_->reject(p.config)) {
                // Provably infeasible: synthesize the Evaluation the
                // frontier machinery needs without spending a solve.
                // Infeasible-but-finite with NaN objectives is safe —
                // ineligible candidates' objectives are never compared
                // or reported — and keeps the quarantined/infeasible
                // report counters identical to an unpruned run.
                p.eval.objectives.assign(objectives_.size(), kNan);
                p.eval.feasible = false;
                p.eval.finite = true;
                p.eval.pruned = true;
                p.eval.why = std::move(r->why);
                p.resolved = true;
                ++pruned_;
                if (opts_.on_eval)
                    opts_.on_eval(p.key, p.eval);
            }
        }
        pending_index.emplace(p.key, pending.size());
        pending.push_back(std::move(p));
    }

    std::vector<std::size_t> to_compute;
    for (std::size_t i = 0; i < pending.size(); ++i)
        if (!pending[i].resolved)
            to_compute.push_back(i);
    solves_ += to_compute.size();

    // Contiguous chunks, one incremental Materializer (and epoch-keyed
    // core::Model) per chunk. Per-config results are bit-identical to
    // fresh evaluation whatever the chunk boundaries, so the split only
    // affects wall-clock, never bytes.
    const std::size_t workers = std::max<std::size_t>(1, opts_.threads);
    const std::size_t chunks = std::min(to_compute.size(), workers);
    runner::parallel_for(chunks, opts_.threads, [&](std::size_t chunk) {
        Materializer mat(space_);
        std::optional<core::Model> model;
        std::uint64_t model_epoch = 0;
        const std::size_t lo = chunk * to_compute.size() / chunks;
        const std::size_t hi = (chunk + 1) * to_compute.size() / chunks;
        for (std::size_t u = lo; u < hi; ++u) {
            Pending& p = pending[to_compute[u]];
            p.eval = evaluate_with(space_, mat, model, model_epoch, p.config,
                                   objectives_, constraints_);
            if (opts_.on_eval)
                opts_.on_eval(p.key, p.eval);
        }
    });
    for (const Pending& p : pending)
        cache_.insert(p.key, p.eval);

    std::vector<ScoredConfig> out(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto pit = pending_index.find(keys[i]);
        const Evaluation& eval = pit != pending_index.end()
                                     ? pending[pit->second].eval
                                     : hits.at(keys[i]);
        ScoredConfig s;
        s.id = io::fnv1a64(keys[i]);
        s.key = keys[i];
        s.config = batch[i];
        s.objectives = eval.objectives;
        s.feasible = eval.feasible;
        s.finite = eval.finite;
        s.pruned = eval.pruned;
        s.why = eval.why;
        archive_.emplace(s.key, s);
        out[i] = std::move(s);
    }
    return out;
}

std::vector<ScoredConfig>
BatchEvaluator::archive_vector() const
{
    std::vector<ScoredConfig> out;
    out.reserve(archive_.size());
    for (const auto& [key, scored] : archive_)
        out.push_back(scored);
    return out;
}

std::uint64_t
BatchEvaluator::requests() const
{
    const auto s = cache_.stats();
    return s.hits + s.misses;
}

io::LruCacheStats
BatchEvaluator::cache_stats() const
{
    return cache_.stats();
}

std::size_t
BatchEvaluator::archive_size() const
{
    return archive_.size();
}

FrontierReport
explore(const DesignSpace& space,
        const std::vector<ObjectiveSpec>& objectives,
        const std::vector<Constraint>& constraints,
        const ExploreOptions& opts, obs::MetricsRegistry* metrics)
{
    validate_inputs(space, objectives, constraints, opts);
    std::vector<Sense> senses;
    for (const ObjectiveSpec& o : objectives)
        senses.push_back(o.sense);

    std::optional<Pruner> pruner;
    if (opts.prune != PruneMode::kOff) {
        pruner.emplace(space, constraints);
        if (opts.prune == PruneMode::kExplain && opts.prune_log)
            opts.prune_log(pruner->explain());
    }

    BatchEvaluator ev(space, objectives, constraints, opts,
                      pruner ? &*pruner : nullptr);
    switch (opts.strategy) {
    case Strategy::kExhaustive:
        run_exhaustive(space, opts, ev);
        break;
    case Strategy::kMutation:
        run_mutation(space, opts, senses, ev);
        break;
    case Strategy::kNsga2:
        run_nsga2(space, opts, senses, ev);
        break;
    }

    const std::vector<ScoredConfig> archive = ev.archive_vector();
    // One O(N^2) dominance pass yields both the frontier and every
    // member's dominated count (previously recomputed at O(N) per entry).
    const DominanceSummary dom = dominance_summary(archive, senses);
    const std::vector<std::size_t>& frontier = dom.frontier;

    FrontierReport report;
    report.strategy = opts.strategy;
    report.seed = opts.seed;
    report.objectives = objectives;
    report.requests = ev.requests();
    report.evaluated = ev.archive_size();
    report.cache = ev.cache_stats();
    for (const ScoredConfig& s : archive) {
        if (!s.finite)
            ++report.quarantined;
        else if (!s.feasible)
            ++report.infeasible;
        // Archive flags, not live Pruner counters: journal replay
        // preserves them, so the count is resume-deterministic.
        if (s.pruned)
            ++report.pruned;
    }
    report.pruned_levels = pruner ? pruner->stats().levels_removed : 0;
    report.solves = ev.solves();
    report.frontier.resize(frontier.size());
    runner::parallel_for(
        frontier.size(), opts.threads, [&](std::size_t i) {
            const ScoredConfig& who = archive[frontier[i]];
            FrontierEntry entry;
            entry.id = who.id;
            entry.key = who.key;
            entry.config = who.config;
            entry.objectives = who.objectives;
            entry.dominated = dom.dominated[frontier[i]];
            if (opts.des.enabled && opts.des.replications > 0) {
                entry.des_validated = true;
                if (!opts.resume_des
                    || !opts.resume_des(who.key, entry.des)) {
                    entry.des = validate_with_des(space, who, opts);
                    if (opts.on_des)
                        opts.on_des(who.key, entry.des);
                }
            }
            report.frontier[i] = std::move(entry);
        });
    for (const FrontierEntry& entry : report.frontier)
        report.frontier_configs.push_back(space.config_json(entry.config));

    if (metrics != nullptr) {
        metrics->counter("dse.requests").add(report.requests);
        metrics->counter("dse.evaluations").add(report.evaluated);
        metrics->counter("dse.cache.hits").add(report.cache.hits);
        metrics->counter("dse.cache.misses").add(report.cache.misses);
        metrics->counter("dse.cache.evictions").add(report.cache.evictions);
        metrics->counter("dse.quarantined").add(report.quarantined);
        metrics->counter("dse.infeasible").add(report.infeasible);
        // Separate channels: the report JSON counters above are prune-
        // mode invariant; pruning accounting lives here.
        metrics->counter("dse.pruned.evals").add(report.pruned);
        metrics->counter("dse.pruned.levels").add(report.pruned_levels);
        metrics->counter("dse.solves").add(report.solves);
        metrics->counter("dse.frontier.size").add(report.frontier.size());
        std::uint64_t validated = 0;
        for (const FrontierEntry& entry : report.frontier)
            if (entry.des_validated)
                ++validated;
        metrics->counter("dse.des.validated").add(validated);
    }
    return report;
}

} // namespace lognic::dse
