/**
 * @file
 * Feasibility pruning: structural bound derivation, fixpoint domain
 * narrowing, and per-config provable rejection. See prune.hpp for the
 * soundness contract.
 */
#include "lognic/dse/prune.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "lognic/io/json.hpp"

namespace lognic::dse {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Split "vertex.<name>.parallelism"-style paths on dots.
std::vector<std::string>
split_path(const std::string& path)
{
    std::vector<std::string> parts;
    std::size_t begin = 0;
    while (begin <= path.size()) {
        const std::size_t dot = path.find('.', begin);
        if (dot == std::string::npos) {
            parts.push_back(path.substr(begin));
            break;
        }
        parts.push_back(path.substr(begin, dot - begin));
        begin = dot + 1;
    }
    return parts;
}

/// What a knob's declared path can structurally touch.
struct KnobClass {
    enum Kind {
        kUnknown,           ///< custom path; could touch anything
        kPlacement,         ///< scenario-rebuilding stratum knob
        kVertexParallelism, ///< one vertex's attainable-rate term
        kVertexQueue,       ///< latency only; no throughput term
        kTraffic,           ///< the offered ingress rate
        kLineRate,          ///< the line-rate term
        kInterface,         ///< the shared-interface term
        kMemory,            ///< the shared-memory term
        kIpCatalog,         ///< terms of every vertex bound to that IP
        kGraphOverhead,     ///< latency only; no throughput term
    };
    Kind kind{kUnknown};
    std::string target; ///< vertex or IP name where applicable
};

KnobClass
classify(const std::string& name)
{
    const auto parts = split_path(name);
    if (name == "placement.nf_chain")
        return {KnobClass::kPlacement, {}};
    if (parts.size() == 3 && parts[0] == "vertex") {
        if (parts[2] == "parallelism")
            return {KnobClass::kVertexParallelism, parts[1]};
        if (parts[2] == "queue_capacity")
            return {KnobClass::kVertexQueue, parts[1]};
        return {KnobClass::kUnknown, {}};
    }
    if (name == "traffic.rate_gbps")
        return {KnobClass::kTraffic, {}};
    if (name == "line_rate_gbps")
        return {KnobClass::kLineRate, {}};
    if (name == "interface_gbps")
        return {KnobClass::kInterface, {}};
    if (name == "memory_gbps")
        return {KnobClass::kMemory, {}};
    if (parts.size() >= 3 && parts[0] == "ip")
        return {KnobClass::kIpCatalog, parts[1]};
    if (parts.size() >= 2 && parts[0] == "graph"
        && parts.back() == "overhead_us")
        return {KnobClass::kGraphOverhead, {}};
    return {KnobClass::kUnknown, {}};
}

bool
is_throughput_metric(const std::string& metric)
{
    return metric == "capacity_gbps" || metric == "throughput_gbps";
}

std::string
violated(const std::string& metric, double value, bool exact)
{
    // exact: `value` IS the metric the oracle would compute; otherwise it
    // is a proven upper bound on it.
    return std::string("pruned: constraint violated: ") + metric
        + (exact ? " = " : " <= ") + io::format_double(value);
}

} // namespace

std::string
prune_mode_name(PruneMode m)
{
    switch (m) {
    case PruneMode::kOff:
        return "off";
    case PruneMode::kOn:
        return "on";
    case PruneMode::kExplain:
        return "explain";
    }
    return "unknown";
}

PruneMode
prune_mode_from_name(const std::string& name)
{
    if (name == "off")
        return PruneMode::kOff;
    if (name == "on")
        return PruneMode::kOn;
    if (name == "explain")
        return PruneMode::kExplain;
    throw std::invalid_argument("dse: unknown prune mode '" + name
                                + "' (off, on, explain)");
}

Pruner::Pruner(const DesignSpace& space,
               const std::vector<Constraint>& constraints)
    : space_(space), constraints_(constraints)
{
    removed_why_.resize(space_.size());
    for (std::size_t k = 0; k < space_.size(); ++k)
        removed_why_[k].resize(space_.knob(k).values.size());

    paths_recognized_ = true;
    for (std::size_t k = 0; k < space_.size(); ++k) {
        const Knob& knob = space_.knob(k);
        const KnobClass kc = classify(knob.name);
        if (knob.rebuilds_scenario) {
            if (kc.kind == KnobClass::kPlacement && rebuild_knob_ < 0)
                rebuild_knob_ = static_cast<int>(k);
            else
                paths_recognized_ = false; // unknown/second rebuild axis
            continue;
        }
        if (kc.kind == KnobClass::kUnknown)
            paths_recognized_ = false;
        if (kc.kind == KnobClass::kTraffic)
            traffic_knob_ = static_cast<int>(k);
    }

    const auto& classes = space_.base().traffic.classes();
    single_class_ = classes.size() == 1 && classes[0].weight == 1.0;

    if (traffic_knob_ >= 0) {
        // Read the offered rate back through the knob's own apply() so
        // the tabled Bandwidth is the bit pattern the oracle sees.
        const Knob& tk = space_.knob(static_cast<std::size_t>(traffic_knob_));
        for (double level : tk.values) {
            io::Scenario sc = space_.base();
            tk.apply(sc, level);
            offered_by_level_.push_back(sc.traffic.ingress_bandwidth());
        }
    } else {
        offered_const_ = space_.base().traffic.ingress_bandwidth();
    }

    build_term_tables();
    narrow_domains();
}

void
Pruner::build_term_tables()
{
    const std::size_t nstrata = rebuild_knob_ < 0
        ? 1
        : space_.knob(static_cast<std::size_t>(rebuild_knob_)).values.size();
    strata_.resize(nstrata);
    if (!single_class_ || !paths_recognized_)
        return; // every stratum stays opaque: cost-only pruning

    using TermKey = std::pair<int, std::string>;
    for (std::size_t s = 0; s < nstrata; ++s) {
        Stratum st;
        try {
            Config ref(space_.size(), 0);
            if (rebuild_knob_ >= 0)
                ref[static_cast<std::size_t>(rebuild_knob_)] =
                    static_cast<std::uint32_t>(s);
            const io::Scenario sc0 = space_.materialize(ref);
            const core::ThroughputEstimate est0 =
                core::estimate_throughput(sc0.graph, sc0.hw, sc0.traffic);

            // Structural dependence: which knobs can move which terms.
            std::map<TermKey, std::vector<std::size_t>> deps;
            for (std::size_t k = 0; k < space_.size(); ++k) {
                if (static_cast<int>(k) == rebuild_knob_)
                    continue;
                const KnobClass kc = classify(space_.knob(k).name);
                switch (kc.kind) {
                  case KnobClass::kVertexParallelism: {
                    const auto id = sc0.graph.find_vertex(kc.target);
                    if (!id)
                        throw std::runtime_error("vertex missing");
                    const auto kind =
                        sc0.graph.vertex(*id).kind
                                == core::VertexKind::kRateLimiter
                        ? core::TermKind::kRateLimit
                        : core::TermKind::kIpCompute;
                    deps[{static_cast<int>(kind), kc.target}].push_back(k);
                    break;
                  }
                  case KnobClass::kIpCatalog:
                    for (core::VertexId v = 0; v < sc0.graph.vertex_count();
                         ++v) {
                        const core::Vertex& vx = sc0.graph.vertex(v);
                        if (vx.kind == core::VertexKind::kIp
                            && sc0.hw.ip(vx.ip).name == kc.target)
                            deps[{static_cast<int>(
                                      core::TermKind::kIpCompute),
                                  vx.name}]
                                .push_back(k);
                    }
                    break;
                  case KnobClass::kLineRate:
                    deps[{static_cast<int>(core::TermKind::kLineRate),
                          "ingress/egress"}]
                        .push_back(k);
                    break;
                  case KnobClass::kInterface:
                    deps[{static_cast<int>(core::TermKind::kInterface),
                          "interface"}]
                        .push_back(k);
                    break;
                  case KnobClass::kMemory:
                    deps[{static_cast<int>(core::TermKind::kMemory),
                          "memory"}]
                        .push_back(k);
                    break;
                  default:
                    break; // traffic / queue / overhead: no throughput term
                }
            }

            // One sweep per dependent knob: re-run the model's own term
            // construction at each level (others pinned at the reference)
            // and read the term values back. Terms are independent across
            // knobs, so the single-knob sweep is exact at any setting of
            // the others.
            std::map<std::size_t, std::vector<std::map<TermKey, Bandwidth>>>
                sweeps;
            for (const auto& [key, knobs] : deps) {
                (void)key;
                for (std::size_t k : knobs) {
                    if (sweeps.count(k) != 0)
                        continue;
                    const Knob& knob = space_.knob(k);
                    auto& levels = sweeps[k];
                    for (double level : knob.values) {
                        io::Scenario scl = sc0;
                        knob.apply(scl, level);
                        const auto estl = core::estimate_throughput(
                            scl.graph, scl.hw, scl.traffic);
                        std::map<TermKey, Bandwidth> by_key;
                        for (const auto& t : estl.terms)
                            by_key.emplace(
                                TermKey{static_cast<int>(t.kind), t.name},
                                t.limit);
                        levels.push_back(std::move(by_key));
                    }
                }
            }

            st.terms_ok = true;
            st.complete = true;
            for (const auto& t : est0.terms) {
                const TermKey key{static_cast<int>(t.kind), t.name};
                const auto dit = deps.find(key);
                if (dit == deps.end() || dit->second.empty()) {
                    TermBound tb;
                    tb.kind = t.kind;
                    tb.name = t.name;
                    tb.constant = t.limit;
                    st.terms.push_back(std::move(tb));
                    continue;
                }
                if (dit->second.size() > 1) {
                    // Two knobs move this term jointly; no single-knob
                    // table is exact. The term drops out of the min(),
                    // which only weakens the bound.
                    st.complete = false;
                    continue;
                }
                const std::size_t k = dit->second.front();
                TermBound tb;
                tb.kind = t.kind;
                tb.name = t.name;
                tb.knob = static_cast<int>(k);
                for (const auto& by_key : sweeps.at(k))
                    tb.by_level.push_back(by_key.at(key));
                st.terms.push_back(std::move(tb));
            }
        } catch (const std::exception&) {
            // A stratum whose skeleton the model rejects stays opaque:
            // the real oracle would quarantine its configs, which the
            // pruner must never preempt.
            st = Stratum{};
        }
        strata_[s] = std::move(st);
    }
}

const Pruner::Stratum&
Pruner::stratum_of(const Config& c) const
{
    if (rebuild_knob_ < 0)
        return strata_.front();
    return strata_.at(c[static_cast<std::size_t>(rebuild_knob_)]);
}

std::optional<Bandwidth>
Pruner::capacity_bound(const Config& c) const
{
    const Stratum& st = stratum_of(c);
    if (!st.terms_ok || st.terms.empty())
        return std::nullopt;
    Bandwidth m = st.terms.front().at(c);
    for (std::size_t i = 1; i < st.terms.size(); ++i)
        m = std::min(m, st.terms[i].at(c));
    return m;
}

Bandwidth
Pruner::offered(const Config& c) const
{
    if (traffic_knob_ < 0)
        return offered_const_;
    return offered_by_level_.at(c[static_cast<std::size_t>(traffic_knob_)]);
}

bool
Pruner::level_alive(std::size_t knob, std::size_t level) const
{
    return removed_why_[knob][level].empty();
}

bool
Pruner::level_removed(std::size_t knob, std::uint32_t level) const
{
    return !removed_why_.at(knob).at(level).empty();
}

std::optional<PruneReason>
Pruner::reject(const Config& c)
{
    space_.validate(c);
    for (const Constraint& con : constraints_) {
        if (con.metric == "cost") {
            // DesignSpace::cost is what the oracle feeds the constraint
            // check — same summation order, bit-identical double.
            const double v = space_.cost(c);
            if (std::isfinite(v) && (v < con.lower || v > con.upper)) {
                ++stats_.rejected;
                return PruneReason{con.metric, v, true,
                                   violated(con.metric, v, true)};
            }
            continue;
        }
        if (!is_throughput_metric(con.metric))
            continue; // latency / drop-rate bounds need a solve
        const auto cap = capacity_bound(c);
        if (!cap)
            continue;
        const Stratum& st = stratum_of(c);
        Bandwidth bound = *cap;
        if (con.metric == "throughput_gbps")
            bound = std::min(bound, offered(c));
        const double v = bound.gbps();
        if (!std::isfinite(v))
            continue;
        if (v < con.lower) {
            // Real metric <= v < lower; exact when the term set is
            // complete (v IS the metric then).
            ++stats_.rejected;
            return PruneReason{con.metric, v, st.complete,
                               violated(con.metric, v, st.complete)};
        }
        if (st.complete && v > con.upper) {
            ++stats_.rejected;
            return PruneReason{con.metric, v, true,
                               violated(con.metric, v, true)};
        }
    }
    ++stats_.admitted;
    return std::nullopt;
}

void
Pruner::narrow_domains()
{
    const std::size_t n = space_.size();
    const auto surviving = [&](std::size_t k) {
        std::vector<std::size_t> out;
        for (std::size_t l = 0; l < removed_why_[k].size(); ++l)
            if (level_alive(k, l))
                out.push_back(l);
        return out;
    };
    const auto remove = [&](std::size_t k, std::size_t l, std::string why) {
        removed_why_[k][l] = std::move(why);
    };

    // Capacity/throughput bound over the subspace {c_k = l} of stratum s:
    // per term, the level value for knob k, the max over surviving levels
    // for other tabled knobs, constants as-is.
    const auto subspace_bound = [&](std::size_t s, std::size_t k,
                                    std::size_t l, bool use_offered,
                                    bool maximize) -> std::optional<double> {
        const Stratum& st = strata_[s];
        if (!st.terms_ok || st.terms.empty())
            return std::nullopt;
        if (!maximize && !st.complete)
            return std::nullopt; // a true lower bound needs every term
        std::optional<Bandwidth> m;
        const auto fold = [&](Bandwidth b) {
            m = m ? std::min(*m, b) : b;
        };
        for (const TermBound& t : st.terms) {
            if (t.knob < 0) {
                fold(t.constant);
                continue;
            }
            const auto tk = static_cast<std::size_t>(t.knob);
            if (tk == k) {
                fold(t.by_level[l]);
                continue;
            }
            std::optional<Bandwidth> ext;
            for (std::size_t tl : surviving(tk)) {
                const Bandwidth b = t.by_level[tl];
                if (!ext || (maximize ? b > *ext : b < *ext))
                    ext = b;
            }
            if (!ext)
                return std::nullopt; // knob emptied; nothing to prove
            fold(*ext);
        }
        if (use_offered) {
            if (traffic_knob_ < 0) {
                fold(offered_const_);
            } else if (static_cast<std::size_t>(traffic_knob_) == k) {
                fold(offered_by_level_[l]);
            } else {
                std::optional<Bandwidth> ext;
                for (std::size_t tl :
                     surviving(static_cast<std::size_t>(traffic_knob_))) {
                    const Bandwidth b = offered_by_level_[tl];
                    if (!ext || (maximize ? b > *ext : b < *ext))
                        ext = b;
                }
                if (!ext)
                    return std::nullopt;
                fold(*ext);
            }
        }
        if (!m)
            return std::nullopt;
        return m->gbps();
    };

    bool changed = true;
    while (changed && stats_.fixpoint_rounds < 64) {
        changed = false;
        ++stats_.fixpoint_rounds;
        for (const Constraint& con : constraints_) {
            if (con.metric == "cost") {
                // Separable interval pass: each level plus the extreme
                // contributions of every other knob.
                std::vector<double> mins(n, 0.0), maxs(n, 0.0);
                bool empty = false;
                for (std::size_t k = 0; k < n; ++k) {
                    const Knob& knob = space_.knob(k);
                    double mn = kInf, mx = -kInf;
                    for (std::size_t l : surviving(k)) {
                        const double v = knob.values[l] * knob.cost_weight;
                        mn = std::min(mn, v);
                        mx = std::max(mx, v);
                    }
                    if (mn > mx) {
                        empty = true;
                        break;
                    }
                    mins[k] = mn;
                    maxs[k] = mx;
                }
                if (empty)
                    continue;
                double sum_min = 0.0, sum_max = 0.0;
                for (std::size_t k = 0; k < n; ++k) {
                    sum_min += mins[k];
                    sum_max += maxs[k];
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const Knob& knob = space_.knob(k);
                    for (std::size_t l : surviving(k)) {
                        const double v = knob.values[l] * knob.cost_weight;
                        const double lb = v + (sum_min - mins[k]);
                        const double ub = v + (sum_max - maxs[k]);
                        if (lb > con.upper) {
                            remove(k, l,
                                   "cost >= " + io::format_double(lb)
                                       + " > upper bound "
                                       + io::format_double(con.upper));
                            changed = true;
                        } else if (ub < con.lower) {
                            remove(k, l,
                                   "cost <= " + io::format_double(ub)
                                       + " < lower bound "
                                       + io::format_double(con.lower));
                            changed = true;
                        }
                    }
                }
                continue;
            }
            if (!is_throughput_metric(con.metric))
                continue;
            const bool use_offered = con.metric == "throughput_gbps";
            const auto strata_alive = [&]() {
                std::vector<std::size_t> out;
                if (rebuild_knob_ < 0) {
                    out.push_back(0);
                    return out;
                }
                return surviving(static_cast<std::size_t>(rebuild_knob_));
            };
            for (std::size_t k = 0; k < n; ++k) {
                const bool is_rebuild =
                    static_cast<int>(k) == rebuild_knob_;
                for (std::size_t l : surviving(k)) {
                    // A cell dies only when provably infeasible in every
                    // surviving stratum it can appear in.
                    bool all_upper = true, all_lower = true;
                    bool any = false;
                    double worst_ub = -kInf, worst_lb = kInf;
                    for (std::size_t s : strata_alive()) {
                        if (is_rebuild && s != l)
                            continue;
                        any = true;
                        const auto ub =
                            subspace_bound(s, k, l, use_offered, true);
                        if (!ub || !(*ub < con.lower))
                            all_upper = false;
                        else
                            worst_ub = std::max(worst_ub, *ub);
                        const auto lb = subspace_bound(s, k, l, use_offered,
                                                       false);
                        if (!lb || !(*lb > con.upper))
                            all_lower = false;
                        else
                            worst_lb = std::min(worst_lb, *lb);
                    }
                    if (!any)
                        continue;
                    if (all_upper) {
                        remove(k, l,
                               con.metric + " <= "
                                   + io::format_double(worst_ub)
                                   + " < lower bound "
                                   + io::format_double(con.lower));
                        changed = true;
                    } else if (all_lower) {
                        remove(k, l,
                               con.metric + " >= "
                                   + io::format_double(worst_lb)
                                   + " > upper bound "
                                   + io::format_double(con.upper));
                        changed = true;
                    }
                }
            }
        }
    }

    stats_.levels_removed = 0;
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t l = 0; l < removed_why_[k].size(); ++l)
            if (!level_alive(k, l))
                ++stats_.levels_removed;
}

std::string
Pruner::explain() const
{
    std::ostringstream os;
    os << "prune: " << constraints_.size() << " constraint(s) over "
       << space_.size() << " knob(s), " << strata_.size() << " stratum(-a), "
       << stats_.levels_removed << " level(s) removed in "
       << stats_.fixpoint_rounds << " fixpoint round(s)\n";
    for (const Constraint& con : constraints_) {
        os << "  constraint " << con.metric << " in ["
           << io::format_double(con.lower) << ", "
           << io::format_double(con.upper) << "]";
        if (con.metric == "cost")
            os << " (separable: exact)";
        else if (is_throughput_metric(con.metric))
            os << " (term tables"
               << (con.metric == "throughput_gbps" ? " + offered rate"
                                                   : "")
               << ")";
        else
            os << " (needs a solve; never pruned)";
        os << "\n";
    }
    for (std::size_t s = 0; s < strata_.size(); ++s) {
        const Stratum& st = strata_[s];
        os << "  stratum " << s << ": "
           << (st.terms_ok
                   ? (st.complete ? "all terms bounded"
                                  : "partially bounded (one-sided)")
                   : "opaque (cost-only pruning)");
        if (st.terms_ok) {
            os << ", " << st.terms.size() << " term(s):";
            for (const TermBound& t : st.terms) {
                os << " " << core::to_string(t.kind) << "[" << t.name << "]";
                if (t.knob >= 0)
                    os << "<-"
                       << space_.knob(static_cast<std::size_t>(t.knob)).name;
            }
        }
        os << "\n";
    }
    for (std::size_t k = 0; k < space_.size(); ++k) {
        const Knob& knob = space_.knob(k);
        std::size_t alive = 0;
        for (std::size_t l = 0; l < knob.values.size(); ++l)
            if (level_alive(k, l))
                ++alive;
        os << "  knob " << knob.name << ": " << alive << "/"
           << knob.values.size() << " level(s) survive\n";
        for (std::size_t l = 0; l < knob.values.size(); ++l)
            if (!level_alive(k, l))
                os << "    level " << io::format_double(knob.values[l])
                   << " removed: " << removed_why_[k][l] << "\n";
    }
    return os.str();
}

} // namespace lognic::dse
