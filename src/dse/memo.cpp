#include "lognic/dse/memo.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "lognic/io/checkpoint.hpp"

namespace lognic::dse {

MemoCache::MemoCache(std::size_t capacity, std::size_t shards)
{
    if (capacity == 0)
        throw std::invalid_argument("MemoCache: capacity must be > 0");
    if (shards == 0)
        throw std::invalid_argument("MemoCache: shards must be > 0");
    const std::size_t per_shard = std::max<std::size_t>(1, capacity / shards);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.emplace_back(per_shard);
}

std::size_t
MemoCache::shard_of(const std::string& key) const
{
    return static_cast<std::size_t>(io::fnv1a64(key) % shards_.size());
}

std::optional<Evaluation>
MemoCache::lookup(const std::string& key)
{
    return shards_[shard_of(key)].lookup(key);
}

void
MemoCache::insert(const std::string& key, Evaluation value)
{
    shards_[shard_of(key)].insert(key, std::move(value));
}

io::LruCacheStats
MemoCache::stats() const
{
    io::LruCacheStats total;
    for (const auto& shard : shards_) {
        total.hits += shard.stats().hits;
        total.misses += shard.stats().misses;
        total.evictions += shard.stats().evictions;
    }
    return total;
}

std::size_t
MemoCache::size() const
{
    std::size_t n = 0;
    for (const auto& shard : shards_)
        n += shard.size();
    return n;
}

} // namespace lognic::dse
