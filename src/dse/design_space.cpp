#include "lognic/dse/design_space.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "lognic/apps/nf_chain.hpp"
#include "lognic/calib/parameter_space.hpp"
#include "lognic/io/checkpoint.hpp"

namespace lognic::dse {
namespace {

[[noreturn]] void
bad_knob(const std::string& path, const std::string& why)
{
    throw std::invalid_argument("design space knob '" + path + "': " + why);
}

void
validate_levels(const std::string& path, const std::vector<double>& values)
{
    if (values.empty())
        bad_knob(path, "needs at least one level");
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (!std::isfinite(values[i]))
            bad_knob(path, "levels must be finite");
        if (i > 0 && values[i] <= values[i - 1])
            bad_knob(path, "levels must be strictly increasing");
    }
}

void
validate_integer_levels(const std::string& path,
                        const std::vector<double>& values, double minimum)
{
    for (double v : values) {
        if (v != std::floor(v))
            bad_knob(path, "levels must be integers");
        if (v < minimum)
            bad_knob(path,
                     "levels must be >= " + std::to_string(
                                                static_cast<long long>(minimum)));
    }
}

/// Split "vertex.<name>.parallelism"-style paths on dots.
std::vector<std::string>
split_path(const std::string& path)
{
    std::vector<std::string> parts;
    std::size_t begin = 0;
    while (begin <= path.size()) {
        const std::size_t dot = path.find('.', begin);
        if (dot == std::string::npos) {
            parts.push_back(path.substr(begin));
            break;
        }
        parts.push_back(path.substr(begin, dot - begin));
        begin = dot + 1;
    }
    return parts;
}

/// Resolve a calib::ParameterSpace catalog path against the base scenario
/// and return its setter. Validation (unknown IP/ceiling/vertex, malformed
/// indices) happens here, with calib's own error messages.
std::function<void(calib::Candidate&, double)>
resolve_catalog_setter(const io::Scenario& base, const std::string& path,
                       const std::vector<double>& values)
{
    calib::ParameterSpace probe(calib::Candidate{base.hw, {base.graph}});
    double lower = values.front();
    double upper = values.back();
    if (lower >= upper)
        upper = lower + std::max(1.0, std::fabs(lower));
    const std::size_t idx = probe.add(path, lower, upper);
    return probe.parameter(idx).set;
}

} // namespace

DesignSpace::DesignSpace(io::Scenario base) : base_(std::move(base)) {}

std::optional<std::size_t>
DesignSpace::find(const std::string& name) const
{
    for (std::size_t i = 0; i < knobs_.size(); ++i)
        if (knobs_[i].name == name)
            return i;
    return std::nullopt;
}

std::size_t
DesignSpace::add(const std::string& path, std::vector<double> values,
                 double cost_weight)
{
    Knob k;
    k.name = path;
    k.cost_weight = cost_weight;
    const std::vector<std::string> parts = split_path(path);

    if (path == "placement.nf_chain") {
        if (values.empty())
            for (std::size_t i = 0; i < apps::all_placements().size(); ++i)
                values.push_back(static_cast<double>(i));
        validate_levels(path, values);
        validate_integer_levels(path, values, 0.0);
        const std::size_t count = apps::all_placements().size();
        if (values.back() >= static_cast<double>(count))
            bad_knob(path, "placement index out of range (0.."
                               + std::to_string(count - 1) + ")");
        k.values = std::move(values);
        k.rebuilds_scenario = true;
        k.apply = [](io::Scenario& sc, double v) {
            const auto built = apps::make_nf_chain(
                apps::all_placements().at(static_cast<std::size_t>(v)));
            sc.hw = built.hw;
            sc.graph = built.graph;
        };
        return add_custom(std::move(k));
    }

    validate_levels(path, values);

    if (parts.size() == 3 && parts[0] == "vertex") {
        const std::string vertex_name = parts[1];
        if (!base_.graph.find_vertex(vertex_name))
            bad_knob(path, "no vertex named '" + vertex_name
                               + "' in the base graph");
        validate_integer_levels(path, values, 1.0);
        if (values.back() > std::numeric_limits<std::uint32_t>::max())
            bad_knob(path, "level out of range");
        k.values = std::move(values);
        k.base_bound = true;
        k.patch = PatchScope::kVertexParams;
        k.patch_vertex = vertex_name;
        const bool is_parallelism = parts[2] == "parallelism";
        if (!is_parallelism && parts[2] != "queue_capacity")
            bad_knob(path, "unknown vertex field '" + parts[2]
                               + "' (parallelism, queue_capacity)");
        k.apply = [vertex_name, is_parallelism, path](io::Scenario& sc,
                                                      double v) {
            const auto id = sc.graph.find_vertex(vertex_name);
            if (!id)
                bad_knob(path, "vertex '" + vertex_name
                                   + "' missing at apply time");
            auto& params = sc.graph.vertex(*id).params;
            if (is_parallelism)
                params.parallelism = static_cast<std::uint32_t>(v);
            else
                params.queue_capacity = static_cast<std::uint32_t>(v);
        };
        return add_custom(std::move(k));
    }

    if (path == "traffic.rate_gbps") {
        if (values.front() <= 0.0)
            bad_knob(path, "levels must be > 0");
        k.values = std::move(values);
        k.patch = PatchScope::kTraffic;
        k.apply = [](io::Scenario& sc, double v) {
            sc.traffic.set_ingress_bandwidth(Bandwidth::from_gbps(v));
        };
        return add_custom(std::move(k));
    }

    // Everything else is a hardware-catalog / graph-overhead path,
    // resolved (and rejected by name) by calib::ParameterSpace.
    auto set = resolve_catalog_setter(base_, path, values);
    k.values = std::move(values);
    k.base_bound = parts[0] == "ip" || parts[0] == "graph";
    k.patch = PatchScope::kCatalog;
    k.apply = [set = std::move(set)](io::Scenario& sc, double v) {
        calib::Candidate c{std::move(sc.hw), {}};
        c.graphs.push_back(std::move(sc.graph));
        set(c, v);
        sc.hw = std::move(c.hw);
        sc.graph = std::move(c.graphs.front());
    };
    return add_custom(std::move(k));
}

std::size_t
DesignSpace::add_custom(Knob k)
{
    if (k.name.empty())
        throw std::invalid_argument("design space knob: name must be "
                                    "non-empty");
    if (find(k.name))
        bad_knob(k.name, "duplicate knob");
    validate_levels(k.name, k.values);
    if (!k.apply)
        bad_knob(k.name, "apply function must be set");
    if (k.rebuilds_scenario && k.base_bound)
        bad_knob(k.name, "a knob cannot both rebuild the scenario and "
                         "bind base-scenario names");
    for (const Knob& other : knobs_) {
        if (k.rebuilds_scenario && other.base_bound)
            bad_knob(k.name, "rebuilds the scenario but knob '" + other.name
                                 + "' is bound to base-scenario names");
        if (k.base_bound && other.rebuilds_scenario)
            bad_knob(k.name, "bound to base-scenario names but knob '"
                                 + other.name + "' rebuilds the scenario");
    }
    knobs_.push_back(std::move(k));
    return knobs_.size() - 1;
}

std::uint64_t
DesignSpace::combinations() const
{
    std::uint64_t total = 1;
    for (const Knob& k : knobs_) {
        const std::uint64_t n = k.values.size();
        if (total > std::numeric_limits<std::uint64_t>::max() / n)
            return std::numeric_limits<std::uint64_t>::max();
        total *= n;
    }
    return total;
}

void
DesignSpace::validate(const Config& c) const
{
    if (c.size() != knobs_.size())
        throw std::invalid_argument(
            "design space config: expected " + std::to_string(knobs_.size())
            + " levels, got " + std::to_string(c.size()));
    for (std::size_t i = 0; i < c.size(); ++i)
        if (c[i] >= knobs_[i].values.size())
            throw std::invalid_argument(
                "design space config: level " + std::to_string(c[i])
                + " out of range for knob '" + knobs_[i].name + "'");
}

io::Scenario
DesignSpace::materialize(const Config& c) const
{
    validate(c);
    io::Scenario sc = base_;
    // Rebuild knobs first: they replace hw + graph, and every other knob
    // was checked compatible with (or independent of) the rebuilt state.
    for (std::size_t i = 0; i < c.size(); ++i)
        if (knobs_[i].rebuilds_scenario)
            knobs_[i].apply(sc, knobs_[i].values[c[i]]);
    for (std::size_t i = 0; i < c.size(); ++i)
        if (!knobs_[i].rebuilds_scenario)
            knobs_[i].apply(sc, knobs_[i].values[c[i]]);
    return sc;
}

double
DesignSpace::cost(const Config& c) const
{
    validate(c);
    double total = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i)
        total += knobs_[i].values[c[i]] * knobs_[i].cost_weight;
    return total;
}

std::string
DesignSpace::canonical_key(const Config& c) const
{
    validate(c);
    std::string key;
    for (std::size_t i = 0; i < c.size(); ++i) {
        key += knobs_[i].name;
        key += '=';
        key += io::double_to_hex(knobs_[i].values[c[i]]);
        key += ';';
    }
    return key;
}

std::uint64_t
DesignSpace::fingerprint(const Config& c) const
{
    return io::fnv1a64(canonical_key(c));
}

io::Json
DesignSpace::config_json(const Config& c) const
{
    validate(c);
    io::Json out;
    for (std::size_t i = 0; i < c.size(); ++i)
        out.set(knobs_[i].name, io::Json(knobs_[i].values[c[i]]));
    return out;
}

} // namespace lognic::dse
