#include "lognic/dse/report.hpp"

#include <cstdio>

#include "lognic/io/checkpoint.hpp"

namespace lognic::dse {
namespace {

std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4g", v);
    return buf;
}

io::Json
des_to_json(const DesValidation& v)
{
    io::Json j;
    j.set("ok", io::Json(v.ok));
    if (!v.error.empty())
        j.set("error", io::Json(v.error));
    j.set("seed", io::Json(io::u64_to_hex(v.seed)));
    j.set("replications", io::Json(static_cast<double>(v.replications)));
    j.set("delivered_gbps", io::Json(v.delivered_gbps));
    j.set("mean_latency_us", io::Json(v.mean_latency_us));
    j.set("p99_latency_us", io::Json(v.p99_latency_us));
    j.set("drop_rate", io::Json(v.drop_rate));
    j.set("throughput_disagreement", io::Json(v.throughput_disagreement));
    j.set("p99_disagreement", io::Json(v.p99_disagreement));
    return j;
}

} // namespace

io::Json
frontier_report_to_json(const FrontierReport& report)
{
    io::Json j;
    j.set("schema", io::Json(kFrontierReportSchema));
    j.set("strategy", io::Json(strategy_name(report.strategy)));
    j.set("seed", io::Json(io::u64_to_hex(report.seed)));

    io::Json objectives{io::JsonArray{}};
    for (const ObjectiveSpec& o : report.objectives) {
        io::Json obj;
        obj.set("name", io::Json(o.name));
        obj.set("sense", io::Json(o.sense == Sense::kMaximize ? "max"
                                                              : "min"));
        objectives.push_back(std::move(obj));
    }
    j.set("objectives", std::move(objectives));

    io::Json search;
    search.set("requests", io::Json(static_cast<double>(report.requests)));
    search.set("evaluated", io::Json(static_cast<double>(report.evaluated)));
    search.set("quarantined",
               io::Json(static_cast<double>(report.quarantined)));
    search.set("infeasible",
               io::Json(static_cast<double>(report.infeasible)));
    j.set("search", std::move(search));

    io::Json cache;
    cache.set("hits", io::Json(static_cast<double>(report.cache.hits)));
    cache.set("misses", io::Json(static_cast<double>(report.cache.misses)));
    cache.set("evictions",
              io::Json(static_cast<double>(report.cache.evictions)));
    j.set("cache", std::move(cache));

    io::Json frontier{io::JsonArray{}};
    for (std::size_t i = 0; i < report.frontier.size(); ++i) {
        const FrontierEntry& e = report.frontier[i];
        io::Json entry;
        entry.set("id", io::Json(io::u64_to_hex(e.id)));
        entry.set("key", io::Json(e.key));
        if (i < report.frontier_configs.size())
            entry.set("config", report.frontier_configs[i]);
        io::Json levels{io::JsonArray{}};
        for (std::uint32_t level : e.config)
            levels.push_back(io::Json(static_cast<double>(level)));
        entry.set("levels", std::move(levels));
        io::Json objs{io::JsonArray{}};
        for (std::size_t k = 0; k < e.objectives.size(); ++k) {
            io::Json o;
            o.set("name", io::Json(report.objectives[k].name));
            o.set("value", io::Json(e.objectives[k]));
            objs.push_back(std::move(o));
        }
        entry.set("objectives", std::move(objs));
        entry.set("dominated", io::Json(static_cast<double>(e.dominated)));
        entry.set("des_validated", io::Json(e.des_validated));
        if (e.des_validated)
            entry.set("des", des_to_json(e.des));
        frontier.push_back(std::move(entry));
    }
    j.set("frontier", std::move(frontier));
    return j;
}

std::string
render(const FrontierReport& report)
{
    std::string out;
    out += "design-space exploration (" + strategy_name(report.strategy)
           + ", seed " + io::u64_to_hex(report.seed) + ")\n";
    out += "  oracle requests " + std::to_string(report.requests)
           + ", unique configs " + std::to_string(report.evaluated)
           + ", cache hits " + std::to_string(report.cache.hits)
           + ", misses " + std::to_string(report.cache.misses) + "\n";
    out += "  quarantined " + std::to_string(report.quarantined)
           + ", infeasible " + std::to_string(report.infeasible) + "\n";
    out += "  Pareto frontier: " + std::to_string(report.frontier.size())
           + " configs\n";
    for (std::size_t i = 0; i < report.frontier.size(); ++i) {
        const FrontierEntry& e = report.frontier[i];
        out += "   [" + std::to_string(i) + "] "
               + io::u64_to_hex(e.id).substr(0, 10);
        for (std::size_t k = 0; k < e.objectives.size(); ++k)
            out += "  " + report.objectives[k].name + "="
                   + fmt(e.objectives[k]);
        out += "  dominates " + std::to_string(e.dominated);
        if (e.des_validated) {
            out += e.des.ok ? "  [des ok" : "  [des FAILED";
            if (e.des.ok)
                out += ", tput delta "
                       + fmt(100.0 * e.des.throughput_disagreement)
                       + "%, p99 delta "
                       + fmt(100.0 * e.des.p99_disagreement) + "%";
            out += "]";
        }
        out += "\n";
        if (i < report.frontier_configs.size())
            out += "       " + report.frontier_configs[i].dump(-1) + "\n";
    }
    return out;
}

} // namespace lognic::dse
