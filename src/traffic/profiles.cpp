#include "lognic/traffic/profiles.hpp"

#include <stdexcept>

namespace lognic::traffic {

std::vector<Bytes>
standard_packet_sizes()
{
    return {Bytes{64.0},  Bytes{128.0},  Bytes{256.0},
            Bytes{512.0}, Bytes{1024.0}, Bytes{1500.0}};
}

core::TrafficProfile
fixed_size(Bytes packet, Bandwidth offered)
{
    return core::TrafficProfile::fixed(packet, offered);
}

core::TrafficProfile
equal_byte_mix(const std::vector<Bytes>& sizes, Bandwidth offered)
{
    std::vector<core::PacketClass> classes;
    classes.reserve(sizes.size());
    for (Bytes s : sizes)
        classes.push_back(core::PacketClass{s, 1.0});
    return core::TrafficProfile::mixed(std::move(classes), offered);
}

core::TrafficProfile
panic_profile(int index, Bandwidth offered)
{
    switch (index) {
      case 1:
        return equal_byte_mix({Bytes{64.0}, Bytes{512.0}}, offered);
      case 2:
        return equal_byte_mix({Bytes{64.0}, Bytes{512.0}, Bytes{1024.0}},
                              offered);
      case 3:
        return equal_byte_mix(
            {Bytes{64.0}, Bytes{256.0}, Bytes{512.0}, Bytes{1500.0}}, offered);
      case 4:
        return equal_byte_mix({Bytes{64.0}, Bytes{128.0}, Bytes{256.0},
                               Bytes{1024.0}, Bytes{1500.0}},
                              offered);
      default:
        throw std::invalid_argument(
            "panic_profile: index must be in [1, 4]");
    }
}

} // namespace lognic::traffic
