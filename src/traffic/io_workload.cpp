#include "lognic/traffic/io_workload.hpp"

#include <stdexcept>

namespace lognic::traffic {

IoWorkload
random_read_4k(std::uint32_t depth)
{
    return IoWorkload{"4KB-RRD", Bytes::from_kib(4.0), 1.0, true, depth};
}

IoWorkload
random_read_128k(std::uint32_t depth)
{
    return IoWorkload{"128KB-RRD", Bytes::from_kib(128.0), 1.0, true, depth};
}

IoWorkload
sequential_write_4k(std::uint32_t depth)
{
    return IoWorkload{"4KB-SWR", Bytes::from_kib(4.0), 0.0, false, depth};
}

IoWorkload
random_mixed_4k(double read_fraction, std::uint32_t depth)
{
    if (read_fraction < 0.0 || read_fraction > 1.0)
        throw std::invalid_argument(
            "random_mixed_4k: read fraction must be in [0, 1]");
    return IoWorkload{"4KB-MIXED", Bytes::from_kib(4.0), read_fraction, true,
                      depth};
}

} // namespace lognic::traffic
