#include "lognic/traffic/trace.hpp"

#include <map>
#include <random>
#include <stdexcept>

namespace lognic::traffic {

Bandwidth
PacketTrace::mean_bandwidth() const
{
    if (sizes.empty())
        return Bandwidth{0.0};
    double total = 0.0;
    for (Bytes s : sizes)
        total += s.bytes();
    const double mean_size = total / static_cast<double>(sizes.size());
    return Bandwidth::from_bytes_per_sec(mean_size * mean_rate.per_sec());
}

PacketTrace
synthesize_trace(const core::TrafficProfile& profile, std::size_t count,
                 std::uint64_t seed)
{
    if (count == 0)
        throw std::invalid_argument("synthesize_trace: empty trace");
    // Packet-count weights from the byte weights.
    std::vector<double> pps;
    double total_pps = 0.0;
    for (const auto& c : profile.classes()) {
        const double rate = c.weight
            * profile.ingress_bandwidth().bytes_per_sec()
            / c.size.bytes();
        pps.push_back(rate);
        total_pps += rate;
    }
    std::mt19937_64 rng(seed);
    std::discrete_distribution<std::size_t> pick(pps.begin(), pps.end());

    PacketTrace trace;
    trace.sizes.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        trace.sizes.push_back(profile.classes()[pick(rng)].size);
    trace.mean_rate = OpsRate{total_pps};
    return trace;
}

core::TrafficProfile
histogram_profile(const PacketTrace& trace, std::size_t max_classes)
{
    if (trace.sizes.empty())
        throw std::invalid_argument("histogram_profile: empty trace");
    if (trace.mean_rate.per_sec() <= 0.0)
        throw std::invalid_argument("histogram_profile: zero arrival rate");

    std::map<double, std::size_t> counts;
    for (Bytes s : trace.sizes)
        ++counts[s.bytes()];
    if (counts.size() > max_classes)
        throw std::invalid_argument(
            "histogram_profile: too many distinct sizes (bucket first)");

    double total_bytes = 0.0;
    for (const auto& [size, n] : counts)
        total_bytes += size * static_cast<double>(n);

    std::vector<core::PacketClass> classes;
    for (const auto& [size, n] : counts) {
        classes.push_back(core::PacketClass{
            Bytes{size}, size * static_cast<double>(n) / total_bytes});
    }
    return core::TrafficProfile::mixed(std::move(classes),
                                       trace.mean_bandwidth());
}

} // namespace lognic::traffic
