#include "lognic/sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lognic::sim {

void
LatencyRecorder::record(SimTime completion_time, Seconds latency)
{
    // Measurement window is (warmup_end, horizon]: the warmup instant
    // itself is excluded, matching the simulator's area accounting.
    if (completion_time <= warmup_end_)
        return;
    samples_.push_back(latency.seconds());
    sorted_ = false;
}

void
LatencyRecorder::seal()
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

std::optional<Seconds>
LatencyRecorder::mean() const
{
    if (samples_.empty())
        return std::nullopt;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return Seconds{sum / static_cast<double>(samples_.size())};
}

std::optional<Seconds>
LatencyRecorder::quantile(double q) const
{
    if (q < 0.0 || q > 1.0)
        throw std::invalid_argument("LatencyRecorder: quantile out of range");
    if (samples_.empty())
        return std::nullopt;
    if (!sorted_)
        throw std::logic_error(
            "LatencyRecorder: seal() before quantile reads (sorting under "
            "a const accessor was a data race for concurrent readers)");
    // Nearest rank: 1-based rank max(1, ceil(q * n)). The extremes are
    // handled exactly — q = 0 is the minimum and q = 1 the maximum by
    // definition, not by trusting ceil(q * n) to land on 0 or n.
    const auto n = samples_.size();
    if (q == 0.0)
        return Seconds{samples_.front()};
    if (q == 1.0)
        return Seconds{samples_.back()};
    // q * n computed in floating point can land one ulp above an exact
    // integer (0.07 * 100 = 7.000000000000001), and ceil() turns that ulp
    // into a whole off-by-one rank. Snap values within a few ulps of an
    // integer back onto it before taking the ceiling.
    const double scaled = q * static_cast<double>(n);
    const double floor_s = std::floor(scaled);
    const double snap =
        4.0 * std::numeric_limits<double>::epsilon() * scaled;
    const double rank_real =
        (scaled - floor_s <= snap) ? floor_s : floor_s + 1.0;
    auto rank = static_cast<std::size_t>(rank_real);
    rank = std::clamp<std::size_t>(rank, 1, n);
    return Seconds{samples_[rank - 1]};
}

std::optional<Seconds>
LatencyRecorder::max() const
{
    if (samples_.empty())
        return std::nullopt;
    if (!sorted_)
        throw std::logic_error(
            "LatencyRecorder: seal() before ordered reads");
    return Seconds{samples_.back()};
}

void
ThroughputMeter::record(SimTime completion_time, Bytes payload)
{
    if (completion_time <= warmup_end_)
        return;
    bytes_ += payload.bytes();
    ++requests_;
}

Bandwidth
ThroughputMeter::bandwidth(SimTime measure_end) const
{
    // Guard the divisor: measure_end <= warmup_end (zero-width or inverted
    // window) must yield 0, not inf/NaN.
    const double window = measure_end - warmup_end_;
    if (window <= 0.0)
        return Bandwidth{0.0};
    return Bandwidth::from_bytes_per_sec(bytes_ / window);
}

OpsRate
ThroughputMeter::rate(SimTime measure_end) const
{
    const double window = measure_end - warmup_end_;
    if (window <= 0.0)
        return OpsRate{0.0};
    return OpsRate{static_cast<double>(requests_) / window};
}

} // namespace lognic::sim
