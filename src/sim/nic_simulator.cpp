#include "lognic/sim/nic_simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_set>

#include "lognic/io/checkpoint.hpp"
#include "lognic/sim/packet_slab.hpp"

namespace lognic::sim {

namespace {

using core::Edge;
using core::EdgeId;
using core::ExecutionGraph;
using core::HardwareModel;
using core::TrafficProfile;
using core::Vertex;
using core::VertexId;
using core::VertexKind;

/// A packet in flight. Owned by the simulator's packet slab: allocated at
/// arrival, recycled at delivery or drop; events and queues hold `Packet*`
/// (stable for the whole flight), never copies.
struct Packet {
    std::size_t class_index{0};
    Bytes app_size{Bytes{0.0}};
    SimTime created{0.0};
    /// Arrival ordinal; drives trace sampling and async-span correlation.
    std::uint64_t id{0};
    /// Set when entering a vertex queue; used for traced wait spans.
    SimTime enqueued{0.0};
    /// True when this packet carries lifecycle spans (sampled).
    bool traced{false};

    // --- checkpoint tracking (written only when ckpt_track is on) ---------
    // The calendar holds closures over this packet which cannot be
    // serialized; these fields describe the packet's single pending event
    // well enough to *reconstruct* it with its original (when, seq) pair.
    /// 0 = none (queued / being measured), 1 = transfer stage, 2 = service
    /// completion.
    std::uint8_t pending_kind{0};
    /// Next transfer stage to run (pending_kind 1).
    std::uint8_t pending_stage{0};
    EdgeId pending_edge{0};     ///< pending_kind 1
    VertexId pending_vertex{0}; ///< pending_kind 2
    std::size_t pending_slot{0};///< pending_kind 2 (traced lane; 0 here)
    SimTime pending_when{0.0};
    std::uint64_t pending_seq{0};
    SimTime service_start{0.0}; ///< pending_kind 2
    SimTime service_time{0.0};  ///< pending_kind 2
    std::uint64_t serial{0};    ///< pending_kind 2, faults active only
};

/// Fixed latency-histogram buckets (microseconds, log-spaced). Fixed
/// across runs so replication snapshots aggregate bucket-wise.
const std::vector<double>&
latency_bounds_us()
{
    static const std::vector<double> bounds{
        1.0,    2.0,    5.0,    10.0,   20.0,    50.0,    100.0,
        200.0,  500.0,  1000.0, 2000.0, 5000.0,  10000.0, 20000.0,
        50000.0};
    return bounds;
}

/// FIFO bandwidth server: transfers serialize, later ones wait.
struct LinkServer {
    Bandwidth bw{Bandwidth::from_gbps(0.0)};
    SimTime free_at{0.0};
    /// Fault-injected bandwidth multiplier in (0, 1]; 1.0 = healthy. Only
    /// transfers *starting* after a degrade event are reshaped — a
    /// transfer already on the wire keeps its committed completion time.
    double factor{1.0};

    /// Returns the completion time of a transfer of @p payload starting not
    /// earlier than @p now.
    SimTime occupy(SimTime now, Bytes payload)
    {
        const SimTime start = std::max(now, free_at);
        free_at = start + (payload / (bw * factor)).seconds();
        return free_at;
    }
};

/// Cause slots for the lifetime drop accounting.
enum DropCause : int {
    kDropOverflow = 0,   ///< finite queue was full
    kDropBurstLoss = 1,  ///< fault-injected transient drop burst
    kDropEngineFail = 2, ///< in-service request lost to an engine failure
};

} // namespace

void
validate(const SimOptions& options)
{
    if (options.duration <= 0.0)
        throw std::invalid_argument("NicSimulator: duration must be > 0");
    if (!(options.warmup_fraction >= 0.0) || options.warmup_fraction >= 1.0)
        throw std::invalid_argument(
            "NicSimulator: warmup_fraction must be in [0, 1), got "
            + std::to_string(options.warmup_fraction));
    if (options.burst.enabled) {
        if (!options.poisson_arrivals)
            throw std::invalid_argument(
                "NicSimulator: bursts require Poisson arrivals");
        const double on = options.burst.on.seconds();
        const double off = options.burst.off.seconds();
        if (on <= 0.0 || off <= 0.0 || options.burst.intensity < 1.0)
            throw std::invalid_argument(
                "NicSimulator: malformed burst model");
        const double p_on = on / (on + off);
        if (options.burst.intensity * p_on > 1.0 + 1e-12)
            throw std::invalid_argument(
                "NicSimulator: burst intensity exceeds the mean "
                "(intensity * on-fraction must be <= 1)");
    }
    options.faults.validate();
}

const VertexStats&
SimResult::busiest() const
{
    static const VertexStats empty{};
    const VertexStats* best = &empty;
    for (const auto& vs : vertex_stats) {
        if (vs.utilization > best->utilization)
            best = &vs;
    }
    return *best;
}

struct NicSimulator::Impl {
    const HardwareModel& hw;
    const ExecutionGraph& graph;
    const TrafficProfile traffic;
    const SimOptions options;

    EventQueue events;
    Rng rng;
    SimTime warmup_end;
    LatencyRecorder latencies;
    ThroughputMeter delivered;
    /// Arrivals and drops inside the (warmup_end, horizon] window; their
    /// ratio is the reported drop_rate (same window as completions).
    WindowedCounter offered_in_window;
    WindowedCounter drops_in_window;
    obs::Histogram latency_hist{latency_bounds_us()};
    /// In-flight packet records; recycled rather than heap-allocated per
    /// arrival (see packet_slab.hpp for the determinism argument).
    Slab<Packet> packet_slab;
    std::uint64_t generated{0};

    // --- lifetime conservation accounting -----------------------------------
    // generated == completed_total + sum(dropped_cause) + in_transit
    //              + queued + busy, asserted at end of run.
    std::uint64_t completed_total{0};
    std::uint64_t dropped_cause[3]{0, 0, 0};
    /// Packets between vertices: in an overhead delay or a link transfer.
    std::uint64_t in_transit{0};

    // --- fault injection (inert when the plan is empty) ---------------------
    const bool faults_active;
    /// Monotonic id for in-service requests, so a fault instant can
    /// neutralize their already-scheduled completion events.
    std::uint64_t next_serial{0};
    std::unordered_set<std::uint64_t> killed;
    struct ScheduledFault {
        double at{0.0};
        fault::FaultKind kind{fault::FaultKind::kEngineFail};
        bool inverse{false}; ///< auto-generated end of a `duration` window
        int link{-1};        ///< 0 = interface, 1 = memory, -1 = vertex
        VertexId v{0};
        std::uint32_t count{1};
        double factor{1.0};
        double probability{1.0};
        std::uint32_t capacity{1};
        std::string label; ///< "<kind>[/end]:<target>" for the trace
    };
    std::vector<ScheduledFault> scheduled_faults;
    obs::TrackId fault_track{0};
    std::uint64_t fault_events_applied{0};

    // --- tracing (inert when trace.sink is null) ----------------------------
    const obs::TraceOptions trace_opts;
    struct VertexTracks {
        obs::TrackId queue{0};               ///< counters, waits, drops
        std::vector<obs::TrackId> engines;   ///< one lane per engine slot
        std::vector<std::uint8_t> slot_busy; ///< traced-slot allocator
    };
    std::vector<VertexTracks> tracks;

    // --- static per-vertex/per-class tables ---------------------------------

    struct VertexState {
        // Static:
        std::uint32_t engines{1};
        std::uint32_t capacity{1};
        double service_scv{1.0};
        std::vector<double> service_mean; ///< per class, seconds
        std::vector<EdgeId> out;
        std::vector<double> out_weights;
        bool passthrough{false};
        Seconds overhead{0.0};
        // Queueing structure: one FIFO by default; one FIFO per in-edge
        // (round-robin served, split capacity) when the vertex asks for
        // per-input queues (Figure 2b). Queued packets are slab handles.
        std::vector<std::deque<Packet*>> queues;
        std::uint32_t per_queue_capacity{1};
        std::size_t rr_cursor{0};
        /// Queue index for each in-edge id (all 0 for the shared FIFO).
        std::vector<std::pair<EdgeId, std::size_t>> queue_of_edge;
        std::uint32_t busy{0};
        // Dynamic fault state (defaults = healthy; untouched when the
        // plan is empty, so the fault-free fast path is unchanged):
        std::uint32_t engines_offline{0};
        double slow_factor{1.0};       ///< service-time multiplier (>= 1)
        double drop_prob{0.0};         ///< active drop-burst probability
        std::uint32_t capacity_override{0}; ///< 0 = use static capacity
        /// In-service requests, tracked only while a fault plan is active
        /// so a fail-stop can requeue/drop them (swap-removed: order is
        /// arbitrary but deterministic).
        struct InService {
            std::uint64_t serial{0};
            Packet* pkt{nullptr};
            std::size_t qi{0};
            std::size_t slot{0};
        };
        std::vector<InService> in_service;

        std::uint32_t available() const
        {
            return engines_offline >= engines ? 0u : engines - engines_offline;
        }
        // Measurement (accumulated after warmup):
        double area_busy{0.0};     ///< integral of busy engines over time
        double area_occupancy{0.0}; ///< integral of (queue + busy)
        SimTime last_change{0.0};
        std::uint64_t served{0};
        std::uint64_t vertex_dropped{0};
    };
    std::vector<VertexState> vertices;

    LinkServer interface_link;
    LinkServer memory_link;
    std::vector<LinkServer> dedicated_links; ///< one per edge (unused if none)

    std::vector<double> class_pps_weight; ///< packet-count weights per class
    double total_pps{0.0};
    std::vector<VertexId> ingresses;
    std::vector<double> ingress_weights; ///< delta shares per ingress

    // Trace replay (optional): recorded sizes arrive in order.
    const traffic::PacketTrace* trace{nullptr};
    std::vector<std::size_t> trace_class; ///< profile class per position
    std::size_t trace_pos{0};

    // --- segmented execution / checkpoint state -----------------------------
    // All of this is inert for run(): ckpt_track stays false, so the hot
    // path pays one predictable branch per scheduling site and nothing
    // else, and run() results are bit-identical to a build without
    // checkpoint support.
    /// When true, every scheduling site records enough metadata to
    /// reconstruct its pending event (set by begin()/load_state()).
    bool ckpt_track{false};
    bool started{false};
    bool finalized{false};
    /// Outcome of the last advance() segment; kEventBudget until a segment
    /// actually finishes the run.
    RunOutcome last_outcome{RunOutcome::kEventBudget};
    /// The (at most one) pending arrival-generator event.
    bool arrival_pending{false};
    double arrival_peak{0.0};
    SimTime arrival_when{0.0};
    std::uint64_t arrival_seq{0};
    /// Calendar seq of each upfront-scheduled fault event, index-aligned
    /// with scheduled_faults; pending faults are [fault_events_applied,
    /// size) because they dispatch in index order.
    std::vector<std::uint64_t> fault_seqs;
    /// Completion events neutralized by fail_engines(): still sitting in
    /// the calendar as stale no-ops, so a restore must reconstruct them
    /// (they consume an executed-count slot when they fire).
    struct StaleEvent {
        SimTime when{0.0};
        std::uint64_t seq{0};
        std::uint64_t serial{0};
    };
    std::vector<StaleEvent> stale_events;
    /// Live packets by stable id; ordered so snapshots serialize packets
    /// deterministically.
    std::map<std::uint64_t, Packet*> live_packets;

    Impl(const HardwareModel& hw_in, const ExecutionGraph& graph_in,
         const TrafficProfile& traffic_in, SimOptions options_in)
        : hw(hw_in), graph(graph_in), traffic(traffic_in),
          options(options_in), rng(options_in.seed),
          warmup_end(options_in.duration * options_in.warmup_fraction),
          latencies(warmup_end), delivered(warmup_end),
          offered_in_window(warmup_end, options_in.duration),
          drops_in_window(warmup_end, options_in.duration),
          faults_active(!options_in.faults.empty()),
          trace_opts(options_in.trace)
    {
        graph.validate(hw);
        sim::validate(options);

        interface_link.bw = hw.interface_bandwidth();
        memory_link.bw = hw.memory_bandwidth();
        dedicated_links.resize(graph.edge_count());
        for (EdgeId e = 0; e < graph.edge_count(); ++e) {
            if (graph.edge(e).params.dedicated_bw)
                dedicated_links[e].bw = *graph.edge(e).params.dedicated_bw;
        }

        build_vertex_tables();
        build_arrival_tables();
        if (faults_active)
            resolve_faults();
        if (trace_opts.sink != nullptr)
            register_tracks();

        ingresses = graph.ingress_vertices();
        ingress_weights.assign(ingresses.size(), 0.0);
        double total = 0.0;
        for (std::size_t i = 0; i < ingresses.size(); ++i) {
            for (EdgeId e : graph.out_edges(ingresses[i]))
                ingress_weights[i] += graph.edge(e).params.delta;
            total += ingress_weights[i];
        }
        if (total <= 0.0)
            ingress_weights.assign(ingresses.size(), 1.0);
    }

    void
    build_vertex_tables()
    {
        const std::size_t nclasses = traffic.classes().size();
        vertices.resize(graph.vertex_count());
        for (VertexId v = 0; v < graph.vertex_count(); ++v) {
            const Vertex& vx = graph.vertex(v);
            VertexState& st = vertices[v];
            st.out = graph.out_edges(v);
            st.out_weights.reserve(st.out.size());
            for (EdgeId e : st.out)
                st.out_weights.push_back(graph.edge(e).params.delta);
            st.overhead = vx.params.overhead;

            if (vx.kind == VertexKind::kIngress
                || vx.kind == VertexKind::kEgress) {
                st.passthrough = true;
                continue;
            }

            const auto ins = graph.in_edges(v);
            if (vx.params.per_input_queues && ins.size() > 1) {
                st.queues.resize(ins.size());
                for (std::size_t q = 0; q < ins.size(); ++q)
                    st.queue_of_edge.emplace_back(ins[q], q);
            } else {
                st.queues.resize(1);
                for (EdgeId e : ins)
                    st.queue_of_edge.emplace_back(e, 0);
            }

            st.service_mean.resize(nclasses);
            for (std::size_t c = 0; c < nclasses; ++c) {
                // Requests keep the ingress granularity (delta steers
                // traffic; it does not shrink payloads).
                const Bytes req = traffic.granularity(c);
                if (vx.kind == VertexKind::kRateLimiter) {
                    st.engines = 1;
                    st.capacity = std::max<std::uint32_t>(
                        vx.params.queue_capacity, 1);
                    st.service_mean[c] = (req / vx.rate_limit).seconds();
                } else {
                    const core::IpSpec& spec = hw.ip(vx.ip);
                    st.engines = vx.params.parallelism > 0
                        ? vx.params.parallelism
                        : spec.max_engines;
                    st.capacity = vx.params.queue_capacity > 0
                        ? vx.params.queue_capacity
                        : spec.default_queue_capacity;
                    st.service_scv = spec.service_scv;
                    // A partitioned IP (gamma < 1) time-slices its engines.
                    const double share = vx.params.partition;
                    st.service_mean[c] = spec.roofline.engine()
                                             .service_time(req)
                                             .seconds()
                        / (share * vx.params.acceleration);
                }
            }
            st.per_queue_capacity = std::max<std::uint32_t>(
                1, st.capacity
                       / static_cast<std::uint32_t>(st.queues.size()));
        }
    }

    void
    build_arrival_tables()
    {
        const auto& classes = traffic.classes();
        // The ingress engine cannot admit traffic faster than the port
        // speed, no matter what load is offered.
        const double admitted_bytes_per_sec =
            std::min(traffic.ingress_bandwidth().bytes_per_sec(),
                     hw.line_rate().bytes_per_sec());
        class_pps_weight.reserve(classes.size());
        total_pps = 0.0;
        for (const auto& c : classes) {
            // Byte weight w at size s contributes w * BW_in / s packets/s.
            const double pps =
                c.weight * admitted_bytes_per_sec / c.size.bytes();
            class_pps_weight.push_back(pps);
            total_pps += pps;
        }
        if (total_pps <= 0.0)
            throw std::invalid_argument("NicSimulator: zero arrival rate");
        // Burst-model invariants are checked by validate(SimOptions) at
        // construction, before any tables are built.
    }

    /**
     * Resolve every fault target to a vertex or shared link and expand
     * `duration` windows into (apply, inverse) pairs clipped to the run.
     * Unknown or unusable targets throw here, at construction — a typo in
     * a plan should not surface as a silent no-op mid-campaign.
     */
    void
    resolve_faults()
    {
        for (const fault::FaultEvent& ev : options.faults.sorted()) {
            ScheduledFault f;
            f.at = ev.at;
            f.kind = ev.kind;
            f.count = ev.count;
            f.factor = ev.factor;
            f.probability = ev.probability;
            f.capacity = ev.capacity;
            f.label = std::string(fault::to_string(ev.kind)) + ":" + ev.target;
            if (ev.kind == fault::FaultKind::kLinkDegrade) {
                if (ev.target == "interface") {
                    f.link = 0;
                } else if (ev.target == "memory") {
                    f.link = 1;
                } else {
                    throw std::invalid_argument(
                        "NicSimulator: link_degrade target '" + ev.target
                        + "' must be 'interface' or 'memory'");
                }
            } else {
                const auto vid = graph.find_vertex(ev.target);
                if (!vid)
                    throw std::invalid_argument(
                        "NicSimulator: fault target '" + ev.target
                        + "' is not a vertex of graph '" + graph.name()
                        + "'");
                if (vertices[*vid].passthrough)
                    throw std::invalid_argument(
                        "NicSimulator: fault target '" + ev.target
                        + "' is an ingress/egress engine; only IP and "
                          "rate-limiter vertices can fault");
                f.v = *vid;
            }
            if (f.at > options.duration)
                continue;
            scheduled_faults.push_back(f);
            if (ev.duration > 0.0 && ev.at + ev.duration <= options.duration) {
                ScheduledFault inv = f;
                inv.at = ev.at + ev.duration;
                inv.inverse = true;
                inv.label = std::string(fault::to_string(ev.kind)) + "/end:"
                    + ev.target;
                scheduled_faults.push_back(inv);
            }
        }
        std::stable_sort(scheduled_faults.begin(), scheduled_faults.end(),
                         [](const ScheduledFault& a, const ScheduledFault& b) {
                             return a.at < b.at;
                         });
    }

    /// Schedule the resolved plan. Faults scheduled before the first
    /// arrival sort ahead of same-instant packet events (FIFO tie-break),
    /// so a fault "at t" is always in force for arrivals at t.
    void
    schedule_faults()
    {
        for (const ScheduledFault& f : scheduled_faults) {
            const std::uint64_t seq =
                events.schedule_at(f.at, [this, &f] { apply_fault(f); });
            if (ckpt_track)
                fault_seqs.push_back(seq);
        }
    }

    void
    apply_fault(const ScheduledFault& f)
    {
        ++fault_events_applied;
        if (trace_opts.sink != nullptr)
            trace_opts.sink->instant(fault_track, f.label,
                                     Seconds{events.now()});
        switch (f.kind) {
          case fault::FaultKind::kLinkDegrade: {
            LinkServer& link = f.link == 0 ? interface_link : memory_link;
            link.factor = f.inverse ? 1.0 : f.factor;
            break;
          }
          case fault::FaultKind::kEngineFail:
            if (f.inverse)
                recover_engines(f.v, f.count);
            else
                fail_engines(f.v, f.count);
            break;
          case fault::FaultKind::kEngineRecover:
            if (f.inverse)
                fail_engines(f.v, f.count);
            else
                recover_engines(f.v, f.count);
            break;
          case fault::FaultKind::kSlowdown:
            vertices[f.v].slow_factor = f.inverse ? 1.0 : f.factor;
            break;
          case fault::FaultKind::kDropBurst:
            vertices[f.v].drop_prob = f.inverse ? 0.0 : f.probability;
            break;
          case fault::FaultKind::kQueueCapacity:
            vertices[f.v].capacity_override = f.inverse ? 0 : f.capacity;
            break;
        }
    }

    /**
     * Take @p count engines of @p v offline. In-service requests that no
     * longer have an engine are aborted at this instant: their scheduled
     * completion is neutralized via the killed-serial set, and the request
     * is either requeued at the head of its queue (the queue may
     * transiently exceed capacity — the request never left the device) or
     * dropped with cause engine_fail, per the plan's in-service policy.
     */
    void
    fail_engines(VertexId v, std::uint32_t count)
    {
        VertexState& st = vertices[v];
        touch(st);
        st.engines_offline = std::min(st.engines, st.engines_offline + count);
        while (st.busy > st.available()) {
            const VertexState::InService victim = st.in_service.back();
            st.in_service.pop_back();
            killed.insert(victim.serial);
            if (ckpt_track) {
                // The victim's completion event stays in the calendar as a
                // stale no-op; remember its (when, seq) so a restored run
                // can reconstruct it (it still burns an executed slot).
                stale_events.push_back({victim.pkt->pending_when,
                                        victim.pkt->pending_seq,
                                        victim.serial});
                victim.pkt->pending_kind = 0;
            }
            --st.busy;
            if (victim.pkt->traced)
                tracks[v].slot_busy[victim.slot] = 0;
            if (options.faults.in_service_policy
                == fault::InServicePolicy::kRequeue) {
                victim.pkt->enqueued = events.now();
                st.queues[victim.qi].push_front(victim.pkt);
            } else {
                drop(victim.pkt, v, st, kDropEngineFail);
            }
        }
        trace_counters(v, st);
    }

    void
    recover_engines(VertexId v, std::uint32_t count)
    {
        VertexState& st = vertices[v];
        touch(st);
        st.engines_offline =
            count >= st.engines_offline ? 0u : st.engines_offline - count;
        trace_counters(v, st);
        try_dispatch(v);
    }

    /// One queue track plus one lane per engine for every queueing vertex.
    void
    register_tracks()
    {
        obs::TraceSink& sink = *trace_opts.sink;
        if (faults_active)
            fault_track = sink.register_track("faults");
        tracks.resize(vertices.size());
        for (VertexId v = 0; v < graph.vertex_count(); ++v) {
            const VertexState& st = vertices[v];
            if (st.passthrough)
                continue;
            VertexTracks& vt = tracks[v];
            const std::string& name = graph.vertex(v).name;
            vt.queue = sink.register_track(name);
            vt.engines.reserve(st.engines);
            for (std::uint32_t e = 0; e < st.engines; ++e)
                vt.engines.push_back(sink.register_track(
                    name + "/e" + std::to_string(e)));
            vt.slot_busy.assign(st.engines, 0);
        }
    }

    /// Total requests queued at a vertex (all of its FIFOs).
    static std::size_t
    queued_total(const VertexState& st)
    {
        std::size_t queued = 0;
        for (const auto& q : st.queues)
            queued += q.size();
        return queued;
    }

    /// Emit the vertex's queue-depth and busy-engine counter samples.
    void
    trace_counters(VertexId v, const VertexState& st)
    {
        if (trace_opts.sink == nullptr || !trace_opts.counters)
            return;
        const Seconds now{events.now()};
        const VertexTracks& vt = tracks[v];
        trace_opts.sink->counter(vt.queue, "queue_depth", now,
                                 static_cast<double>(queued_total(st)));
        trace_opts.sink->counter(vt.queue, "busy", now,
                                 static_cast<double>(st.busy));
    }

    /// Instantaneous arrival-rate multiplier under the burst model
    /// (deterministic ON/OFF cycle, Poisson within each phase).
    double
    rate_multiplier(SimTime t) const
    {
        if (!options.burst.enabled)
            return 1.0;
        const double on = options.burst.on.seconds();
        const double off = options.burst.off.seconds();
        const double phase = std::fmod(t, on + off);
        const double p_on = on / (on + off);
        if (phase < on)
            return options.burst.intensity;
        // Compensating OFF rate keeps the long-run mean at total_pps.
        return (1.0 - options.burst.intensity * p_on) / (1.0 - p_on);
    }

    // --- dynamics -------------------------------------------------------------

    /// Accumulate a vertex's busy/occupancy areas up to the current time.
    void
    touch(VertexState& st)
    {
        const SimTime now = events.now();
        if (now <= warmup_end) {
            st.last_change = warmup_end;
            return;
        }
        const SimTime from = std::max(st.last_change, warmup_end);
        const double dt = now - from;
        if (dt > 0.0) {
            std::size_t queued = 0;
            for (const auto& q : st.queues)
                queued += q.size();
            st.area_busy += dt * static_cast<double>(st.busy);
            st.area_occupancy += dt
                * static_cast<double>(st.busy + queued);
        }
        st.last_change = now;
    }

    void
    schedule_next_arrival()
    {
        // Thinning (Lewis-Shedler): sample at the peak rate and accept
        // with probability rate(t) / peak — exact for the piecewise-
        // constant burst profile, and exactly Poisson when bursts are off.
        const double peak = options.burst.enabled
            ? total_pps * options.burst.intensity
            : total_pps;
        const double gap = options.poisson_arrivals
            ? rng.exponential(1.0 / peak)
            : 1.0 / total_pps;
        const std::uint64_t seq =
            events.schedule_in(gap, [this, peak] { arrival_event(peak); });
        if (ckpt_track) {
            arrival_pending = true;
            arrival_peak = peak;
            arrival_when = events.now() + gap;
            arrival_seq = seq;
        }
    }

    /// Body of the arrival-generator event; factored out so a restored
    /// snapshot can reconstruct the pending arrival with its original
    /// (when, seq) pair.
    void
    arrival_event(double peak)
    {
        if (ckpt_track)
            arrival_pending = false;
        if (events.now() >= options.duration)
            return;
        if (options.burst.enabled
            && rng.uniform()
                > rate_multiplier(events.now()) * total_pps / peak) {
            schedule_next_arrival(); // thinned out
            return;
        }
        Packet* pkt = packet_slab.acquire();
        if (trace != nullptr) {
            pkt->class_index =
                trace_class[trace_pos % trace_class.size()];
            ++trace_pos;
        } else {
            pkt->class_index = rng.weighted_index(class_pps_weight);
        }
        pkt->app_size = traffic.classes()[pkt->class_index].size;
        pkt->created = events.now();
        pkt->id = generated;
        pkt->traced = trace_opts.sampled(pkt->id);
        ++generated;
        if (ckpt_track) {
            pkt->pending_kind = 0; // slab slots recycle; reset stale state
            live_packets.emplace(pkt->id, pkt);
        }
        offered_in_window.record(events.now());
        if (pkt->traced)
            trace_opts.sink->async_begin(pkt->id, "pkt",
                                         Seconds{events.now()});
        const std::size_t which = ingresses.size() > 1
            ? rng.weighted_index(ingress_weights)
            : 0;
        depart(pkt, ingresses[which]);
        schedule_next_arrival();
    }

    /// The packet finished at @p v (or passed through); move it on. At
    /// egress the slab slot is recycled once the record is measured.
    void
    depart(Packet* pkt, VertexId v)
    {
        VertexState& st = vertices[v];
        if (st.out.empty()) { // egress
            ++completed_total;
            latencies.record(events.now(),
                             Seconds{events.now() - pkt->created});
            delivered.record(events.now(), pkt->app_size);
            if (events.now() > warmup_end)
                latency_hist.record(
                    Seconds{events.now() - pkt->created}.micros());
            if (pkt->traced)
                trace_opts.sink->async_end(pkt->id, "pkt",
                                           Seconds{events.now()});
            if (ckpt_track)
                live_packets.erase(pkt->id);
            packet_slab.release(pkt);
            return;
        }
        ++in_transit; // leaves v; in an overhead delay or link transfer
        // Pick the outgoing edge by delta weights.
        std::size_t pick = 0;
        if (st.out.size() > 1) {
            double wsum = 0.0;
            for (double w : st.out_weights)
                wsum += w;
            pick = wsum > 0.0
                ? rng.weighted_index(st.out_weights)
                : static_cast<std::size_t>(rng.uniform()
                                           * static_cast<double>(
                                               st.out.size()));
            pick = std::min(pick, st.out.size() - 1);
        }
        const EdgeId eid = st.out[pick];

        // Overhead O_i first, then the transfer chain. Each link must be
        // occupied *at the moment the packet reaches it* — reserving a
        // link for a future instant would block other packets' transfers
        // for the whole overhead duration.
        const std::uint64_t seq =
            events.schedule_in(st.overhead.seconds(), [this, pkt, eid] {
                transfer_stage(pkt, eid, 0);
            });
        if (ckpt_track) {
            pkt->pending_kind = 1;
            pkt->pending_stage = 0;
            pkt->pending_edge = eid;
            pkt->pending_when = events.now() + st.overhead.seconds();
            pkt->pending_seq = seq;
        }
    }

    /// Run transfer stage @p stage (0 = interface, 1 = memory,
    /// 2 = dedicated link) of edge @p eid, then deliver.
    void
    transfer_stage(Packet* pkt, EdgeId eid, int stage)
    {
        const Edge& e = graph.edge(eid);
        const Bytes g_in = traffic.granularity(pkt->class_index);
        for (; stage < 3; ++stage) {
            LinkServer* link = nullptr;
            Bytes payload{0.0};
            if (stage == 0 && e.params.alpha > 0.0) {
                link = &interface_link;
                payload = Bytes{g_in.bytes() * e.params.alpha};
            } else if (stage == 1 && e.params.beta > 0.0) {
                link = &memory_link;
                payload = Bytes{g_in.bytes() * e.params.beta};
            } else if (stage == 2 && e.params.dedicated_bw) {
                link = &dedicated_links[eid];
                payload = Bytes{g_in.bytes() * e.params.delta};
            }
            if (link != nullptr) {
                const SimTime end = link->occupy(events.now(), payload);
                const std::uint64_t seq =
                    events.schedule_at(end, [this, pkt, eid, stage] {
                        transfer_stage(pkt, eid, stage + 1);
                    });
                if (ckpt_track) {
                    pkt->pending_kind = 1;
                    pkt->pending_stage =
                        static_cast<std::uint8_t>(stage + 1);
                    pkt->pending_edge = eid;
                    pkt->pending_when = end;
                    pkt->pending_seq = seq;
                }
                return;
            }
        }
        arrive(pkt, e.to, eid);
    }

    /// A packet loss at vertex @p v: account it by cause (lifetime) and in
    /// the measurement window, close the packet's trace spans, and recycle
    /// the slab slot (the caller's pointer is dead after this).
    void
    drop(Packet* pkt, VertexId v, VertexState& st, DropCause cause)
    {
        ++dropped_cause[cause];
        drops_in_window.record(events.now());
        if (events.now() > warmup_end)
            ++st.vertex_dropped;
        if (trace_opts.sink != nullptr) {
            trace_opts.sink->instant(tracks[v].queue, "drop",
                                     Seconds{events.now()});
            if (pkt->traced)
                trace_opts.sink->async_end(pkt->id, "pkt",
                                           Seconds{events.now()});
        }
        if (ckpt_track)
            live_packets.erase(pkt->id);
        packet_slab.release(pkt);
    }

    void
    arrive(Packet* pkt, VertexId v, EdgeId via)
    {
        --in_transit; // the inter-vertex hop that started in depart() ended
        VertexState& st = vertices[v];
        if (st.passthrough) {
            depart(pkt, v);
            return;
        }
        if (faults_active && st.drop_prob > 0.0
            && rng.uniform() < st.drop_prob) {
            drop(pkt, v, st, kDropBurstLoss);
            return;
        }
        std::size_t qi = 0;
        for (const auto& [edge, index] : st.queue_of_edge) {
            if (edge == via) {
                qi = index;
                break;
            }
        }
        // A fault-injected capacity override shrinks the whole vertex
        // budget; per-input queues split the override the same way they
        // split the static capacity.
        const std::uint32_t cap =
            st.capacity_override > 0 ? st.capacity_override : st.capacity;
        if (st.queues.size() == 1) {
            // Shared FIFO: the whole capacity N bounds queue + service.
            std::size_t queued = st.queues[0].size();
            if (queued + st.busy >= cap) {
                drop(pkt, v, st, kDropOverflow);
                return;
            }
        } else {
            const std::uint32_t pq_cap = st.capacity_override > 0
                ? std::max<std::uint32_t>(
                      1, cap / static_cast<std::uint32_t>(st.queues.size()))
                : st.per_queue_capacity;
            if (st.queues[qi].size() >= pq_cap) {
                // Per-input queue full: only this input's share overflows.
                drop(pkt, v, st, kDropOverflow);
                return;
            }
        }
        touch(st);
        pkt->enqueued = events.now();
        if (ckpt_track)
            pkt->pending_kind = 0; // the transfer event just fired; queued
        st.queues[qi].push_back(pkt);
        trace_counters(v, st);
        try_dispatch(v);
    }

    void
    try_dispatch(VertexId v)
    {
        VertexState& st = vertices[v];
        auto next_queue = [&st]() -> std::deque<Packet*>* {
            // Round-robin scan starting after the last served queue.
            for (std::size_t i = 0; i < st.queues.size(); ++i) {
                const std::size_t q =
                    (st.rr_cursor + 1 + i) % st.queues.size();
                if (!st.queues[q].empty()) {
                    st.rr_cursor = q;
                    return &st.queues[q];
                }
            }
            return nullptr;
        };
        std::deque<Packet*>* queue = nullptr;
        while (st.busy < st.available() && (queue = next_queue()) != nullptr) {
            touch(st);
            Packet* pkt = queue->front();
            queue->pop_front();
            ++st.busy;
            // slow_factor is exactly 1.0 when no slowdown fault is in
            // force, so the healthy path is bit-identical.
            const double mean =
                st.service_mean[pkt->class_index] * st.slow_factor;
            // exponential_service = false forces determinism everywhere;
            // otherwise each IP's own variability (SCV) governs.
            const double service = options.exponential_service
                ? rng.with_scv(mean, st.service_scv)
                : mean;
            std::size_t slot = 0;
            if (pkt->traced) {
                trace_opts.sink->span(
                    tracks[v].queue, "wait", Seconds{pkt->enqueued},
                    Seconds{events.now() - pkt->enqueued});
                // Lowest free engine lane; traced in-service packets never
                // exceed the engine count, so a lane is always free.
                auto& lanes = tracks[v].slot_busy;
                while (slot + 1 < lanes.size() && lanes[slot])
                    ++slot;
                lanes[slot] = 1;
            }
            std::uint64_t serial = 0;
            if (faults_active) {
                serial = next_serial++;
                const auto qi =
                    static_cast<std::size_t>(queue - st.queues.data());
                st.in_service.push_back({serial, pkt, qi, slot});
            }
            trace_counters(v, st);
            const SimTime start = events.now();
            const std::uint64_t seq = events.schedule_in(
                service, [this, pkt, v, slot, start, service, serial] {
                    complete_service(pkt, v, slot, start, service, serial);
                });
            if (ckpt_track) {
                pkt->pending_kind = 2;
                pkt->pending_vertex = v;
                pkt->pending_slot = slot;
                pkt->pending_when = start + service;
                pkt->pending_seq = seq;
                pkt->service_start = start;
                pkt->service_time = service;
                pkt->serial = serial;
            }
        }
    }

    /// Body of a service-completion event; factored out so a restored
    /// snapshot can reconstruct pending completions with the values the
    /// original closure captured.
    void
    complete_service(Packet* pkt, VertexId v, std::size_t slot, SimTime start,
                     SimTime service, std::uint64_t serial)
    {
        if (faults_active) {
            // An engine failure may have aborted this request after its
            // completion was scheduled; the fault instant already
            // requeued/dropped it and fixed the busy count, so the stale
            // event must do nothing.
            if (killed.erase(serial) > 0) {
                if (ckpt_track)
                    erase_stale(serial);
                return;
            }
            auto& isv = vertices[v].in_service;
            for (std::size_t i = 0; i < isv.size(); ++i) {
                if (isv[i].serial == serial) {
                    isv[i] = std::move(isv.back());
                    isv.pop_back();
                    break;
                }
            }
        }
        VertexState& s2 = vertices[v];
        touch(s2);
        --s2.busy;
        ++s2.served;
        if (pkt->traced) {
            trace_opts.sink->span(tracks[v].engines[slot], "serve",
                                  Seconds{start}, Seconds{service});
            tracks[v].slot_busy[slot] = 0;
        }
        trace_counters(v, s2);
        try_dispatch(v);
        depart(pkt, v);
    }

    /// Forget the stale_events record for @p serial — its calendar event
    /// just fired, so a future snapshot must not reconstruct it.
    void
    erase_stale(std::uint64_t serial)
    {
        for (std::size_t i = 0; i < stale_events.size(); ++i) {
            if (stale_events[i].serial == serial) {
                stale_events[i] = stale_events.back();
                stale_events.pop_back();
                return;
            }
        }
    }

    /// Guard shared by begin() and load_state(): segmented execution
    /// cannot coexist with streaming traces (spans are written out, not
    /// snapshotable), trace replay, or the watchdog (per-advance() budgets
    /// subsume it, and a wall-clock abort would not be deterministic).
    void
    check_segmentable() const
    {
        if (trace_opts.sink != nullptr)
            throw std::logic_error(
                "NicSimulator: segmented execution requires tracing off");
        if (trace != nullptr)
            throw std::logic_error(
                "NicSimulator: segmented execution does not support "
                "trace replay");
        if (options.watchdog.max_events != 0
            || options.watchdog.wall_clock_seconds > 0.0)
            throw std::logic_error(
                "NicSimulator: segmented execution requires an unset "
                "watchdog (advance() budgets subsume it)");
    }

    /// Build the SimResult from the end-of-run state. Shared by run() and
    /// finalize() — reads members only, so how the run was driven (one
    /// run_until or many advance() segments) cannot leak into the result.
    SimResult
    finalize_result(RunOutcome outcome)
    {
        // When truncated, the clock stopped short of the horizon; every
        // rate below normalizes to the time actually simulated.
        const SimTime end = events.now();

        SimResult r;
        r.truncated = outcome == RunOutcome::kEventBudget
            || outcome == RunOutcome::kAborted;
        if (outcome == RunOutcome::kEventBudget)
            r.truncation_reason = "event_budget";
        else if (outcome == RunOutcome::kAborted)
            r.truncation_reason = "wall_clock";
        r.sim_time_reached = end;
        r.events_executed = events.executed();
        r.delivered = delivered.bandwidth(end);
        r.delivered_ops = delivered.rate(end);
        // The single-writer phase is over: seal the recorder (one sort),
        // after which quantile reads are const and thread-safe.
        latencies.seal();
        // Empty-set sentinel: a run that completed nothing after warmup
        // keeps 0.0 latencies; consumers must gate on `completed` (the
        // runner's Replicator counts such runs as degenerate and excludes
        // them).
        r.mean_latency = latencies.mean().value_or(Seconds{0.0});
        r.p50_latency = latencies.p50().value_or(Seconds{0.0});
        r.p99_latency = latencies.p99().value_or(Seconds{0.0});
        r.generated = generated;
        r.completed = delivered.requests();
        // Drop accounting follows the (warmup_end, horizon] measurement
        // window, the same convention completions use: the rate is
        // windowed drops over windowed arrivals, an unbiased
        // blocking-probability estimate even at short horizons.
        const std::uint64_t offered = offered_in_window.count();
        r.dropped = drops_in_window.count();
        r.drop_rate = offered > 0
            ? static_cast<double>(r.dropped) / static_cast<double>(offered)
            : 0.0;

        // Close out the per-vertex accounting at the (possibly truncated)
        // end.
        const double window = end - warmup_end;
        std::uint64_t queued_or_busy = 0;
        for (core::VertexId v = 0; v < graph.vertex_count(); ++v) {
            auto& st = vertices[v];
            if (st.passthrough)
                continue;
            touch(st);
            queued_or_busy += queued_total(st) + st.busy;
            VertexStats vs;
            vs.name = graph.vertex(v).name;
            if (window > 0.0) {
                vs.utilization = st.area_busy
                    / (window * static_cast<double>(st.engines));
                vs.mean_occupancy = st.area_occupancy / window;
            }
            vs.served = st.served;
            vs.dropped = st.vertex_dropped;
            r.vertex_stats.push_back(std::move(vs));
        }

        // Packet conservation: every generated packet must be delivered,
        // dropped, or still inside the device. A violation is a simulator
        // bug (double-count or leak), never a property of the scenario —
        // fail loud.
        r.completed_total = completed_total;
        r.dropped_total = dropped_cause[kDropOverflow]
            + dropped_cause[kDropBurstLoss]
            + dropped_cause[kDropEngineFail];
        r.in_flight = in_transit + queued_or_busy;
        if (r.generated != r.completed_total + r.dropped_total + r.in_flight)
            throw std::logic_error(
                "NicSimulator: packet conservation violated: generated="
                + std::to_string(r.generated) + " != completed="
                + std::to_string(r.completed_total) + " + dropped="
                + std::to_string(r.dropped_total) + " + in_flight="
                + std::to_string(r.in_flight));

        // Publish the structured snapshot mirroring (and extending) the
        // scalar fields; this is what the runner aggregates.
        obs::MetricsRegistry reg;
        reg.counter("sim.generated").add(r.generated);
        reg.counter("sim.offered").add(offered);
        reg.counter("sim.completed").add(r.completed);
        reg.counter("sim.dropped").add(r.dropped);
        reg.counter("sim.completed_total").add(r.completed_total);
        reg.counter("sim.dropped_total").add(r.dropped_total);
        reg.counter("sim.dropped_by_cause.overflow")
            .add(dropped_cause[kDropOverflow]);
        reg.counter("sim.dropped_by_cause.burst")
            .add(dropped_cause[kDropBurstLoss]);
        reg.counter("sim.dropped_by_cause.engine_fail")
            .add(dropped_cause[kDropEngineFail]);
        reg.counter("sim.in_flight").add(r.in_flight);
        reg.counter("sim.fault_events").add(fault_events_applied);
        reg.counter("sim.events_executed").add(r.events_executed);
        reg.gauge("sim.truncated").set(r.truncated ? 1.0 : 0.0);
        reg.gauge("sim.delivered_gbps").set(r.delivered.gbps());
        reg.gauge("sim.delivered_mops").set(r.delivered_ops.mops());
        reg.gauge("sim.drop_rate").set(r.drop_rate);
        reg.gauge("sim.mean_latency_us").set(r.mean_latency.micros());
        reg.gauge("sim.p50_latency_us").set(r.p50_latency.micros());
        reg.gauge("sim.p99_latency_us").set(r.p99_latency.micros());
        reg.histogram("sim.latency_us", latency_bounds_us()) = latency_hist;
        for (const VertexStats& vs : r.vertex_stats) {
            reg.counter("vertex." + vs.name + ".served").add(vs.served);
            reg.counter("vertex." + vs.name + ".dropped").add(vs.dropped);
            reg.gauge("vertex." + vs.name + ".utilization")
                .set(vs.utilization);
            reg.gauge("vertex." + vs.name + ".occupancy")
                .set(vs.mean_occupancy);
        }
        r.metrics = reg.snapshot();
        return r;
    }

    // --- snapshot serialization --------------------------------------------

    /// The configuration facts a snapshot is only valid against. Loading
    /// into a simulator whose fingerprint differs is rejected outright —
    /// resuming "almost the same" run would silently produce garbage.
    io::Json
    config_fingerprint() const
    {
        io::JsonObject fp;
        fp["seed"] = io::Json(io::u64_to_hex(options.seed));
        fp["duration"] = io::Json(io::double_to_hex(options.duration));
        fp["warmup_fraction"] =
            io::Json(io::double_to_hex(options.warmup_fraction));
        fp["exponential_service"] = io::Json(options.exponential_service);
        fp["poisson_arrivals"] = io::Json(options.poisson_arrivals);
        fp["burst"] = io::Json(options.burst.enabled);
        fp["vertices"] = io::Json(static_cast<double>(graph.vertex_count()));
        fp["edges"] = io::Json(static_cast<double>(graph.edge_count()));
        fp["classes"] =
            io::Json(static_cast<double>(traffic.classes().size()));
        fp["faults"] =
            io::Json(static_cast<double>(scheduled_faults.size()));
        return io::Json(std::move(fp));
    }

    io::Json
    packet_to_json(const Packet& p) const
    {
        io::JsonObject o;
        o["id"] = io::Json(io::u64_to_hex(p.id));
        o["class"] = io::Json(static_cast<double>(p.class_index));
        o["size"] = io::Json(io::double_to_hex(p.app_size.bytes()));
        o["created"] = io::Json(io::double_to_hex(p.created));
        o["enqueued"] = io::Json(io::double_to_hex(p.enqueued));
        o["pending_kind"] = io::Json(static_cast<double>(p.pending_kind));
        o["pending_stage"] = io::Json(static_cast<double>(p.pending_stage));
        o["pending_edge"] = io::Json(static_cast<double>(p.pending_edge));
        o["pending_vertex"] =
            io::Json(static_cast<double>(p.pending_vertex));
        o["pending_slot"] = io::Json(static_cast<double>(p.pending_slot));
        o["pending_when"] = io::Json(io::double_to_hex(p.pending_when));
        o["pending_seq"] = io::Json(io::u64_to_hex(p.pending_seq));
        o["service_start"] = io::Json(io::double_to_hex(p.service_start));
        o["service_time"] = io::Json(io::double_to_hex(p.service_time));
        o["serial"] = io::Json(io::u64_to_hex(p.serial));
        return io::Json(std::move(o));
    }

    static io::Json
    link_to_json(const LinkServer& l)
    {
        io::JsonObject o;
        o["free_at"] = io::Json(io::double_to_hex(l.free_at));
        o["factor"] = io::Json(io::double_to_hex(l.factor));
        return io::Json(std::move(o));
    }

    io::Json
    save_json() const
    {
        if (!started)
            throw std::logic_error(
                "NicSimulator::save_state: begin() not called");
        if (finalized)
            throw std::logic_error(
                "NicSimulator::save_state: already finalized");
        io::JsonObject o;
        o["config"] = config_fingerprint();
        o["now"] = io::Json(io::double_to_hex(events.now()));
        o["next_seq"] = io::Json(io::u64_to_hex(events.next_seq()));
        o["executed"] = io::Json(io::u64_to_hex(events.executed()));
        o["rng"] = io::Json(rng.save_state());
        o["generated"] = io::Json(io::u64_to_hex(generated));
        o["completed_total"] = io::Json(io::u64_to_hex(completed_total));
        {
            io::JsonArray dc;
            for (int i = 0; i < 3; ++i)
                dc.push_back(io::Json(io::u64_to_hex(dropped_cause[i])));
            o["dropped_cause"] = io::Json(std::move(dc));
        }
        o["in_transit"] = io::Json(io::u64_to_hex(in_transit));
        o["next_serial"] = io::Json(io::u64_to_hex(next_serial));
        o["fault_events_applied"] =
            io::Json(io::u64_to_hex(fault_events_applied));
        {
            std::vector<std::uint64_t> ks(killed.begin(), killed.end());
            std::sort(ks.begin(), ks.end());
            io::JsonArray arr;
            for (std::uint64_t k : ks)
                arr.push_back(io::Json(io::u64_to_hex(k)));
            o["killed"] = io::Json(std::move(arr));
        }
        {
            io::JsonArray arr;
            for (std::uint64_t s : fault_seqs)
                arr.push_back(io::Json(io::u64_to_hex(s)));
            o["fault_seqs"] = io::Json(std::move(arr));
        }
        {
            std::vector<StaleEvent> stale = stale_events;
            std::sort(stale.begin(), stale.end(),
                      [](const StaleEvent& a, const StaleEvent& b) {
                          return a.seq < b.seq;
                      });
            io::JsonArray arr;
            for (const StaleEvent& ev : stale) {
                io::JsonObject so;
                so["when"] = io::Json(io::double_to_hex(ev.when));
                so["seq"] = io::Json(io::u64_to_hex(ev.seq));
                so["serial"] = io::Json(io::u64_to_hex(ev.serial));
                arr.push_back(io::Json(std::move(so)));
            }
            o["stale"] = io::Json(std::move(arr));
        }
        {
            io::JsonObject a;
            a["pending"] = io::Json(arrival_pending);
            a["peak"] = io::Json(io::double_to_hex(arrival_peak));
            a["when"] = io::Json(io::double_to_hex(arrival_when));
            a["seq"] = io::Json(io::u64_to_hex(arrival_seq));
            o["arrival"] = io::Json(std::move(a));
        }
        {
            io::JsonArray arr;
            for (const auto& [id, pkt] : live_packets)
                arr.push_back(packet_to_json(*pkt));
            o["packets"] = io::Json(std::move(arr));
        }
        o["interface_link"] = link_to_json(interface_link);
        o["memory_link"] = link_to_json(memory_link);
        {
            io::JsonArray arr;
            for (const LinkServer& l : dedicated_links)
                arr.push_back(link_to_json(l));
            o["dedicated_links"] = io::Json(std::move(arr));
        }
        {
            io::JsonArray arr;
            for (const VertexState& st : vertices) {
                io::JsonObject vo;
                vo["busy"] = io::Json(static_cast<double>(st.busy));
                vo["engines_offline"] =
                    io::Json(static_cast<double>(st.engines_offline));
                vo["slow_factor"] =
                    io::Json(io::double_to_hex(st.slow_factor));
                vo["drop_prob"] = io::Json(io::double_to_hex(st.drop_prob));
                vo["capacity_override"] =
                    io::Json(static_cast<double>(st.capacity_override));
                vo["rr_cursor"] =
                    io::Json(static_cast<double>(st.rr_cursor));
                {
                    io::JsonArray queues;
                    for (const auto& q : st.queues) {
                        io::JsonArray ids;
                        for (const Packet* p : q)
                            ids.push_back(io::Json(io::u64_to_hex(p->id)));
                        queues.push_back(io::Json(std::move(ids)));
                    }
                    vo["queues"] = io::Json(std::move(queues));
                }
                {
                    io::JsonArray isv;
                    for (const VertexState::InService& e : st.in_service) {
                        io::JsonObject eo;
                        eo["serial"] = io::Json(io::u64_to_hex(e.serial));
                        eo["id"] = io::Json(io::u64_to_hex(e.pkt->id));
                        eo["qi"] = io::Json(static_cast<double>(e.qi));
                        eo["slot"] = io::Json(static_cast<double>(e.slot));
                        isv.push_back(io::Json(std::move(eo)));
                    }
                    vo["in_service"] = io::Json(std::move(isv));
                }
                vo["area_busy"] = io::Json(io::double_to_hex(st.area_busy));
                vo["area_occupancy"] =
                    io::Json(io::double_to_hex(st.area_occupancy));
                vo["last_change"] =
                    io::Json(io::double_to_hex(st.last_change));
                vo["served"] = io::Json(io::u64_to_hex(st.served));
                vo["dropped"] =
                    io::Json(io::u64_to_hex(st.vertex_dropped));
                arr.push_back(io::Json(std::move(vo)));
            }
            o["vertices"] = io::Json(std::move(arr));
        }
        {
            io::JsonObject r;
            {
                io::JsonArray ls;
                for (double v : latencies.samples())
                    ls.push_back(io::Json(io::double_to_hex(v)));
                r["latency_samples"] = io::Json(std::move(ls));
            }
            r["latency_sealed"] = io::Json(latencies.sealed());
            r["delivered_bytes"] =
                io::Json(io::double_to_hex(delivered.total().bytes()));
            r["delivered_requests"] =
                io::Json(io::u64_to_hex(delivered.requests()));
            r["offered"] =
                io::Json(io::u64_to_hex(offered_in_window.count()));
            r["drops"] = io::Json(io::u64_to_hex(drops_in_window.count()));
            {
                io::JsonObject h;
                io::JsonArray hc;
                for (std::uint64_t c : latency_hist.counts())
                    hc.push_back(io::Json(io::u64_to_hex(c)));
                h["counts"] = io::Json(std::move(hc));
                h["total"] = io::Json(io::u64_to_hex(latency_hist.total()));
                h["sum"] = io::Json(io::double_to_hex(latency_hist.sum()));
                r["latency_hist"] = io::Json(std::move(h));
            }
            o["recorders"] = io::Json(std::move(r));
        }
        return io::Json(std::move(o));
    }

    void
    load_json(const io::Json& snap)
    {
        if (started)
            throw std::logic_error(
                "NicSimulator::load_state: simulator already started "
                "(load into a fresh instance)");
        check_segmentable();
        const std::string want = config_fingerprint().dump(-1);
        const std::string have = snap.at("config").dump(-1);
        if (want != have)
            throw std::runtime_error(
                "NicSimulator::load_state: snapshot configuration "
                "fingerprint mismatch:\n  simulator " + want
                + "\n  snapshot  " + have);

        auto hexd = [](const io::Json& v, const char* ctx) {
            return io::double_from_hex(v.as_string(), ctx);
        };
        auto hexu = [](const io::Json& v, const char* ctx) {
            return io::parse_u64(v.as_string(), ctx);
        };

        ckpt_track = true;
        started = true;

        rng.restore_state(snap.at("rng").as_string());
        generated = hexu(snap.at("generated"), "snapshot generated");
        completed_total =
            hexu(snap.at("completed_total"), "snapshot completed_total");
        {
            const io::JsonArray& dc = snap.at("dropped_cause").as_array();
            if (dc.size() != 3)
                throw std::runtime_error(
                    "NicSimulator::load_state: malformed dropped_cause");
            for (int i = 0; i < 3; ++i)
                dropped_cause[i] = hexu(dc[i], "snapshot dropped_cause");
        }
        in_transit = hexu(snap.at("in_transit"), "snapshot in_transit");
        next_serial = hexu(snap.at("next_serial"), "snapshot next_serial");
        fault_events_applied = hexu(snap.at("fault_events_applied"),
                                    "snapshot fault_events_applied");
        killed.clear();
        for (const io::Json& k : snap.at("killed").as_array())
            killed.insert(hexu(k, "snapshot killed serial"));
        fault_seqs.clear();
        for (const io::Json& s : snap.at("fault_seqs").as_array())
            fault_seqs.push_back(hexu(s, "snapshot fault seq"));
        if (faults_active && fault_seqs.size() != scheduled_faults.size())
            throw std::runtime_error(
                "NicSimulator::load_state: snapshot fault_seqs count does "
                "not match the resolved fault schedule");
        stale_events.clear();
        for (const io::Json& ev : snap.at("stale").as_array()) {
            StaleEvent se;
            se.when = hexd(ev.at("when"), "snapshot stale when");
            se.seq = hexu(ev.at("seq"), "snapshot stale seq");
            se.serial = hexu(ev.at("serial"), "snapshot stale serial");
            stale_events.push_back(se);
        }
        {
            const io::Json& a = snap.at("arrival");
            arrival_pending = a.at("pending").as_bool();
            arrival_peak = hexd(a.at("peak"), "snapshot arrival peak");
            arrival_when = hexd(a.at("when"), "snapshot arrival when");
            arrival_seq = hexu(a.at("seq"), "snapshot arrival seq");
        }

        // Packets: acquire slab slots in saved (id) order. Slab slot
        // assignment is invisible to results (nothing keys on pointer
        // values), so the restored run does not need the original slots.
        live_packets.clear();
        for (const io::Json& pj : snap.at("packets").as_array()) {
            Packet* p = packet_slab.acquire();
            p->id = hexu(pj.at("id"), "snapshot packet id");
            p->class_index = static_cast<std::size_t>(
                pj.at("class").as_number());
            if (p->class_index >= traffic.classes().size())
                throw std::runtime_error(
                    "NicSimulator::load_state: packet class out of range");
            p->app_size = Bytes{hexd(pj.at("size"), "snapshot packet size")};
            p->created = hexd(pj.at("created"), "snapshot packet created");
            p->enqueued =
                hexd(pj.at("enqueued"), "snapshot packet enqueued");
            p->traced = false;
            p->pending_kind = static_cast<std::uint8_t>(
                pj.at("pending_kind").as_number());
            p->pending_stage = static_cast<std::uint8_t>(
                pj.at("pending_stage").as_number());
            p->pending_edge = static_cast<EdgeId>(
                pj.at("pending_edge").as_number());
            p->pending_vertex = static_cast<VertexId>(
                pj.at("pending_vertex").as_number());
            p->pending_slot = static_cast<std::size_t>(
                pj.at("pending_slot").as_number());
            p->pending_when =
                hexd(pj.at("pending_when"), "snapshot packet when");
            p->pending_seq =
                hexu(pj.at("pending_seq"), "snapshot packet seq");
            p->service_start =
                hexd(pj.at("service_start"), "snapshot service start");
            p->service_time =
                hexd(pj.at("service_time"), "snapshot service time");
            p->serial = hexu(pj.at("serial"), "snapshot packet serial");
            if (p->pending_kind == 1 && p->pending_edge >= graph.edge_count())
                throw std::runtime_error(
                    "NicSimulator::load_state: packet edge out of range");
            if (p->pending_kind == 2
                && p->pending_vertex >= graph.vertex_count())
                throw std::runtime_error(
                    "NicSimulator::load_state: packet vertex out of range");
            if (!live_packets.emplace(p->id, p).second)
                throw std::runtime_error(
                    "NicSimulator::load_state: duplicate packet id");
        }
        auto find_packet = [this](std::uint64_t id) -> Packet* {
            const auto it = live_packets.find(id);
            if (it == live_packets.end())
                throw std::runtime_error(
                    "NicSimulator::load_state: queue references an "
                    "unknown packet id");
            return it->second;
        };

        auto load_link = [&hexd](LinkServer& l, const io::Json& j) {
            l.free_at = hexd(j.at("free_at"), "snapshot link free_at");
            l.factor = hexd(j.at("factor"), "snapshot link factor");
        };
        load_link(interface_link, snap.at("interface_link"));
        load_link(memory_link, snap.at("memory_link"));
        {
            const io::JsonArray& arr = snap.at("dedicated_links").as_array();
            if (arr.size() != dedicated_links.size())
                throw std::runtime_error(
                    "NicSimulator::load_state: dedicated link count "
                    "mismatch");
            for (std::size_t i = 0; i < arr.size(); ++i)
                load_link(dedicated_links[i], arr[i]);
        }

        {
            const io::JsonArray& arr = snap.at("vertices").as_array();
            if (arr.size() != vertices.size())
                throw std::runtime_error(
                    "NicSimulator::load_state: vertex count mismatch");
            for (std::size_t v = 0; v < arr.size(); ++v) {
                VertexState& st = vertices[v];
                const io::Json& vo = arr[v];
                st.busy = static_cast<std::uint32_t>(
                    vo.at("busy").as_number());
                st.engines_offline = static_cast<std::uint32_t>(
                    vo.at("engines_offline").as_number());
                st.slow_factor =
                    hexd(vo.at("slow_factor"), "snapshot slow_factor");
                st.drop_prob =
                    hexd(vo.at("drop_prob"), "snapshot drop_prob");
                st.capacity_override = static_cast<std::uint32_t>(
                    vo.at("capacity_override").as_number());
                st.rr_cursor = static_cast<std::size_t>(
                    vo.at("rr_cursor").as_number());
                const io::JsonArray& queues = vo.at("queues").as_array();
                if (queues.size() != st.queues.size())
                    throw std::runtime_error(
                        "NicSimulator::load_state: queue count mismatch");
                for (std::size_t q = 0; q < queues.size(); ++q) {
                    st.queues[q].clear();
                    for (const io::Json& id : queues[q].as_array())
                        st.queues[q].push_back(find_packet(
                            hexu(id, "snapshot queued packet id")));
                }
                st.in_service.clear();
                for (const io::Json& eo : vo.at("in_service").as_array()) {
                    VertexState::InService e;
                    e.serial =
                        hexu(eo.at("serial"), "snapshot in-service serial");
                    e.pkt = find_packet(
                        hexu(eo.at("id"), "snapshot in-service id"));
                    e.qi = static_cast<std::size_t>(
                        eo.at("qi").as_number());
                    e.slot = static_cast<std::size_t>(
                        eo.at("slot").as_number());
                    st.in_service.push_back(e);
                }
                st.area_busy =
                    hexd(vo.at("area_busy"), "snapshot area_busy");
                st.area_occupancy = hexd(vo.at("area_occupancy"),
                                         "snapshot area_occupancy");
                st.last_change =
                    hexd(vo.at("last_change"), "snapshot last_change");
                st.served = hexu(vo.at("served"), "snapshot served");
                st.vertex_dropped =
                    hexu(vo.at("dropped"), "snapshot vertex dropped");
            }
        }

        {
            const io::Json& r = snap.at("recorders");
            std::vector<double> samples;
            for (const io::Json& v : r.at("latency_samples").as_array())
                samples.push_back(hexd(v, "snapshot latency sample"));
            latencies.restore(std::move(samples),
                              r.at("latency_sealed").as_bool());
            delivered.restore(
                hexd(r.at("delivered_bytes"), "snapshot delivered bytes"),
                hexu(r.at("delivered_requests"),
                     "snapshot delivered requests"));
            offered_in_window.restore(
                hexu(r.at("offered"), "snapshot offered count"));
            drops_in_window.restore(
                hexu(r.at("drops"), "snapshot drop count"));
            const io::Json& h = r.at("latency_hist");
            std::vector<std::uint64_t> counts;
            for (const io::Json& c : h.at("counts").as_array())
                counts.push_back(hexu(c, "snapshot histogram count"));
            latency_hist.restore(
                std::move(counts),
                hexu(h.at("total"), "snapshot histogram total"),
                hexd(h.at("sum"), "snapshot histogram sum"));
        }

        // Rebuild the calendar: clock first, then one restore_event per
        // pending event with its original (when, seq). Dispatch order
        // depends only on (when, seq), so heap layout differences between
        // the original and restored calendars are unobservable.
        events.restore_clock(hexd(snap.at("now"), "snapshot now"),
                             hexu(snap.at("next_seq"), "snapshot next_seq"),
                             hexu(snap.at("executed"), "snapshot executed"));
        if (arrival_pending) {
            const double peak = arrival_peak;
            events.restore_event(arrival_when, arrival_seq,
                                 [this, peak] { arrival_event(peak); });
        }
        for (std::size_t i = static_cast<std::size_t>(fault_events_applied);
             i < scheduled_faults.size(); ++i) {
            events.restore_event(scheduled_faults[i].at, fault_seqs[i],
                                 [this, i] {
                                     apply_fault(scheduled_faults[i]);
                                 });
        }
        for (const auto& [id, pkt] : live_packets) {
            if (pkt->pending_kind == 1) {
                Packet* p = pkt;
                const EdgeId eid = p->pending_edge;
                const int stage = p->pending_stage;
                events.restore_event(p->pending_when, p->pending_seq,
                                     [this, p, eid, stage] {
                                         transfer_stage(p, eid, stage);
                                     });
            } else if (pkt->pending_kind == 2) {
                Packet* p = pkt;
                const VertexId v = p->pending_vertex;
                const std::size_t slot = p->pending_slot;
                const SimTime start = p->service_start;
                const SimTime service = p->service_time;
                const std::uint64_t serial = p->serial;
                events.restore_event(
                    p->pending_when, p->pending_seq,
                    [this, p, v, slot, start, service, serial] {
                        complete_service(p, v, slot, start, service,
                                         serial);
                    });
            }
        }
        for (const StaleEvent& ev : stale_events) {
            const std::uint64_t serial = ev.serial;
            // The killed request's packet may be long gone (requeued,
            // delivered, even recycled); the stale no-op must only burn
            // its executed-count slot and clear the bookkeeping.
            events.restore_event(ev.when, ev.seq, [this, serial] {
                killed.erase(serial);
                erase_stale(serial);
            });
        }
    }
};

NicSimulator::NicSimulator(const HardwareModel& hw,
                           const ExecutionGraph& graph,
                           const TrafficProfile& traffic, SimOptions options)
    : impl_(std::make_unique<Impl>(hw, graph, traffic, options))
{
}

NicSimulator::~NicSimulator() = default;

SimResult
NicSimulator::run()
{
    Impl& s = *impl_;
    if (s.started)
        throw std::logic_error(
            "NicSimulator::run: run()/begin()/load_state() already called");
    s.started = true;
    if (s.faults_active)
        s.schedule_faults();
    s.schedule_next_arrival();

    RunLimits limits;
    limits.max_events = s.options.watchdog.max_events;
    if (s.options.watchdog.wall_clock_seconds > 0.0) {
        const auto deadline = std::chrono::steady_clock::now()
            + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    s.options.watchdog.wall_clock_seconds));
        limits.should_abort = [deadline] {
            return std::chrono::steady_clock::now() >= deadline;
        };
    }
    const RunOutcome outcome = s.events.run_until(s.options.duration, limits);
    s.finalized = true;
    return s.finalize_result(outcome);
}

void
NicSimulator::begin()
{
    Impl& s = *impl_;
    if (s.started)
        throw std::logic_error(
            "NicSimulator::begin: run()/begin()/load_state() already "
            "called");
    s.check_segmentable();
    s.ckpt_track = true;
    s.started = true;
    if (s.faults_active)
        s.schedule_faults();
    s.schedule_next_arrival();
}

bool
NicSimulator::advance(std::uint64_t max_events)
{
    Impl& s = *impl_;
    if (!s.started)
        throw std::logic_error(
            "NicSimulator::advance: begin()/load_state() not called");
    if (s.finalized)
        throw std::logic_error("NicSimulator::advance: already finalized");
    if (max_events == 0)
        throw std::invalid_argument(
            "NicSimulator::advance: max_events must be > 0");
    // The budget is per-call, so driving the run in segments executes the
    // exact event sequence one unlimited run_until would: the outcome of
    // the final segment is kDrained/kHorizon, exactly as run() sees.
    RunLimits limits;
    limits.max_events = max_events;
    s.last_outcome = s.events.run_until(s.options.duration, limits);
    return s.last_outcome != RunOutcome::kEventBudget;
}

io::Json
NicSimulator::save_state() const
{
    return impl_->save_json();
}

void
NicSimulator::load_state(const io::Json& snapshot)
{
    impl_->load_json(snapshot);
}

SimResult
NicSimulator::finalize()
{
    Impl& s = *impl_;
    if (!s.started)
        throw std::logic_error(
            "NicSimulator::finalize: begin()/load_state() not called");
    if (s.finalized)
        throw std::logic_error("NicSimulator::finalize: already finalized");
    if (s.last_outcome == RunOutcome::kEventBudget)
        throw std::logic_error(
            "NicSimulator::finalize: run not finished (advance() has not "
            "returned true)");
    s.finalized = true;
    return s.finalize_result(s.last_outcome);
}

std::vector<obs::VertexObservation>
observations(const SimResult& result)
{
    std::vector<obs::VertexObservation> out;
    out.reserve(result.vertex_stats.size());
    for (const VertexStats& vs : result.vertex_stats) {
        obs::VertexObservation o;
        o.name = vs.name;
        o.utilization = vs.utilization;
        o.mean_occupancy = vs.mean_occupancy;
        o.served = vs.served;
        o.dropped = vs.dropped;
        out.push_back(std::move(o));
    }
    return out;
}

SimResult
simulate(const core::HardwareModel& hw, const core::ExecutionGraph& graph,
         const core::TrafficProfile& traffic, SimOptions options)
{
    NicSimulator sim(hw, graph, traffic, options);
    return sim.run();
}

SimResult
simulate_trace(const core::HardwareModel& hw,
               const core::ExecutionGraph& graph,
               const traffic::PacketTrace& trace, SimOptions options)
{
    // Service-time tables come from the trace's size histogram; arrivals
    // then replay the recorded order at the recorded mean rate.
    options.poisson_arrivals = trace.poisson;
    const core::TrafficProfile profile = traffic::histogram_profile(trace);
    NicSimulator sim(hw, graph, profile, options);
    auto& impl = *sim.impl_;
    impl.trace = &trace;
    impl.trace_class.reserve(trace.sizes.size());
    for (Bytes s : trace.sizes) {
        std::size_t ci = 0;
        for (std::size_t c = 0; c < profile.classes().size(); ++c) {
            if (profile.classes()[c].size.bytes() == s.bytes()) {
                ci = c;
                break;
            }
        }
        impl.trace_class.push_back(ci);
    }
    return sim.run();
}

} // namespace lognic::sim
