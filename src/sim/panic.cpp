#include "lognic/sim/panic.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <stdexcept>
#include <unordered_set>

#include "lognic/sim/packet_slab.hpp"

namespace lognic::sim {

namespace {

/// Slab-owned in-flight record; queues and events hold stable `Packet*`.
struct Packet {
    std::size_t class_index{0};
    Bytes size{Bytes{0.0}};
    SimTime created{0.0};
    std::size_t chain{0};
    std::size_t stage{0}; ///< index into the chain's unit list
    std::uint64_t id{0};
    bool traced{false};
};

struct UnitState {
    std::uint32_t credits_free{0};
    std::uint32_t busy{0};
    std::deque<Packet*> pending; ///< held at the central scheduler
    std::deque<Packet*> buffer;  ///< on-unit, waiting for an engine
    // Dynamic fault state (defaults = healthy):
    std::uint32_t engines_offline{0};
    double slow_factor{1.0};
    double drop_prob{0.0};
    std::uint32_t capacity_override{0}; ///< scheduler slots; 0 = config
    /// In-service requests, tracked only while a fault plan is active.
    struct InService {
        std::uint64_t serial{0};
        Packet* pkt{nullptr};
    };
    std::vector<InService> in_service;
    // Measurement (window only):
    std::uint64_t served{0};
    std::uint64_t unit_dropped{0};
    double area_busy{0.0}; ///< integral of busy engines over time
    SimTime last_change{0.0};
};

/// Cause slots for the lifetime drop accounting (same order as the NIC
/// simulator publishes, so snapshots aggregate across simulators).
enum PanicDropCause : int {
    kPanicDropOverflow = 0,
    kPanicDropBurst = 1,
    kPanicDropEngineFail = 2,
};

/// Same log-spaced microsecond buckets the NIC simulator publishes, so
/// panic and nic latency histograms aggregate side by side.
const std::vector<double>&
panic_latency_bounds_us()
{
    static const std::vector<double> bounds{
        1.0,    2.0,    5.0,    10.0,   20.0,    50.0,    100.0,
        200.0,  500.0,  1000.0, 2000.0, 5000.0,  10000.0, 20000.0,
        50000.0};
    return bounds;
}

struct PanicSim {
    const PanicConfig& config;
    const core::TrafficProfile& traffic;
    const SimOptions& options;

    EventQueue events;
    Rng rng;
    SimTime warmup_end;
    LatencyRecorder latencies;
    ThroughputMeter delivered;
    /// Arrivals and scheduler drops inside (warmup_end, horizon]; their
    /// ratio is the reported drop_rate (same window as completions).
    WindowedCounter offered_in_window;
    WindowedCounter drops_in_window;
    obs::Histogram latency_hist{panic_latency_bounds_us()};
    /// In-flight packet records, recycled instead of per-arrival heap
    /// allocation (see packet_slab.hpp).
    Slab<Packet> packet_slab;
    std::uint64_t generated{0};

    // Lifetime conservation accounting (see the NIC simulator).
    std::uint64_t completed_total{0};
    std::uint64_t dropped_cause[3]{0, 0, 0};
    std::uint64_t in_transit{0};

    // Fault injection (inert when the plan is empty).
    const bool faults_active;
    std::uint64_t next_serial{0};
    std::unordered_set<std::uint64_t> killed;
    double fabric_factor{1.0};
    struct ScheduledFault {
        double at{0.0};
        fault::FaultKind kind{fault::FaultKind::kEngineFail};
        bool inverse{false};
        bool fabric{false}; ///< link_degrade on the switching fabric
        std::size_t unit{0};
        std::uint32_t count{1};
        double factor{1.0};
        double probability{1.0};
        std::uint32_t capacity{1};
        std::string label;
    };
    std::vector<ScheduledFault> scheduled_faults;
    obs::TrackId fault_track{0};
    std::uint64_t fault_events_applied{0};

    // Tracing (inert when trace_opts.sink is null): one track per unit
    // carrying pending/credit counters, serve spans, and drop instants.
    const obs::TraceOptions trace_opts;
    std::vector<obs::TrackId> unit_tracks;

    std::vector<UnitState> units;
    std::vector<double> chain_weights;
    std::vector<double> class_pps_weight;
    double total_pps{0.0};

    // The switching fabric is a crossbar: each unit's ingress port (and
    // the TX port) has the full fabric bandwidth; only same-port transfers
    // serialize.
    struct LinkFree {
        SimTime free_at{0.0};
    };
    std::vector<LinkFree> fabric_ports;

    PanicSim(const PanicConfig& cfg, const core::TrafficProfile& tp,
             const SimOptions& opts)
        : config(cfg), traffic(tp), options(opts), rng(opts.seed),
          warmup_end(opts.duration * opts.warmup_fraction),
          latencies(warmup_end), delivered(warmup_end),
          offered_in_window(warmup_end, opts.duration),
          drops_in_window(warmup_end, opts.duration),
          faults_active(!opts.faults.empty()), trace_opts(opts.trace)
    {
        validate(options);
        if (config.units.empty() || config.chains.empty())
            throw std::invalid_argument("simulate_panic: empty config");
        for (const auto& chain : config.chains) {
            if (chain.units.empty())
                throw std::invalid_argument("simulate_panic: empty chain");
            for (std::size_t u : chain.units) {
                if (u >= config.units.size())
                    throw std::invalid_argument(
                        "simulate_panic: chain references unknown unit");
            }
            chain_weights.push_back(chain.weight);
        }
        units.resize(config.units.size());
        for (std::size_t u = 0; u < config.units.size(); ++u) {
            if (config.units[u].credits == 0)
                throw std::invalid_argument(
                    "simulate_panic: unit needs at least one credit");
            units[u].credits_free = config.units[u].credits;
        }
        for (const auto& c : traffic.classes()) {
            const double pps = c.weight
                * traffic.ingress_bandwidth().bytes_per_sec()
                / c.size.bytes();
            class_pps_weight.push_back(pps);
            total_pps += pps;
        }
        fabric_ports.resize(config.units.size() + 1); // +1: the TX port
        if (faults_active)
            resolve_faults();
        if (trace_opts.sink != nullptr) {
            if (faults_active)
                fault_track = trace_opts.sink->register_track("faults");
            unit_tracks.reserve(config.units.size());
            for (std::size_t u = 0; u < config.units.size(); ++u) {
                const std::string& name = config.units[u].name;
                unit_tracks.push_back(trace_opts.sink->register_track(
                    name.empty() ? "unit" + std::to_string(u) : name));
            }
        }
    }

    std::size_t
    find_unit(const std::string& name) const
    {
        for (std::size_t u = 0; u < config.units.size(); ++u) {
            const std::string& n = config.units[u].name;
            if (n == name || (n.empty() && "unit" + std::to_string(u) == name))
                return u;
        }
        throw std::invalid_argument(
            "simulate_panic: fault target '" + name
            + "' is not a PANIC unit (and not the reserved link 'fabric')");
    }

    void
    resolve_faults()
    {
        for (const fault::FaultEvent& ev : options.faults.sorted()) {
            ScheduledFault f;
            f.at = ev.at;
            f.kind = ev.kind;
            f.count = ev.count;
            f.factor = ev.factor;
            f.probability = ev.probability;
            f.capacity = ev.capacity;
            f.label = std::string(fault::to_string(ev.kind)) + ":" + ev.target;
            if (ev.kind == fault::FaultKind::kLinkDegrade) {
                if (ev.target != "fabric")
                    throw std::invalid_argument(
                        "simulate_panic: link_degrade target '" + ev.target
                        + "' must be 'fabric'");
                f.fabric = true;
            } else {
                f.unit = find_unit(ev.target);
            }
            if (f.at > options.duration)
                continue;
            scheduled_faults.push_back(f);
            if (ev.duration > 0.0 && ev.at + ev.duration <= options.duration) {
                ScheduledFault inv = f;
                inv.at = ev.at + ev.duration;
                inv.inverse = true;
                inv.label = std::string(fault::to_string(ev.kind)) + "/end:"
                    + ev.target;
                scheduled_faults.push_back(inv);
            }
        }
        std::stable_sort(scheduled_faults.begin(), scheduled_faults.end(),
                         [](const ScheduledFault& a, const ScheduledFault& b) {
                             return a.at < b.at;
                         });
    }

    void
    schedule_faults()
    {
        for (const ScheduledFault& f : scheduled_faults)
            events.schedule_at(f.at, [this, &f] { apply_fault(f); });
    }

    std::uint32_t
    available(std::size_t u) const
    {
        const std::uint32_t par = config.units[u].parallelism;
        return units[u].engines_offline >= par
            ? 0u
            : par - units[u].engines_offline;
    }

    void
    apply_fault(const ScheduledFault& f)
    {
        ++fault_events_applied;
        if (trace_opts.sink != nullptr)
            trace_opts.sink->instant(fault_track, f.label,
                                     Seconds{events.now()});
        switch (f.kind) {
          case fault::FaultKind::kLinkDegrade:
            fabric_factor = f.inverse ? 1.0 : f.factor;
            break;
          case fault::FaultKind::kEngineFail:
            if (f.inverse)
                recover_engines(f.unit, f.count);
            else
                fail_engines(f.unit, f.count);
            break;
          case fault::FaultKind::kEngineRecover:
            if (f.inverse)
                fail_engines(f.unit, f.count);
            else
                recover_engines(f.unit, f.count);
            break;
          case fault::FaultKind::kSlowdown:
            units[f.unit].slow_factor = f.inverse ? 1.0 : f.factor;
            break;
          case fault::FaultKind::kDropBurst:
            units[f.unit].drop_prob = f.inverse ? 0.0 : f.probability;
            break;
          case fault::FaultKind::kQueueCapacity:
            units[f.unit].capacity_override = f.inverse ? 0 : f.capacity;
            break;
        }
    }

    /**
     * Take engines of unit @p u offline, aborting in-service requests
     * that lost their engine. Requeued requests go back to the head of
     * the unit buffer and keep their credit (buffered packets own
     * credits); dropped ones return the credit after the usual one-hop
     * delay, exactly like a served packet would.
     */
    void
    fail_engines(std::size_t u, std::uint32_t count)
    {
        UnitState& st = units[u];
        touch(st);
        st.engines_offline = std::min(config.units[u].parallelism,
                                      st.engines_offline + count);
        while (st.busy > available(u)) {
            const UnitState::InService victim = st.in_service.back();
            st.in_service.pop_back();
            killed.insert(victim.serial);
            --st.busy;
            if (options.faults.in_service_policy
                == fault::InServicePolicy::kRequeue) {
                st.buffer.push_front(victim.pkt);
            } else {
                drop_packet(victim.pkt, u, kPanicDropEngineFail);
                events.schedule_in(config.hop_latency.seconds(), [this, u] {
                    ++units[u].credits_free;
                    trace_counters(u);
                    try_dispatch(u);
                });
            }
        }
        trace_counters(u);
    }

    void
    recover_engines(std::size_t u, std::uint32_t count)
    {
        UnitState& st = units[u];
        touch(st);
        st.engines_offline =
            count >= st.engines_offline ? 0u : st.engines_offline - count;
        trace_counters(u);
        try_serve(u);
    }

    /// Account a lost packet (lifetime cause + measurement window), close
    /// its trace spans, and recycle the slab slot (the caller's pointer is
    /// dead after this).
    void
    drop_packet(Packet* pkt, std::size_t u, PanicDropCause cause)
    {
        ++dropped_cause[cause];
        drops_in_window.record(events.now());
        if (events.now() > warmup_end)
            ++units[u].unit_dropped;
        if (trace_opts.sink != nullptr) {
            trace_opts.sink->instant(unit_tracks[u], "drop",
                                     Seconds{events.now()});
            if (pkt->traced)
                trace_opts.sink->async_end(pkt->id, "pkt",
                                           Seconds{events.now()});
        }
        packet_slab.release(pkt);
    }

    /// Accumulate a unit's busy-engine area up to the current time.
    void
    touch(UnitState& st)
    {
        const SimTime now = events.now();
        if (now <= warmup_end) {
            st.last_change = warmup_end;
            return;
        }
        const SimTime from = std::max(st.last_change, warmup_end);
        if (now > from)
            st.area_busy += (now - from) * static_cast<double>(st.busy);
        st.last_change = now;
    }

    /// Emit the unit's scheduler/credit counter samples.
    void
    trace_counters(std::size_t u)
    {
        if (trace_opts.sink == nullptr || !trace_opts.counters)
            return;
        const UnitState& st = units[u];
        const Seconds now{events.now()};
        const obs::TrackId t = unit_tracks[u];
        trace_opts.sink->counter(t, "pending", now,
                                 static_cast<double>(st.pending.size()));
        trace_opts.sink->counter(t, "credits_free", now,
                                 static_cast<double>(st.credits_free));
        trace_opts.sink->counter(t, "busy", now,
                                 static_cast<double>(st.busy));
    }

    SimTime
    fabric_transfer(SimTime earliest, Bytes payload, std::size_t port)
    {
        LinkFree& p = fabric_ports[port];
        const SimTime start = std::max(earliest, p.free_at);
        // fabric_factor is exactly 1.0 unless a link_degrade fault is in
        // force, keeping the healthy path bit-identical.
        p.free_at =
            start + (payload / (config.fabric_bw * fabric_factor)).seconds();
        return p.free_at + config.hop_latency.seconds();
    }

    void
    schedule_next_arrival()
    {
        const double gap = options.poisson_arrivals
            ? rng.exponential(1.0 / total_pps)
            : 1.0 / total_pps;
        events.schedule_in(gap, [this] {
            if (events.now() >= options.duration)
                return;
            Packet* pkt = packet_slab.acquire();
            pkt->class_index = rng.weighted_index(class_pps_weight);
            pkt->size = traffic.classes()[pkt->class_index].size;
            pkt->created = events.now();
            pkt->chain = rng.weighted_index(chain_weights);
            pkt->id = generated;
            pkt->traced = trace_opts.sampled(pkt->id);
            ++generated;
            offered_in_window.record(events.now());
            if (pkt->traced)
                trace_opts.sink->async_begin(pkt->id, "pkt",
                                             Seconds{events.now()});
            // RMT parse, then hand the packet to the scheduler.
            ++in_transit;
            events.schedule_in(config.rmt_latency.seconds(), [this, pkt] {
                --in_transit;
                enqueue_at_scheduler(pkt);
            });
            schedule_next_arrival();
        });
    }

    void
    enqueue_at_scheduler(Packet* pkt)
    {
        const std::size_t u = config.chains[pkt->chain].units[pkt->stage];
        UnitState& st = units[u];
        if (faults_active && st.drop_prob > 0.0
            && rng.uniform() < st.drop_prob) {
            drop_packet(pkt, u, kPanicDropBurst);
            return;
        }
        const std::uint32_t cap = st.capacity_override > 0
            ? st.capacity_override
            : config.scheduler_queue_capacity;
        if (pkt->stage == 0 && st.pending.size() >= cap) {
            // The central packet buffer is full: shed new arrivals.
            // Mid-chain packets are never shed (they already own buffering).
            drop_packet(pkt, u, kPanicDropOverflow);
            return;
        }
        st.pending.push_back(pkt);
        trace_counters(u);
        try_dispatch(u);
    }

    void
    try_dispatch(std::size_t u)
    {
        UnitState& st = units[u];
        while (st.credits_free > 0 && !st.pending.empty()) {
            Packet* pkt = st.pending.front();
            st.pending.pop_front();
            --st.credits_free;
            trace_counters(u);
            ++in_transit;
            const SimTime arrive =
                fabric_transfer(events.now(), pkt->size, u);
            events.schedule_at(arrive, [this, pkt, u] {
                --in_transit;
                units[u].buffer.push_back(pkt);
                try_serve(u);
            });
        }
    }

    void
    try_serve(std::size_t u)
    {
        UnitState& st = units[u];
        const PanicUnit& spec = config.units[u];
        while (st.busy < available(u) && !st.buffer.empty()) {
            Packet* pkt = st.buffer.front();
            st.buffer.pop_front();
            touch(st);
            ++st.busy;
            trace_counters(u);
            const double mean =
                spec.service.service_time(pkt->size).seconds()
                * st.slow_factor;
            const double service = options.exponential_service
                ? rng.exponential(mean)
                : mean;
            std::uint64_t serial = 0;
            if (faults_active) {
                serial = next_serial++;
                st.in_service.push_back({serial, pkt});
            }
            const SimTime start = events.now();
            events.schedule_in(service, [this, pkt, u, start, service,
                                         serial] {
                if (faults_active) {
                    // Neutralized by an engine failure after scheduling:
                    // the fault instant already requeued/dropped the
                    // request and fixed busy/credits.
                    if (killed.erase(serial) > 0)
                        return;
                    auto& isv = units[u].in_service;
                    for (std::size_t i = 0; i < isv.size(); ++i) {
                        if (isv[i].serial == serial) {
                            isv[i] = std::move(isv.back());
                            isv.pop_back();
                            break;
                        }
                    }
                }
                UnitState& s2 = units[u];
                touch(s2);
                --s2.busy;
                ++s2.served;
                if (pkt->traced)
                    trace_opts.sink->span(unit_tracks[u], "serve",
                                          Seconds{start}, Seconds{service});
                trace_counters(u);
                try_serve(u);
                // Credit returns to the scheduler after one fabric hop.
                events.schedule_in(config.hop_latency.seconds(), [this, u] {
                    ++units[u].credits_free;
                    trace_counters(u);
                    try_dispatch(u);
                });
                advance(pkt);
            });
        }
    }

    void
    advance(Packet* pkt)
    {
        ++pkt->stage;
        if (pkt->stage < config.chains[pkt->chain].units.size()) {
            enqueue_at_scheduler(pkt);
            return;
        }
        // Egress: one last fabric traversal to the TX pipeline; the slab
        // slot is recycled once the completion is measured.
        ++in_transit;
        const SimTime out =
            fabric_transfer(events.now(), pkt->size, config.units.size());
        events.schedule_at(out, [this, pkt] {
            --in_transit;
            ++completed_total;
            latencies.record(events.now(),
                             Seconds{events.now() - pkt->created});
            delivered.record(events.now(), pkt->size);
            if (events.now() > warmup_end)
                latency_hist.record(
                    Seconds{events.now() - pkt->created}.micros());
            if (pkt->traced)
                trace_opts.sink->async_end(pkt->id, "pkt",
                                           Seconds{events.now()});
            packet_slab.release(pkt);
        });
    }
};

} // namespace

SimResult
simulate_panic(const PanicConfig& config, const core::TrafficProfile& traffic,
               SimOptions options)
{
    PanicSim sim(config, traffic, options);
    if (sim.faults_active)
        sim.schedule_faults();
    sim.schedule_next_arrival();

    RunLimits limits;
    limits.max_events = options.watchdog.max_events;
    if (options.watchdog.wall_clock_seconds > 0.0) {
        const auto deadline = std::chrono::steady_clock::now()
            + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    options.watchdog.wall_clock_seconds));
        limits.should_abort = [deadline] {
            return std::chrono::steady_clock::now() >= deadline;
        };
    }
    const RunOutcome outcome = sim.events.run_until(options.duration, limits);
    const SimTime end = sim.events.now();

    SimResult r;
    r.truncated = outcome == RunOutcome::kEventBudget
        || outcome == RunOutcome::kAborted;
    if (outcome == RunOutcome::kEventBudget)
        r.truncation_reason = "event_budget";
    else if (outcome == RunOutcome::kAborted)
        r.truncation_reason = "wall_clock";
    r.sim_time_reached = end;
    r.events_executed = sim.events.executed();
    r.delivered = sim.delivered.bandwidth(end);
    r.delivered_ops = sim.delivered.rate(end);
    // Single-writer phase over: one sort, then race-free const reads.
    sim.latencies.seal();
    r.mean_latency = sim.latencies.mean().value_or(Seconds{0.0});
    r.p50_latency = sim.latencies.p50().value_or(Seconds{0.0});
    r.p99_latency = sim.latencies.p99().value_or(Seconds{0.0});
    r.generated = sim.generated;
    r.completed = sim.delivered.requests();
    // Windowed drop accounting — same (warmup_end, horizon] convention as
    // completions, so drop_rate is an unbiased blocking estimate.
    const std::uint64_t offered = sim.offered_in_window.count();
    r.dropped = sim.drops_in_window.count();
    r.drop_rate = offered > 0
        ? static_cast<double>(r.dropped) / static_cast<double>(offered)
        : 0.0;

    const double window = end - sim.warmup_end;
    std::uint64_t queued_or_busy = 0;
    for (std::size_t u = 0; u < sim.units.size(); ++u) {
        UnitState& st = sim.units[u];
        sim.touch(st);
        queued_or_busy += st.pending.size() + st.buffer.size() + st.busy;
        VertexStats vs;
        vs.name = config.units[u].name.empty()
            ? "unit" + std::to_string(u)
            : config.units[u].name;
        if (window > 0.0)
            vs.utilization = st.area_busy
                / (window
                   * static_cast<double>(config.units[u].parallelism));
        vs.served = st.served;
        vs.dropped = st.unit_dropped;
        r.vertex_stats.push_back(std::move(vs));
    }

    // Packet conservation (see NicSimulator::run): every generated packet
    // is delivered, dropped, or still inside the device.
    r.completed_total = sim.completed_total;
    r.dropped_total = sim.dropped_cause[kPanicDropOverflow]
        + sim.dropped_cause[kPanicDropBurst]
        + sim.dropped_cause[kPanicDropEngineFail];
    r.in_flight = sim.in_transit + queued_or_busy;
    if (r.generated != r.completed_total + r.dropped_total + r.in_flight)
        throw std::logic_error(
            "simulate_panic: packet conservation violated: generated="
            + std::to_string(r.generated) + " != completed="
            + std::to_string(r.completed_total) + " + dropped="
            + std::to_string(r.dropped_total) + " + in_flight="
            + std::to_string(r.in_flight));

    obs::MetricsRegistry reg;
    reg.counter("sim.generated").add(r.generated);
    reg.counter("sim.offered").add(offered);
    reg.counter("sim.completed").add(r.completed);
    reg.counter("sim.dropped").add(r.dropped);
    reg.counter("sim.completed_total").add(r.completed_total);
    reg.counter("sim.dropped_total").add(r.dropped_total);
    reg.counter("sim.dropped_by_cause.overflow")
        .add(sim.dropped_cause[kPanicDropOverflow]);
    reg.counter("sim.dropped_by_cause.burst")
        .add(sim.dropped_cause[kPanicDropBurst]);
    reg.counter("sim.dropped_by_cause.engine_fail")
        .add(sim.dropped_cause[kPanicDropEngineFail]);
    reg.counter("sim.in_flight").add(r.in_flight);
    reg.counter("sim.fault_events").add(sim.fault_events_applied);
    reg.counter("sim.events_executed").add(r.events_executed);
    reg.gauge("sim.truncated").set(r.truncated ? 1.0 : 0.0);
    reg.gauge("sim.delivered_gbps").set(r.delivered.gbps());
    reg.gauge("sim.delivered_mops").set(r.delivered_ops.mops());
    reg.gauge("sim.drop_rate").set(r.drop_rate);
    reg.gauge("sim.mean_latency_us").set(r.mean_latency.micros());
    reg.gauge("sim.p50_latency_us").set(r.p50_latency.micros());
    reg.gauge("sim.p99_latency_us").set(r.p99_latency.micros());
    reg.histogram("sim.latency_us", panic_latency_bounds_us()) =
        sim.latency_hist;
    for (const VertexStats& vs : r.vertex_stats) {
        reg.counter("unit." + vs.name + ".served").add(vs.served);
        reg.counter("unit." + vs.name + ".dropped").add(vs.dropped);
        reg.gauge("unit." + vs.name + ".utilization").set(vs.utilization);
    }
    r.metrics = reg.snapshot();
    return r;
}

Bandwidth
panic_credit_capacity(const PanicUnit& unit, Bytes request,
                      const PanicConfig& config)
{
    const double service = unit.service.service_time(request).seconds();
    const double rtt = 2.0 * config.hop_latency.seconds()
        + (request / config.fabric_bw).seconds();
    const double window_bytes_per_sec =
        static_cast<double>(unit.credits) * request.bytes() / (service + rtt);
    const Bandwidth compute = unit.service.throughput(request)
        * static_cast<double>(unit.parallelism);
    return std::min(compute,
                    Bandwidth::from_bytes_per_sec(window_bytes_per_sec));
}

} // namespace lognic::sim
