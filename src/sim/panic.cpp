#include "lognic/sim/panic.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace lognic::sim {

namespace {

struct Packet {
    std::size_t class_index{0};
    Bytes size{Bytes{0.0}};
    SimTime created{0.0};
    std::size_t chain{0};
    std::size_t stage{0}; ///< index into the chain's unit list
    std::uint64_t id{0};
    bool traced{false};
};

struct UnitState {
    std::uint32_t credits_free{0};
    std::uint32_t busy{0};
    std::deque<Packet> pending; ///< held at the central scheduler
    std::deque<Packet> buffer;  ///< on-unit, waiting for an engine
    // Measurement (window only):
    std::uint64_t served{0};
    std::uint64_t unit_dropped{0};
    double area_busy{0.0}; ///< integral of busy engines over time
    SimTime last_change{0.0};
};

/// Same log-spaced microsecond buckets the NIC simulator publishes, so
/// panic and nic latency histograms aggregate side by side.
const std::vector<double>&
panic_latency_bounds_us()
{
    static const std::vector<double> bounds{
        1.0,    2.0,    5.0,    10.0,   20.0,    50.0,    100.0,
        200.0,  500.0,  1000.0, 2000.0, 5000.0,  10000.0, 20000.0,
        50000.0};
    return bounds;
}

struct PanicSim {
    const PanicConfig& config;
    const core::TrafficProfile& traffic;
    const SimOptions& options;

    EventQueue events;
    Rng rng;
    SimTime warmup_end;
    LatencyRecorder latencies;
    ThroughputMeter delivered;
    /// Arrivals and scheduler drops inside (warmup_end, horizon]; their
    /// ratio is the reported drop_rate (same window as completions).
    WindowedCounter offered_in_window;
    WindowedCounter drops_in_window;
    obs::Histogram latency_hist{panic_latency_bounds_us()};
    std::uint64_t generated{0};

    // Tracing (inert when trace_opts.sink is null): one track per unit
    // carrying pending/credit counters, serve spans, and drop instants.
    const obs::TraceOptions trace_opts;
    std::vector<obs::TrackId> unit_tracks;

    std::vector<UnitState> units;
    std::vector<double> chain_weights;
    std::vector<double> class_pps_weight;
    double total_pps{0.0};

    // The switching fabric is a crossbar: each unit's ingress port (and
    // the TX port) has the full fabric bandwidth; only same-port transfers
    // serialize.
    struct LinkFree {
        SimTime free_at{0.0};
    };
    std::vector<LinkFree> fabric_ports;

    PanicSim(const PanicConfig& cfg, const core::TrafficProfile& tp,
             const SimOptions& opts)
        : config(cfg), traffic(tp), options(opts), rng(opts.seed),
          warmup_end(opts.duration * opts.warmup_fraction),
          latencies(warmup_end), delivered(warmup_end),
          offered_in_window(warmup_end), drops_in_window(warmup_end),
          trace_opts(opts.trace)
    {
        if (config.units.empty() || config.chains.empty())
            throw std::invalid_argument("simulate_panic: empty config");
        for (const auto& chain : config.chains) {
            if (chain.units.empty())
                throw std::invalid_argument("simulate_panic: empty chain");
            for (std::size_t u : chain.units) {
                if (u >= config.units.size())
                    throw std::invalid_argument(
                        "simulate_panic: chain references unknown unit");
            }
            chain_weights.push_back(chain.weight);
        }
        units.resize(config.units.size());
        for (std::size_t u = 0; u < config.units.size(); ++u) {
            if (config.units[u].credits == 0)
                throw std::invalid_argument(
                    "simulate_panic: unit needs at least one credit");
            units[u].credits_free = config.units[u].credits;
        }
        for (const auto& c : traffic.classes()) {
            const double pps = c.weight
                * traffic.ingress_bandwidth().bytes_per_sec()
                / c.size.bytes();
            class_pps_weight.push_back(pps);
            total_pps += pps;
        }
        fabric_ports.resize(config.units.size() + 1); // +1: the TX port
        if (trace_opts.sink != nullptr) {
            unit_tracks.reserve(config.units.size());
            for (std::size_t u = 0; u < config.units.size(); ++u) {
                const std::string& name = config.units[u].name;
                unit_tracks.push_back(trace_opts.sink->register_track(
                    name.empty() ? "unit" + std::to_string(u) : name));
            }
        }
    }

    /// Accumulate a unit's busy-engine area up to the current time.
    void
    touch(UnitState& st)
    {
        const SimTime now = events.now();
        if (now <= warmup_end) {
            st.last_change = warmup_end;
            return;
        }
        const SimTime from = std::max(st.last_change, warmup_end);
        if (now > from)
            st.area_busy += (now - from) * static_cast<double>(st.busy);
        st.last_change = now;
    }

    /// Emit the unit's scheduler/credit counter samples.
    void
    trace_counters(std::size_t u)
    {
        if (trace_opts.sink == nullptr || !trace_opts.counters)
            return;
        const UnitState& st = units[u];
        const Seconds now{events.now()};
        const obs::TrackId t = unit_tracks[u];
        trace_opts.sink->counter(t, "pending", now,
                                 static_cast<double>(st.pending.size()));
        trace_opts.sink->counter(t, "credits_free", now,
                                 static_cast<double>(st.credits_free));
        trace_opts.sink->counter(t, "busy", now,
                                 static_cast<double>(st.busy));
    }

    SimTime
    fabric_transfer(SimTime earliest, Bytes payload, std::size_t port)
    {
        LinkFree& p = fabric_ports[port];
        const SimTime start = std::max(earliest, p.free_at);
        p.free_at = start + (payload / config.fabric_bw).seconds();
        return p.free_at + config.hop_latency.seconds();
    }

    void
    schedule_next_arrival()
    {
        const double gap = options.poisson_arrivals
            ? rng.exponential(1.0 / total_pps)
            : 1.0 / total_pps;
        events.schedule_in(gap, [this] {
            if (events.now() >= options.duration)
                return;
            Packet pkt;
            pkt.class_index = rng.weighted_index(class_pps_weight);
            pkt.size = traffic.classes()[pkt.class_index].size;
            pkt.created = events.now();
            pkt.chain = rng.weighted_index(chain_weights);
            pkt.id = generated;
            pkt.traced = trace_opts.sampled(pkt.id);
            ++generated;
            offered_in_window.record(events.now());
            if (pkt.traced)
                trace_opts.sink->async_begin(pkt.id, "pkt",
                                             Seconds{events.now()});
            // RMT parse, then hand the packet to the scheduler.
            events.schedule_in(config.rmt_latency.seconds(),
                               [this, pkt] { enqueue_at_scheduler(pkt); });
            schedule_next_arrival();
        });
    }

    void
    enqueue_at_scheduler(const Packet& pkt)
    {
        const std::size_t u = config.chains[pkt.chain].units[pkt.stage];
        if (pkt.stage == 0
            && units[u].pending.size() >= config.scheduler_queue_capacity) {
            // The central packet buffer is full: shed new arrivals.
            // Mid-chain packets are never shed (they already own buffering).
            // Counted in the measurement window only — see WindowedCounter.
            drops_in_window.record(events.now());
            if (events.now() > warmup_end)
                ++units[u].unit_dropped;
            if (trace_opts.sink != nullptr) {
                trace_opts.sink->instant(unit_tracks[u], "drop",
                                         Seconds{events.now()});
                if (pkt.traced)
                    trace_opts.sink->async_end(pkt.id, "pkt",
                                               Seconds{events.now()});
            }
            return;
        }
        units[u].pending.push_back(pkt);
        trace_counters(u);
        try_dispatch(u);
    }

    void
    try_dispatch(std::size_t u)
    {
        UnitState& st = units[u];
        while (st.credits_free > 0 && !st.pending.empty()) {
            const Packet pkt = st.pending.front();
            st.pending.pop_front();
            --st.credits_free;
            trace_counters(u);
            const SimTime arrive = fabric_transfer(events.now(), pkt.size, u);
            events.schedule_at(arrive, [this, pkt, u] {
                units[u].buffer.push_back(pkt);
                try_serve(u);
            });
        }
    }

    void
    try_serve(std::size_t u)
    {
        UnitState& st = units[u];
        const PanicUnit& spec = config.units[u];
        while (st.busy < spec.parallelism && !st.buffer.empty()) {
            const Packet pkt = st.buffer.front();
            st.buffer.pop_front();
            touch(st);
            ++st.busy;
            trace_counters(u);
            const double mean = spec.service.service_time(pkt.size).seconds();
            const double service = options.exponential_service
                ? rng.exponential(mean)
                : mean;
            const SimTime start = events.now();
            events.schedule_in(service, [this, pkt, u, start, service] {
                UnitState& s2 = units[u];
                touch(s2);
                --s2.busy;
                ++s2.served;
                if (pkt.traced)
                    trace_opts.sink->span(unit_tracks[u], "serve",
                                          Seconds{start}, Seconds{service});
                trace_counters(u);
                try_serve(u);
                // Credit returns to the scheduler after one fabric hop.
                events.schedule_in(config.hop_latency.seconds(), [this, u] {
                    ++units[u].credits_free;
                    trace_counters(u);
                    try_dispatch(u);
                });
                advance(pkt);
            });
        }
    }

    void
    advance(Packet pkt)
    {
        ++pkt.stage;
        if (pkt.stage < config.chains[pkt.chain].units.size()) {
            enqueue_at_scheduler(pkt);
            return;
        }
        // Egress: one last fabric traversal to the TX pipeline.
        const SimTime out =
            fabric_transfer(events.now(), pkt.size, config.units.size());
        events.schedule_at(out, [this, pkt] {
            latencies.record(events.now(), Seconds{events.now() - pkt.created});
            delivered.record(events.now(), pkt.size);
            if (events.now() > warmup_end)
                latency_hist.record(
                    Seconds{events.now() - pkt.created}.micros());
            if (pkt.traced)
                trace_opts.sink->async_end(pkt.id, "pkt",
                                           Seconds{events.now()});
        });
    }
};

} // namespace

SimResult
simulate_panic(const PanicConfig& config, const core::TrafficProfile& traffic,
               SimOptions options)
{
    PanicSim sim(config, traffic, options);
    sim.schedule_next_arrival();
    sim.events.run_until(options.duration);

    SimResult r;
    r.delivered = sim.delivered.bandwidth(options.duration);
    r.delivered_ops = sim.delivered.rate(options.duration);
    r.mean_latency = sim.latencies.mean().value_or(Seconds{0.0});
    r.p50_latency = sim.latencies.p50().value_or(Seconds{0.0});
    r.p99_latency = sim.latencies.p99().value_or(Seconds{0.0});
    r.generated = sim.generated;
    r.completed = sim.delivered.requests();
    // Windowed drop accounting — same (warmup_end, horizon] convention as
    // completions, so drop_rate is an unbiased blocking estimate.
    const std::uint64_t offered = sim.offered_in_window.count();
    r.dropped = sim.drops_in_window.count();
    r.drop_rate = offered > 0
        ? static_cast<double>(r.dropped) / static_cast<double>(offered)
        : 0.0;

    const double window = options.duration - sim.warmup_end;
    for (std::size_t u = 0; u < sim.units.size(); ++u) {
        UnitState& st = sim.units[u];
        sim.touch(st);
        VertexStats vs;
        vs.name = config.units[u].name.empty()
            ? "unit" + std::to_string(u)
            : config.units[u].name;
        if (window > 0.0)
            vs.utilization = st.area_busy
                / (window
                   * static_cast<double>(config.units[u].parallelism));
        vs.served = st.served;
        vs.dropped = st.unit_dropped;
        r.vertex_stats.push_back(std::move(vs));
    }

    obs::MetricsRegistry reg;
    reg.counter("sim.generated").add(r.generated);
    reg.counter("sim.offered").add(offered);
    reg.counter("sim.completed").add(r.completed);
    reg.counter("sim.dropped").add(r.dropped);
    reg.gauge("sim.delivered_gbps").set(r.delivered.gbps());
    reg.gauge("sim.delivered_mops").set(r.delivered_ops.mops());
    reg.gauge("sim.drop_rate").set(r.drop_rate);
    reg.gauge("sim.mean_latency_us").set(r.mean_latency.micros());
    reg.gauge("sim.p50_latency_us").set(r.p50_latency.micros());
    reg.gauge("sim.p99_latency_us").set(r.p99_latency.micros());
    reg.histogram("sim.latency_us", panic_latency_bounds_us()) =
        sim.latency_hist;
    for (const VertexStats& vs : r.vertex_stats) {
        reg.counter("unit." + vs.name + ".served").add(vs.served);
        reg.counter("unit." + vs.name + ".dropped").add(vs.dropped);
        reg.gauge("unit." + vs.name + ".utilization").set(vs.utilization);
    }
    r.metrics = reg.snapshot();
    return r;
}

Bandwidth
panic_credit_capacity(const PanicUnit& unit, Bytes request,
                      const PanicConfig& config)
{
    const double service = unit.service.service_time(request).seconds();
    const double rtt = 2.0 * config.hop_latency.seconds()
        + (request / config.fabric_bw).seconds();
    const double window_bytes_per_sec =
        static_cast<double>(unit.credits) * request.bytes() / (service + rtt);
    const Bandwidth compute = unit.service.throughput(request)
        * static_cast<double>(unit.parallelism);
    return std::min(compute,
                    Bandwidth::from_bytes_per_sec(window_bytes_per_sec));
}

} // namespace lognic::sim
