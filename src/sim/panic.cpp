#include "lognic/sim/panic.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace lognic::sim {

namespace {

struct Packet {
    std::size_t class_index{0};
    Bytes size{Bytes{0.0}};
    SimTime created{0.0};
    std::size_t chain{0};
    std::size_t stage{0}; ///< index into the chain's unit list
};

struct UnitState {
    std::uint32_t credits_free{0};
    std::uint32_t busy{0};
    std::deque<Packet> pending; ///< held at the central scheduler
    std::deque<Packet> buffer;  ///< on-unit, waiting for an engine
};

struct PanicSim {
    const PanicConfig& config;
    const core::TrafficProfile& traffic;
    const SimOptions& options;

    EventQueue events;
    Rng rng;
    SimTime warmup_end;
    LatencyRecorder latencies;
    ThroughputMeter delivered;
    std::uint64_t generated{0};
    std::uint64_t dropped{0};

    std::vector<UnitState> units;
    std::vector<double> chain_weights;
    std::vector<double> class_pps_weight;
    double total_pps{0.0};

    // The switching fabric is a crossbar: each unit's ingress port (and
    // the TX port) has the full fabric bandwidth; only same-port transfers
    // serialize.
    struct LinkFree {
        SimTime free_at{0.0};
    };
    std::vector<LinkFree> fabric_ports;

    PanicSim(const PanicConfig& cfg, const core::TrafficProfile& tp,
             const SimOptions& opts)
        : config(cfg), traffic(tp), options(opts), rng(opts.seed),
          warmup_end(opts.duration * opts.warmup_fraction),
          latencies(warmup_end), delivered(warmup_end)
    {
        if (config.units.empty() || config.chains.empty())
            throw std::invalid_argument("simulate_panic: empty config");
        for (const auto& chain : config.chains) {
            if (chain.units.empty())
                throw std::invalid_argument("simulate_panic: empty chain");
            for (std::size_t u : chain.units) {
                if (u >= config.units.size())
                    throw std::invalid_argument(
                        "simulate_panic: chain references unknown unit");
            }
            chain_weights.push_back(chain.weight);
        }
        units.resize(config.units.size());
        for (std::size_t u = 0; u < config.units.size(); ++u) {
            if (config.units[u].credits == 0)
                throw std::invalid_argument(
                    "simulate_panic: unit needs at least one credit");
            units[u].credits_free = config.units[u].credits;
        }
        for (const auto& c : traffic.classes()) {
            const double pps = c.weight
                * traffic.ingress_bandwidth().bytes_per_sec()
                / c.size.bytes();
            class_pps_weight.push_back(pps);
            total_pps += pps;
        }
        fabric_ports.resize(config.units.size() + 1); // +1: the TX port
    }

    SimTime
    fabric_transfer(SimTime earliest, Bytes payload, std::size_t port)
    {
        LinkFree& p = fabric_ports[port];
        const SimTime start = std::max(earliest, p.free_at);
        p.free_at = start + (payload / config.fabric_bw).seconds();
        return p.free_at + config.hop_latency.seconds();
    }

    void
    schedule_next_arrival()
    {
        const double gap = options.poisson_arrivals
            ? rng.exponential(1.0 / total_pps)
            : 1.0 / total_pps;
        events.schedule_in(gap, [this] {
            if (events.now() >= options.duration)
                return;
            Packet pkt;
            pkt.class_index = rng.weighted_index(class_pps_weight);
            pkt.size = traffic.classes()[pkt.class_index].size;
            pkt.created = events.now();
            pkt.chain = rng.weighted_index(chain_weights);
            ++generated;
            // RMT parse, then hand the packet to the scheduler.
            events.schedule_in(config.rmt_latency.seconds(),
                               [this, pkt] { enqueue_at_scheduler(pkt); });
            schedule_next_arrival();
        });
    }

    void
    enqueue_at_scheduler(const Packet& pkt)
    {
        const std::size_t u = config.chains[pkt.chain].units[pkt.stage];
        if (pkt.stage == 0
            && units[u].pending.size() >= config.scheduler_queue_capacity) {
            // The central packet buffer is full: shed new arrivals.
            // Mid-chain packets are never shed (they already own buffering).
            ++dropped;
            return;
        }
        units[u].pending.push_back(pkt);
        try_dispatch(u);
    }

    void
    try_dispatch(std::size_t u)
    {
        UnitState& st = units[u];
        while (st.credits_free > 0 && !st.pending.empty()) {
            const Packet pkt = st.pending.front();
            st.pending.pop_front();
            --st.credits_free;
            const SimTime arrive = fabric_transfer(events.now(), pkt.size, u);
            events.schedule_at(arrive, [this, pkt, u] {
                units[u].buffer.push_back(pkt);
                try_serve(u);
            });
        }
    }

    void
    try_serve(std::size_t u)
    {
        UnitState& st = units[u];
        const PanicUnit& spec = config.units[u];
        while (st.busy < spec.parallelism && !st.buffer.empty()) {
            const Packet pkt = st.buffer.front();
            st.buffer.pop_front();
            ++st.busy;
            const double mean = spec.service.service_time(pkt.size).seconds();
            const double service = options.exponential_service
                ? rng.exponential(mean)
                : mean;
            events.schedule_in(service, [this, pkt, u] {
                --units[u].busy;
                try_serve(u);
                // Credit returns to the scheduler after one fabric hop.
                events.schedule_in(config.hop_latency.seconds(), [this, u] {
                    ++units[u].credits_free;
                    try_dispatch(u);
                });
                advance(pkt);
            });
        }
    }

    void
    advance(Packet pkt)
    {
        ++pkt.stage;
        if (pkt.stage < config.chains[pkt.chain].units.size()) {
            enqueue_at_scheduler(pkt);
            return;
        }
        // Egress: one last fabric traversal to the TX pipeline.
        const SimTime out =
            fabric_transfer(events.now(), pkt.size, config.units.size());
        events.schedule_at(out, [this, pkt] {
            latencies.record(events.now(), Seconds{events.now() - pkt.created});
            delivered.record(events.now(), pkt.size);
        });
    }
};

} // namespace

SimResult
simulate_panic(const PanicConfig& config, const core::TrafficProfile& traffic,
               SimOptions options)
{
    PanicSim sim(config, traffic, options);
    sim.schedule_next_arrival();
    sim.events.run_until(options.duration);

    SimResult r;
    r.delivered = sim.delivered.bandwidth(options.duration);
    r.delivered_ops = sim.delivered.rate(options.duration);
    r.mean_latency = sim.latencies.mean().value_or(Seconds{0.0});
    r.p50_latency = sim.latencies.p50().value_or(Seconds{0.0});
    r.p99_latency = sim.latencies.p99().value_or(Seconds{0.0});
    r.generated = sim.generated;
    r.completed = sim.delivered.requests();
    r.dropped = sim.dropped;
    r.drop_rate = sim.generated > 0
        ? static_cast<double>(sim.dropped)
            / static_cast<double>(sim.generated)
        : 0.0;
    return r;
}

Bandwidth
panic_credit_capacity(const PanicUnit& unit, Bytes request,
                      const PanicConfig& config)
{
    const double service = unit.service.service_time(request).seconds();
    const double rtt = 2.0 * config.hop_latency.seconds()
        + (request / config.fabric_bw).seconds();
    const double window_bytes_per_sec =
        static_cast<double>(unit.credits) * request.bytes() / (service + rtt);
    const Bandwidth compute = unit.service.throughput(request)
        * static_cast<double>(unit.parallelism);
    return std::min(compute,
                    Bandwidth::from_bytes_per_sec(window_bytes_per_sec));
}

} // namespace lognic::sim
