#include "lognic/sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace lognic::sim {

std::uint64_t
EventQueue::schedule_at(SimTime when, Action action)
{
    if (when < now_)
        throw std::invalid_argument("EventQueue: scheduling into the past");
    const Event ev{when, next_seq_++, action};
    // Hole-insertion sift-up: append a slot, move parents down into the
    // hole while they sort later than the new event, write the event once.
    events_.push_back(ev);
    std::size_t hole = events_.size() - 1;
    while (hole > 0) {
        const std::size_t parent = (hole - 1) / 2;
        if (!earlier(ev, events_[parent]))
            break;
        events_[hole] = events_[parent];
        hole = parent;
    }
    events_[hole] = ev;
    return ev.seq;
}

void
EventQueue::restore_clock(SimTime now, std::uint64_t next_seq,
                          std::uint64_t executed)
{
    if (!events_.empty())
        throw std::logic_error(
            "EventQueue::restore_clock: calendar not empty");
    now_ = now;
    next_seq_ = next_seq;
    executed_ = executed;
}

void
EventQueue::restore_event(SimTime when, std::uint64_t seq, Action action)
{
    if (seq >= next_seq_)
        throw std::logic_error(
            "EventQueue::restore_event: seq from the future");
    if (when < now_)
        throw std::logic_error(
            "EventQueue::restore_event: event before now");
    const Event ev{when, seq, action};
    events_.push_back(ev);
    std::size_t hole = events_.size() - 1;
    while (hole > 0) {
        const std::size_t parent = (hole - 1) / 2;
        if (!earlier(ev, events_[parent]))
            break;
        events_[hole] = events_[parent];
        hole = parent;
    }
    events_[hole] = ev;
}

EventQueue::Event
EventQueue::pop_top()
{
    const Event top = events_.front();
    const Event last = events_.back();
    events_.pop_back();
    if (!events_.empty()) {
        // Hole-insertion sift-down: the root hole descends toward the
        // smaller child until `last` fits, then `last` is written once.
        const std::size_t n = events_.size();
        std::size_t hole = 0;
        for (;;) {
            std::size_t child = 2 * hole + 1;
            if (child >= n)
                break;
            const std::size_t right = child + 1;
            if (right < n && earlier(events_[right], events_[child]))
                child = right;
            if (!earlier(events_[child], last))
                break;
            events_[hole] = events_[child];
            hole = child;
        }
        events_[hole] = last;
    }
    return top;
}

void
EventQueue::run_until(SimTime horizon)
{
    while (!events_.empty() && events_.front().when <= horizon) {
        Event ev = pop_top();
        now_ = ev.when;
        ++executed_;
        ev.action();
    }
    if (now_ < horizon)
        now_ = horizon;
}

RunOutcome
EventQueue::run_until(SimTime horizon, const RunLimits& limits)
{
    const std::uint64_t interval = std::max<std::uint64_t>(
        limits.check_interval, 1);
    std::uint64_t dispatched = 0;
    while (!events_.empty() && events_.front().when <= horizon) {
        if (limits.max_events != 0 && dispatched >= limits.max_events)
            return RunOutcome::kEventBudget;
        if (limits.should_abort && dispatched % interval == 0
            && limits.should_abort())
            return RunOutcome::kAborted;
        Event ev = pop_top();
        now_ = ev.when;
        ++executed_;
        ++dispatched;
        ev.action();
    }
    const RunOutcome outcome =
        events_.empty() ? RunOutcome::kDrained : RunOutcome::kHorizon;
    if (now_ < horizon)
        now_ = horizon;
    return outcome;
}

} // namespace lognic::sim
