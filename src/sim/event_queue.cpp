#include "lognic/sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace lognic::sim {

void
EventQueue::schedule_at(SimTime when, Action action)
{
    if (when < now_)
        throw std::invalid_argument("EventQueue: scheduling into the past");
    events_.push(Event{when, next_seq_++, std::move(action)});
}

void
EventQueue::run_until(SimTime horizon)
{
    while (!events_.empty() && events_.top().when <= horizon) {
        // priority_queue::top() is const; move out via const_cast is UB, so
        // copy the action handle (cheap: std::function) and pop.
        Event ev = events_.top();
        events_.pop();
        now_ = ev.when;
        ++executed_;
        ev.action();
    }
    if (now_ < horizon)
        now_ = horizon;
}

} // namespace lognic::sim
