#include "lognic/sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lognic::sim {

void
EventQueue::schedule_at(SimTime when, Action action)
{
    if (when < now_)
        throw std::invalid_argument("EventQueue: scheduling into the past");
    events_.push_back(Event{when, next_seq_++, std::move(action)});
    sift_up(events_.size() - 1);
}

void
EventQueue::sift_up(std::size_t i)
{
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!earlier(events_[i], events_[parent]))
            break;
        std::swap(events_[i], events_[parent]);
        i = parent;
    }
}

void
EventQueue::sift_down(std::size_t i)
{
    const std::size_t n = events_.size();
    for (;;) {
        std::size_t smallest = i;
        const std::size_t left = 2 * i + 1;
        const std::size_t right = 2 * i + 2;
        if (left < n && earlier(events_[left], events_[smallest]))
            smallest = left;
        if (right < n && earlier(events_[right], events_[smallest]))
            smallest = right;
        if (smallest == i)
            return;
        std::swap(events_[i], events_[smallest]);
        i = smallest;
    }
}

EventQueue::Event
EventQueue::pop_top()
{
    Event top = std::move(events_.front());
    if (events_.size() > 1)
        events_.front() = std::move(events_.back());
    events_.pop_back();
    if (!events_.empty())
        sift_down(0);
    return top;
}

void
EventQueue::run_until(SimTime horizon)
{
    while (!events_.empty() && events_.front().when <= horizon) {
        Event ev = pop_top();
        now_ = ev.when;
        ++executed_;
        ev.action();
    }
    if (now_ < horizon)
        now_ = horizon;
}

RunOutcome
EventQueue::run_until(SimTime horizon, const RunLimits& limits)
{
    const std::uint64_t interval = std::max<std::uint64_t>(
        limits.check_interval, 1);
    std::uint64_t dispatched = 0;
    while (!events_.empty() && events_.front().when <= horizon) {
        if (limits.max_events != 0 && dispatched >= limits.max_events)
            return RunOutcome::kEventBudget;
        if (limits.should_abort && dispatched % interval == 0
            && limits.should_abort())
            return RunOutcome::kAborted;
        Event ev = pop_top();
        now_ = ev.when;
        ++executed_;
        ++dispatched;
        ev.action();
    }
    const RunOutcome outcome =
        events_.empty() ? RunOutcome::kDrained : RunOutcome::kHorizon;
    if (now_ < horizon)
        now_ = horizon;
    return outcome;
}

} // namespace lognic::sim
