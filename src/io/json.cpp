#include "lognic/io/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace lognic::io {

std::string
format_double(double value)
{
    if (std::isnan(value))
        return "nan";
    if (std::isinf(value))
        return value > 0 ? "inf" : "-inf";
    char buf[32];
    if (value == std::floor(value) && std::abs(value) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    }
    return buf;
}

namespace {

[[noreturn]] void
type_error(const char* want, Json::Type have)
{
    const char* names[] = {"null", "bool", "number", "string", "array",
                           "object"};
    throw std::runtime_error(std::string("Json: expected ") + want
                             + ", have " + names[static_cast<int>(have)]);
}

/// Recursive-descent JSON parser over a string view.
class Parser {
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    Json parse_document()
    {
        const Json v = parse_value();
        skip_ws();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string& why)
    {
        throw std::runtime_error("Json parse error at offset "
                                 + std::to_string(pos_) + ": " + why);
    }

    void skip_ws()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char take()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c)
    {
        if (take() != c)
            fail(std::string("expected '") + c + "'");
    }

    bool try_take(char c)
    {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expect_keyword(const char* kw)
    {
        for (const char* p = kw; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("expected '") + kw + "'");
            ++pos_;
        }
    }

    Json parse_value()
    {
        skip_ws();
        switch (peek()) {
          case 'n':
            expect_keyword("null");
            return Json{};
          case 't':
            expect_keyword("true");
            return Json{true};
          case 'f':
            expect_keyword("false");
            return Json{false};
          case '"':
            return Json{parse_string()};
          case '[':
            return parse_array();
          case '{':
            return parse_object();
          default:
            return parse_number();
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        for (;;) {
            const char c = take();
            if (c == '"')
                return out;
            if (c == '\\') {
                const char esc = take();
                switch (esc) {
                  case '"':
                    out.push_back('"');
                    break;
                  case '\\':
                    out.push_back('\\');
                    break;
                  case '/':
                    out.push_back('/');
                    break;
                  case 'b':
                    out.push_back('\b');
                    break;
                  case 'f':
                    out.push_back('\f');
                    break;
                  case 'n':
                    out.push_back('\n');
                    break;
                  case 'r':
                    out.push_back('\r');
                    break;
                  case 't':
                    out.push_back('\t');
                    break;
                  case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = take();
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad \\u escape");
                    }
                    // Encode the BMP code point as UTF-8 (no surrogates).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(
                            static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(
                            static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                  }
                  default:
                    fail("bad escape");
                }
            } else {
                out.push_back(c);
            }
        }
    }

    Json parse_number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E' || text_[pos_] == '+'
                   || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0' || !std::isfinite(v))
            fail("malformed number '" + token + "'");
        return Json{v};
    }

    Json parse_array()
    {
        expect('[');
        JsonArray out;
        if (try_take(']'))
            return Json{std::move(out)};
        for (;;) {
            out.push_back(parse_value());
            skip_ws();
            if (try_take(']'))
                return Json{std::move(out)};
            expect(',');
        }
    }

    Json parse_object()
    {
        expect('{');
        JsonObject out;
        if (try_take('}'))
            return Json{std::move(out)};
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            out[std::move(key)] = parse_value();
            skip_ws();
            if (try_take('}'))
                return Json{std::move(out)};
            expect(',');
        }
    }

    const std::string& text_;
    std::size_t pos_{0};
};

void
escape_into(std::string& out, const std::string& s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

} // namespace

bool
Json::as_bool() const
{
    if (type_ != Type::kBool)
        type_error("bool", type_);
    return bool_;
}

double
Json::as_number() const
{
    if (type_ != Type::kNumber)
        type_error("number", type_);
    return number_;
}

const std::string&
Json::as_string() const
{
    if (type_ != Type::kString)
        type_error("string", type_);
    return string_;
}

const JsonArray&
Json::as_array() const
{
    if (type_ != Type::kArray)
        type_error("array", type_);
    return *array_;
}

const JsonObject&
Json::as_object() const
{
    if (type_ != Type::kObject)
        type_error("object", type_);
    return *object_;
}

const Json&
Json::at(const std::string& key) const
{
    const auto& obj = as_object();
    const auto it = obj.find(key);
    if (it == obj.end())
        throw std::runtime_error("Json: missing key '" + key + "'");
    return it->second;
}

bool
Json::contains(const std::string& key) const
{
    return type_ == Type::kObject
        && object_->find(key) != object_->end();
}

double
Json::number_or(const std::string& key, double fallback) const
{
    if (!contains(key))
        return fallback;
    return at(key).as_number();
}

Json&
Json::set(const std::string& key, Json value)
{
    if (type_ == Type::kNull) {
        type_ = Type::kObject;
        object_ = std::make_shared<JsonObject>();
    }
    if (type_ != Type::kObject)
        type_error("object", type_);
    if (object_.use_count() > 1)
        object_ = std::make_shared<JsonObject>(*object_);
    (*object_)[key] = std::move(value);
    return *this;
}

Json&
Json::push_back(Json value)
{
    if (type_ == Type::kNull) {
        type_ = Type::kArray;
        array_ = std::make_shared<JsonArray>();
    }
    if (type_ != Type::kArray)
        type_error("array", type_);
    if (array_.use_count() > 1)
        array_ = std::make_shared<JsonArray>(*array_);
    array_->push_back(std::move(value));
    return *this;
}

void
Json::dump_to(std::string& out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent >= 0) {
            out.push_back('\n');
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    switch (type_) {
      case Type::kNull:
        out += "null";
        break;
      case Type::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Type::kNumber: {
        // RFC 8259 has no token for non-finite numbers; emitting bare
        // inf/nan produced documents our own parser (and jq) rejected.
        // null is the standard lossy encoding — readers using number_or()
        // fall back to their defaults, which is the honest outcome for a
        // statistic that was undefined in the first place.
        if (!std::isfinite(number_)) {
            out += "null";
            break;
        }
        out += format_double(number_);
        break;
      }
      case Type::kString:
        escape_into(out, string_);
        break;
      case Type::kArray: {
        if (array_->empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        bool first = true;
        for (const auto& v : *array_) {
            if (!first)
                out.push_back(',');
            first = false;
            newline(depth + 1);
            v.dump_to(out, indent, depth + 1);
        }
        newline(depth);
        out.push_back(']');
        break;
      }
      case Type::kObject: {
        if (object_->empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        bool first = true;
        for (const auto& [key, v] : *object_) {
            if (!first)
                out.push_back(',');
            first = false;
            newline(depth + 1);
            escape_into(out, key);
            out += indent >= 0 ? ": " : ":";
            v.dump_to(out, indent, depth + 1);
        }
        newline(depth);
        out.push_back('}');
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

Json
Json::parse(const std::string& text)
{
    Parser p(text);
    return p.parse_document();
}

} // namespace lognic::io
