#include "lognic/io/serialize.hpp"

#include <stdexcept>

namespace lognic::io {

namespace {

const char*
kind_name(core::IpKind kind)
{
    return core::to_string(kind);
}

core::IpKind
kind_from_name(const std::string& name)
{
    for (core::IpKind k :
         {core::IpKind::kCpuCores, core::IpKind::kAccelerator,
          core::IpKind::kStorage, core::IpKind::kDsp}) {
        if (name == core::to_string(k))
            return k;
    }
    throw std::runtime_error("serialize: unknown IP kind '" + name + "'");
}

const char*
vertex_kind_name(core::VertexKind kind)
{
    return core::to_string(kind);
}

core::VertexKind
vertex_kind_from_name(const std::string& name)
{
    for (core::VertexKind k :
         {core::VertexKind::kIngress, core::VertexKind::kEgress,
          core::VertexKind::kIp, core::VertexKind::kRateLimiter}) {
        if (name == core::to_string(k))
            return k;
    }
    throw std::runtime_error("serialize: unknown vertex kind '" + name
                             + "'");
}

} // namespace

Json
to_json(const core::HardwareModel& hw)
{
    Json ips{JsonArray{}};
    for (core::IpId id = 0; id < hw.ip_count(); ++id) {
        const core::IpSpec& spec = hw.ip(id);
        Json ceilings{JsonArray{}};
        for (const auto& c : spec.roofline.ceilings()) {
            Json jc;
            jc.set("name", c.name);
            jc.set("gbps", c.bw.gbps());
            ceilings.push_back(std::move(jc));
        }
        Json jip;
        jip.set("name", spec.name);
        jip.set("kind", kind_name(spec.kind));
        jip.set("fixed_cost_us", spec.roofline.engine().fixed_cost.micros());
        jip.set("byte_rate_gbps", spec.roofline.engine().byte_rate.gbps());
        jip.set("ceilings", std::move(ceilings));
        jip.set("max_engines", static_cast<int>(spec.max_engines));
        jip.set("default_queue_capacity",
                static_cast<int>(spec.default_queue_capacity));
        jip.set("service_scv", spec.service_scv);
        ips.push_back(std::move(jip));
    }

    Json j;
    j.set("name", hw.name());
    j.set("interface_gbps", hw.interface_bandwidth().gbps());
    j.set("memory_gbps", hw.memory_bandwidth().gbps());
    j.set("line_rate_gbps", hw.line_rate().gbps());
    j.set("ips", std::move(ips));

    // Characterized IP-IP links.
    Json links{JsonArray{}};
    for (core::IpId a = 0; a < hw.ip_count(); ++a) {
        for (core::IpId b = a + 1; b < hw.ip_count(); ++b) {
            if (const auto bw = hw.ip_bandwidth(a, b)) {
                Json jl;
                jl.set("a", hw.ip(a).name);
                jl.set("b", hw.ip(b).name);
                jl.set("gbps", bw->gbps());
                links.push_back(std::move(jl));
            }
        }
    }
    j.set("ip_links", std::move(links));
    return j;
}

core::HardwareModel
hardware_from_json(const Json& j)
{
    core::HardwareModel hw(
        j.at("name").as_string(),
        Bandwidth::from_gbps(j.at("interface_gbps").as_number()),
        Bandwidth::from_gbps(j.at("memory_gbps").as_number()),
        Bandwidth::from_gbps(j.at("line_rate_gbps").as_number()));

    for (const Json& jip : j.at("ips").as_array()) {
        core::ServiceModel engine;
        engine.fixed_cost =
            Seconds::from_micros(jip.at("fixed_cost_us").as_number());
        engine.byte_rate =
            Bandwidth::from_gbps(jip.at("byte_rate_gbps").as_number());
        std::vector<core::BandwidthCeiling> ceilings;
        for (const Json& jc : jip.at("ceilings").as_array()) {
            ceilings.push_back(core::BandwidthCeiling{
                jc.at("name").as_string(),
                Bandwidth::from_gbps(jc.at("gbps").as_number())});
        }
        core::IpSpec spec;
        spec.name = jip.at("name").as_string();
        spec.kind = kind_from_name(jip.at("kind").as_string());
        spec.roofline =
            core::ExtendedRoofline(engine, std::move(ceilings));
        spec.max_engines = static_cast<std::uint32_t>(
            jip.at("max_engines").as_number());
        spec.default_queue_capacity = static_cast<std::uint32_t>(
            jip.at("default_queue_capacity").as_number());
        spec.service_scv = jip.number_or("service_scv", 1.0);
        hw.add_ip(std::move(spec));
    }

    if (j.contains("ip_links")) {
        for (const Json& jl : j.at("ip_links").as_array()) {
            const auto a = hw.find_ip(jl.at("a").as_string());
            const auto b = hw.find_ip(jl.at("b").as_string());
            if (!a || !b)
                throw std::runtime_error(
                    "serialize: ip_link references unknown IP");
            hw.set_ip_bandwidth(
                *a, *b, Bandwidth::from_gbps(jl.at("gbps").as_number()));
        }
    }
    return hw;
}

Json
to_json(const core::ExecutionGraph& graph)
{
    Json vertices{JsonArray{}};
    for (core::VertexId v = 0; v < graph.vertex_count(); ++v) {
        const core::Vertex& vx = graph.vertex(v);
        Json jv;
        jv.set("name", vx.name);
        jv.set("kind", vertex_kind_name(vx.kind));
        if (vx.kind == core::VertexKind::kIp)
            jv.set("ip", static_cast<int>(vx.ip));
        if (vx.kind == core::VertexKind::kRateLimiter)
            jv.set("rate_limit_gbps", vx.rate_limit.gbps());
        jv.set("parallelism", static_cast<int>(vx.params.parallelism));
        jv.set("queue_capacity",
               static_cast<int>(vx.params.queue_capacity));
        jv.set("partition", vx.params.partition);
        jv.set("overhead_us", vx.params.overhead.micros());
        jv.set("acceleration", vx.params.acceleration);
        jv.set("per_input_queues", Json{vx.params.per_input_queues});
        vertices.push_back(std::move(jv));
    }

    Json edges{JsonArray{}};
    for (core::EdgeId e = 0; e < graph.edge_count(); ++e) {
        const core::Edge& ed = graph.edge(e);
        Json je;
        je.set("from", static_cast<int>(ed.from));
        je.set("to", static_cast<int>(ed.to));
        je.set("delta", ed.params.delta);
        je.set("alpha", ed.params.alpha);
        je.set("beta", ed.params.beta);
        if (ed.params.dedicated_bw)
            je.set("dedicated_gbps", ed.params.dedicated_bw->gbps());
        edges.push_back(std::move(je));
    }

    Json j;
    j.set("name", graph.name());
    j.set("vertices", std::move(vertices));
    j.set("edges", std::move(edges));
    return j;
}

core::ExecutionGraph
graph_from_json(const Json& j)
{
    core::ExecutionGraph graph(j.at("name").as_string());
    for (const Json& jv : j.at("vertices").as_array()) {
        const auto kind = vertex_kind_from_name(jv.at("kind").as_string());
        const std::string name = jv.at("name").as_string();
        core::VertexParams params;
        params.parallelism = static_cast<std::uint32_t>(
            jv.number_or("parallelism", 0.0));
        params.queue_capacity = static_cast<std::uint32_t>(
            jv.number_or("queue_capacity", 0.0));
        params.partition = jv.number_or("partition", 1.0);
        params.overhead =
            Seconds::from_micros(jv.number_or("overhead_us", 0.0));
        params.acceleration = jv.number_or("acceleration", 1.0);
        params.per_input_queues = jv.contains("per_input_queues")
            && jv.at("per_input_queues").as_bool();

        switch (kind) {
          case core::VertexKind::kIngress:
            graph.add_ingress(name);
            break;
          case core::VertexKind::kEgress:
            graph.add_egress(name);
            break;
          case core::VertexKind::kIp:
            graph.add_ip_vertex(
                name,
                static_cast<core::IpId>(jv.at("ip").as_number()), params);
            break;
          case core::VertexKind::kRateLimiter:
            graph.add_rate_limiter(
                name,
                Bandwidth::from_gbps(
                    jv.at("rate_limit_gbps").as_number()),
                params.queue_capacity);
            break;
        }
    }
    for (const Json& je : j.at("edges").as_array()) {
        core::EdgeParams params;
        params.delta = je.number_or("delta", 1.0);
        params.alpha = je.number_or("alpha", 0.0);
        params.beta = je.number_or("beta", 0.0);
        if (je.contains("dedicated_gbps")) {
            params.dedicated_bw = Bandwidth::from_gbps(
                je.at("dedicated_gbps").as_number());
        }
        graph.add_edge(
            static_cast<core::VertexId>(je.at("from").as_number()),
            static_cast<core::VertexId>(je.at("to").as_number()), params);
    }
    return graph;
}

Json
to_json(const core::TrafficProfile& traffic)
{
    Json classes{JsonArray{}};
    for (const auto& c : traffic.classes()) {
        Json jc;
        jc.set("size_bytes", c.size.bytes());
        jc.set("weight", c.weight);
        classes.push_back(std::move(jc));
    }
    Json j;
    j.set("ingress_gbps", traffic.ingress_bandwidth().gbps());
    j.set("classes", std::move(classes));
    return j;
}

core::TrafficProfile
traffic_from_json(const Json& j)
{
    std::vector<core::PacketClass> classes;
    for (const Json& jc : j.at("classes").as_array()) {
        classes.push_back(core::PacketClass{
            Bytes{jc.at("size_bytes").as_number()},
            jc.at("weight").as_number()});
    }
    return core::TrafficProfile::mixed(
        std::move(classes),
        Bandwidth::from_gbps(j.at("ingress_gbps").as_number()));
}

Json
to_json(const Scenario& scenario)
{
    Json j;
    j.set("hardware", to_json(scenario.hw));
    j.set("graph", to_json(scenario.graph));
    j.set("traffic", to_json(scenario.traffic));
    return j;
}

Scenario
scenario_from_json(const Json& j)
{
    return Scenario{hardware_from_json(j.at("hardware")),
                    graph_from_json(j.at("graph")),
                    traffic_from_json(j.at("traffic"))};
}

std::string
save_scenario(const Scenario& scenario)
{
    return to_json(scenario).dump();
}

Scenario
load_scenario(const std::string& text)
{
    return scenario_from_json(Json::parse(text));
}

} // namespace lognic::io
