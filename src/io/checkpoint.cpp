#include "lognic/io/checkpoint.hpp"

#include <bit>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace lognic::io {
namespace {

std::string hex16(std::uint64_t value) {
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
    throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

/// Directory part of @p path ("." when there is none) for the
/// post-rename directory fsync.
std::string dir_of(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos) return ".";
    if (slash == 0) return "/";
    return path.substr(0, slash);
}

} // namespace

std::uint64_t fnv1a64(std::string_view data) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string encode_frame(const CheckpointFrame& frame) {
    if (frame.kind.empty())
        throw std::runtime_error("checkpoint frame kind must be non-empty");
    for (const char c : frame.kind)
        if (std::isspace(static_cast<unsigned char>(c)))
            throw std::runtime_error("checkpoint frame kind '" + frame.kind +
                                     "' must not contain whitespace");
    std::string out = "LOGNICCKPT ";
    out += std::to_string(frame.version);
    out += ' ';
    out += frame.kind;
    out += ' ';
    out += std::to_string(frame.payload.size());
    out += ' ';
    out += hex16(fnv1a64(frame.payload));
    out += '\n';
    out += frame.payload;
    return out;
}

std::optional<CheckpointFrame> decode_frame(const std::string& data,
                                            std::string* reason) {
    const auto fail = [reason](std::string why) -> std::optional<CheckpointFrame> {
        if (reason != nullptr) *reason = std::move(why);
        return std::nullopt;
    };

    const std::size_t nl = data.find('\n');
    if (nl == std::string::npos) return fail("truncated header: no newline");
    const std::string header = data.substr(0, nl);

    // Tokenize the header line: magic, version, kind, size, checksum.
    std::string tokens[5];
    std::size_t ntok = 0;
    std::size_t pos = 0;
    while (pos < header.size() && ntok < 5) {
        const std::size_t sp = header.find(' ', pos);
        const std::size_t end = (sp == std::string::npos) ? header.size() : sp;
        tokens[ntok++] = header.substr(pos, end - pos);
        pos = (sp == std::string::npos) ? header.size() : sp + 1;
    }
    if (ntok != 5 || pos != header.size())
        return fail("malformed header: expected 5 fields");
    if (tokens[0] != "LOGNICCKPT") return fail("bad magic");

    CheckpointFrame frame;
    std::uint64_t version = 0;
    std::uint64_t declared_size = 0;
    std::uint64_t declared_sum = 0;
    try {
        version = parse_u64(tokens[1], "checkpoint header version");
        declared_size = parse_u64(tokens[3], "checkpoint header payload size");
        declared_sum = parse_u64(tokens[4], "checkpoint header checksum");
    } catch (const std::exception& e) {
        return fail(std::string("malformed header: ") + e.what());
    }
    if (version != kCheckpointVersion)
        return fail("version skew: frame version " + tokens[1] +
                    ", reader supports " + std::to_string(kCheckpointVersion));
    frame.version = static_cast<std::uint32_t>(version);
    frame.kind = tokens[2];
    if (frame.kind.empty()) return fail("malformed header: empty kind");

    const std::size_t have = data.size() - (nl + 1);
    if (have != declared_size)
        return fail("truncated payload: header declares " + tokens[3] +
                    " bytes, file has " + std::to_string(have));
    frame.payload = data.substr(nl + 1);

    const std::uint64_t actual = fnv1a64(frame.payload);
    if (actual != declared_sum)
        return fail("checksum mismatch: header declares " + tokens[4] +
                    ", payload hashes to " + hex16(actual));
    return frame;
}

void atomic_write_file(const std::string& path, const std::string& contents) {
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) throw_errno("cannot create", tmp);

    std::size_t written = 0;
    while (written < contents.size()) {
        const ssize_t n =
            ::write(fd, contents.data() + written, contents.size() - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            throw_errno("cannot write", tmp);
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throw_errno("cannot fsync", tmp);
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        throw_errno("cannot close", tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        throw_errno("cannot rename into place", path);
    }
    // Persist the rename itself: without the directory fsync a crash can
    // roll the directory entry back even though the data blocks are safe.
    const std::string dir = dir_of(path);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd); // best-effort: some filesystems reject directory fsync
        ::close(dfd);
    }
}

std::optional<std::string> read_file_if_exists(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return std::nullopt;
    std::string out;
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            throw_errno("cannot read", path);
        }
        if (n == 0) break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
}

std::string double_to_hex(double value) {
    return hex16(std::bit_cast<std::uint64_t>(value));
}

double double_from_hex(const std::string& text, const std::string& context) {
    return std::bit_cast<double>(parse_u64(text, context));
}

std::string u64_to_hex(std::uint64_t value) { return hex16(value); }

std::uint64_t parse_u64(const std::string& text, const std::string& context) {
    const auto bad = [&](const std::string& why) -> std::runtime_error {
        return std::runtime_error("invalid unsigned integer for " + context +
                                  ": '" + text + "' (" + why + ")");
    };
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    if (begin == end) throw bad("empty");
    const std::string body = text.substr(begin, end - begin);
    if (body[0] == '-') throw bad("negative");
    // Hand-rolled hex/decimal accumulation: unlike stoull(base 0) this
    // rejects '+' signs and never reinterprets leading zeros as octal, and
    // every failure is rejected by name through @p context.
    std::size_t pos = 0;
    std::uint64_t base = 10;
    if (body.size() > 2 && body[0] == '0' &&
        (body[1] == 'x' || body[1] == 'X')) {
        base = 16;
        pos = 2;
    }
    if (pos == body.size()) throw bad("not a number");
    std::uint64_t value = 0;
    for (; pos < body.size(); ++pos) {
        const char c = body[pos];
        std::uint64_t digit = 0;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a') + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = static_cast<std::uint64_t>(c - 'A') + 10;
        else if (pos == 0 || (base == 16 && pos == 2))
            throw bad("not a number");
        else
            throw bad("trailing garbage");
        if (value > (UINT64_MAX - digit) / base) throw bad("out of range");
        value = value * base + digit;
    }
    return value;
}

} // namespace lognic::io
