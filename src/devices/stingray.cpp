#include "lognic/devices/stingray.hpp"

namespace lognic::devices {

namespace {

const Bandwidth kLineRate = Bandwidth::from_gbps(100.0);
const Bandwidth kInterconnect = Bandwidth::from_gbps(200.0);
const Bandwidth kDram = Bandwidth::from_gbps(150.0);
/// PCIe Gen3 x4 to the drive, minus protocol overhead.
const Bandwidth kSsdLink = Bandwidth::from_gbps(28.0);
/// A72 @ 3.0 GHz touching descriptors/headers (payload DMA is offloaded).
const Bandwidth kCoreStream = Bandwidth::from_gigabytes_per_sec(8.0);

const Seconds kSubmitFixed = Seconds::from_micros(2.2);
const Seconds kCompleteFixed = Seconds::from_micros(1.6);

core::IpSpec
core_ip(const char* name, Seconds fixed)
{
    core::ServiceModel engine;
    engine.fixed_cost = fixed;
    engine.byte_rate = kCoreStream;

    core::IpSpec spec;
    spec.name = name;
    spec.kind = core::IpKind::kCpuCores;
    spec.roofline = core::ExtendedRoofline(engine, {});
    spec.max_engines = 8;
    spec.default_queue_capacity = 256;
    return spec;
}

} // namespace

core::HardwareModel
stingray_ps1100r()
{
    core::HardwareModel hw("Stingray PS1100R", kInterconnect, kDram,
                           kLineRate);
    hw.add_ip(core_ip("cores-submit", kSubmitFixed));
    hw.add_ip(core_ip("cores-complete", kCompleteFixed));
    return hw;
}

Bandwidth
stingray_ssd_link()
{
    return kSsdLink;
}

Seconds
stingray_submit_cost()
{
    return kSubmitFixed;
}

Seconds
stingray_complete_cost()
{
    return kCompleteFixed;
}

} // namespace lognic::devices
