#include "lognic/devices/panic_proto.hpp"

namespace lognic::devices {

namespace {

const Bandwidth kFabric = Bandwidth::from_gbps(100.0);
const Seconds kHop = Seconds::from_nanos(20.0);
const Seconds kRmt = Seconds::from_nanos(300.0);

core::IpSpec
unit_ip(const std::string& name, Seconds fixed, Bandwidth stream,
        std::uint32_t engines)
{
    core::ServiceModel svc;
    svc.fixed_cost = fixed;
    svc.byte_rate = stream;

    core::IpSpec spec;
    spec.name = name;
    spec.kind = core::IpKind::kAccelerator;
    spec.roofline = core::ExtendedRoofline(svc, {});
    spec.max_engines = engines;
    spec.default_queue_capacity = 32;
    return spec;
}

} // namespace

sim::PanicConfig
panic_defaults()
{
    sim::PanicConfig cfg;
    cfg.fabric_bw = kFabric;
    cfg.hop_latency = kHop;
    cfg.rmt_latency = kRmt;
    return cfg;
}

sim::PanicUnit
panic_unit(const std::string& name, Seconds fixed, Bandwidth stream,
           std::uint32_t parallelism, std::uint32_t credits)
{
    sim::PanicUnit unit;
    unit.name = name;
    unit.service.fixed_cost = fixed;
    unit.service.byte_rate = stream;
    unit.parallelism = parallelism;
    unit.credits = credits;
    return unit;
}

core::HardwareModel
panic_parallel_chain_hw()
{
    // Compute-throughput ratio A1:A2:A3 = 4:7:3 (40/70/30 Gbps at MTU):
    // identical 10 Gbps engines, 4/7/3 of them.
    core::HardwareModel hw("PANIC-model2", Bandwidth::from_gbps(100.0),
                           Bandwidth::from_gbps(100.0),
                           Bandwidth::from_gbps(100.0));
    const Seconds fixed = Seconds::from_micros(0.2);
    const Bandwidth stream = Bandwidth::from_gbps(12.0);
    hw.add_ip(unit_ip("a1", fixed, stream, 4));
    hw.add_ip(unit_ip("a2", fixed, stream, 7));
    hw.add_ip(unit_ip("a3", fixed, stream, 3));
    return hw;
}

core::HardwareModel
panic_hybrid_chain_hw()
{
    // Four units of 11.5 Gbps-per-engine compute (at MTU).
    core::HardwareModel hw("PANIC-model3", Bandwidth::from_gbps(200.0),
                           Bandwidth::from_gbps(200.0),
                           Bandwidth::from_gbps(100.0));
    const Seconds fixed = Seconds::from_micros(0.1);
    const Bandwidth stream = Bandwidth::from_gbps(12.72);
    hw.add_ip(unit_ip("ip1", fixed, stream, 8));
    hw.add_ip(unit_ip("ip2", fixed, stream, 4));
    hw.add_ip(unit_ip("ip3", fixed, stream, 6));
    hw.add_ip(unit_ip("ip4", fixed, stream, 8));
    return hw;
}

} // namespace lognic::devices
