#include "lognic/devices/bluefield2.hpp"

#include <stdexcept>

namespace lognic::devices {

namespace {

const Bandwidth kLineRate = Bandwidth::from_gbps(100.0);
const Bandwidth kInterconnect = Bandwidth::from_gbps(200.0);
const Bandwidth kDram = Bandwidth::from_gbps(120.0);
/// One A72 core streaming packet payload through an NF.
const Bandwidth kArmStream = Bandwidth::from_gbps(8.0);

struct NfEntry {
    NetworkFunction nf;
    const char* name;
    double arm_fixed_us;   ///< ARM per-packet fixed cost
    const char* accel;     ///< accelerator IP name; nullptr = ARM only
    double prep_us;        ///< ARM-side offload preparation (O_i)
};

constexpr NfEntry kNfs[] = {
    {NetworkFunction::kFirewall, "fw", 0.22, "regex", 0.55},
    {NetworkFunction::kLoadBalancer, "lb", 0.20, "hash", 0.50},
    {NetworkFunction::kDpi, "dpi", 0.60, nullptr, 0.0},
    {NetworkFunction::kNat, "nat", 0.24, "conntrack", 0.50},
    {NetworkFunction::kEncryption, "pe", 0.70, "crypto", 0.35},
};

struct AccelEntry {
    const char* name;
    std::uint32_t engines;
    double fixed_us;       ///< per-op engine cost
    double stream_gbps;    ///< per-engine payload streaming rate
};

constexpr AccelEntry kAccels[] = {
    {"regex", 4, 0.45, 40.0},
    {"hash", 2, 0.25, 14.0}, // low ceiling: the optimizer's escape hatch
    {"conntrack", 2, 0.30, 80.0},
    {"crypto", 4, 0.35, 80.0},
};

const NfEntry&
nf_entry(NetworkFunction nf)
{
    for (const auto& e : kNfs) {
        if (e.nf == nf)
            return e;
    }
    throw std::invalid_argument("bluefield2: unknown network function");
}

} // namespace

const char*
to_string(NetworkFunction nf)
{
    return nf_entry(nf).name;
}

std::vector<NetworkFunction>
nf_chain_order()
{
    return {NetworkFunction::kFirewall, NetworkFunction::kLoadBalancer,
            NetworkFunction::kDpi, NetworkFunction::kNat,
            NetworkFunction::kEncryption};
}

bool
nf_accelerable(NetworkFunction nf)
{
    return nf_entry(nf).accel != nullptr;
}

const char*
nf_accelerator(NetworkFunction nf)
{
    const NfEntry& e = nf_entry(nf);
    if (e.accel == nullptr)
        throw std::invalid_argument(
            "bluefield2: DPI has no hardware-accelerated implementation");
    return e.accel;
}

Seconds
bf2_arm_cost(NetworkFunction nf, Bytes packet)
{
    return Seconds::from_micros(nf_entry(nf).arm_fixed_us)
        + packet / kArmStream;
}

Seconds
bf2_offload_prep(NetworkFunction nf)
{
    return Seconds::from_micros(nf_entry(nf).prep_us);
}

Bandwidth
bf2_arm_stream_rate()
{
    return kArmStream;
}

core::HardwareModel
bluefield2()
{
    core::HardwareModel hw("BlueField-2", kInterconnect, kDram, kLineRate);
    for (const auto& a : kAccels) {
        core::ServiceModel engine;
        engine.fixed_cost = Seconds::from_micros(a.fixed_us);
        engine.byte_rate = Bandwidth::from_gbps(a.stream_gbps);

        core::IpSpec spec;
        spec.name = a.name;
        spec.kind = core::IpKind::kAccelerator;
        spec.roofline = core::ExtendedRoofline(
            engine, {{"interconnect", kInterconnect}});
        spec.max_engines = a.engines;
        spec.default_queue_capacity = 64;
        hw.add_ip(std::move(spec));
    }
    return hw;
}

core::IpId
add_arm_ip(core::HardwareModel& hw, const std::string& name, Seconds fixed,
           double streamed_passes, std::uint32_t cores)
{
    if (cores == 0 || cores > 8)
        throw std::invalid_argument("bluefield2: 1..8 ARM cores");
    core::ServiceModel engine;
    engine.fixed_cost = fixed;
    engine.byte_rate = streamed_passes > 0.0
        ? kArmStream / streamed_passes
        : Bandwidth::from_gbps(1e6);

    core::IpSpec spec;
    spec.name = name;
    spec.kind = core::IpKind::kCpuCores;
    spec.roofline = core::ExtendedRoofline(engine, {});
    spec.max_engines = cores;
    spec.default_queue_capacity = 256;
    return hw.add_ip(std::move(spec));
}

} // namespace lognic::devices
