#include "lognic/devices/liquidio.hpp"

#include <stdexcept>

namespace lognic::devices {

namespace {

/// CMI feed into the on-chip crypto units.
const Bandwidth kCmiBw = Bandwidth::from_gbps(50.0);
/// I/O interconnect feed into the off-chip HFA/ZIP engines.
const Bandwidth kIoBw = Bandwidth::from_gbps(40.0);
/// 25 GbE ports.
const Bandwidth kLineRate = Bandwidth::from_gbps(25.0);

/// Streaming rate of one cnMIPS core touching packet payloads.
const Bandwidth kCoreStreamRate = Bandwidth::from_gigabytes_per_sec(4.0);

/// Accelerator engines are op-dominated; payload streaming is fast enough
/// that the interconnect ceilings, not the engine, bound large transfers.
const Bandwidth kAccelStreamRate = Bandwidth::from_gbps(1600.0);

struct KernelEntry {
    LiquidIoKernel kernel;
    const char* name;
    double accel_mops;     ///< calibrated P_IP2 (DESIGN.md S5)
    double core_fixed_us;  ///< per-request core orchestration fixed cost
    bool off_chip;
};

/// The calibrated catalog (see the file header for the derivations).
constexpr KernelEntry kCatalog[] = {
    {LiquidIoKernel::kCrc, "crc", 2.80, 2.500, false},
    {LiquidIoKernel::kMd5, "md5", 1.80, 4.425, false},
    {LiquidIoKernel::k3Des, "3des", 2.20, 4.600, false},
    {LiquidIoKernel::kAes, "aes", 2.00, 4.200, false},
    {LiquidIoKernel::kSms4, "sms4", 1.30, 4.400, false},
    {LiquidIoKernel::kKasumi, "kasumi", 1.70, 4.125, false},
    {LiquidIoKernel::kSha1, "sha1", 1.60, 4.300, false},
    {LiquidIoKernel::kHfa, "hfa", 1.182, 8.625, true},
    {LiquidIoKernel::kZip, "zip", 0.90, 10.000, true},
};

const KernelEntry&
entry(LiquidIoKernel kernel)
{
    for (const auto& e : kCatalog) {
        if (e.kernel == kernel)
            return e;
    }
    throw std::invalid_argument("liquidio: unknown kernel");
}

} // namespace

const char*
to_string(LiquidIoKernel kernel)
{
    return entry(kernel).name;
}

std::vector<LiquidIoKernel>
liquidio_kernels()
{
    std::vector<LiquidIoKernel> out;
    for (const auto& e : kCatalog)
        out.push_back(e.kernel);
    return out;
}

bool
is_off_chip(LiquidIoKernel kernel)
{
    return entry(kernel).off_chip;
}

OpsRate
liquidio_accel_rate(LiquidIoKernel kernel)
{
    return OpsRate::from_mops(entry(kernel).accel_mops);
}

Bandwidth
liquidio_line_rate()
{
    return kLineRate;
}

core::HardwareModel
liquidio_cn2360()
{
    core::HardwareModel hw("LiquidIO-II CN2360", kIoBw, kCmiBw, kLineRate);
    for (const auto& e : kCatalog) {
        core::ServiceModel engine;
        engine.fixed_cost = Seconds{1.0 / (e.accel_mops * 1e6)};
        engine.byte_rate = kAccelStreamRate;

        const core::BandwidthCeiling feed = e.off_chip
            ? core::BandwidthCeiling{"io-interconnect", kIoBw}
            : core::BandwidthCeiling{"cmi", kCmiBw};

        core::IpSpec spec;
        spec.name = e.name;
        spec.kind = core::IpKind::kAccelerator;
        spec.roofline = core::ExtendedRoofline(engine, {feed});
        spec.max_engines = 1;
        spec.default_queue_capacity = 64;
        hw.add_ip(std::move(spec));
    }
    return hw;
}

Seconds
liquidio_core_cost(LiquidIoKernel kernel, Bytes packet)
{
    return Seconds::from_micros(entry(kernel).core_fixed_us)
        + packet / kCoreStreamRate;
}

core::IpId
add_core_ip(core::HardwareModel& hw, LiquidIoKernel kernel,
            std::uint32_t cores)
{
    if (cores == 0 || cores > 16)
        throw std::invalid_argument(
            "liquidio: the CN2360 has 1..16 cnMIPS cores");
    core::ServiceModel engine;
    engine.fixed_cost = Seconds::from_micros(entry(kernel).core_fixed_us);
    engine.byte_rate = kCoreStreamRate;

    core::IpSpec spec;
    spec.name = std::string("cores-") + entry(kernel).name;
    spec.kind = core::IpKind::kCpuCores;
    spec.roofline = core::ExtendedRoofline(engine, {});
    spec.max_engines = cores;
    spec.default_queue_capacity = 128;
    return hw.add_ip(std::move(spec));
}

} // namespace lognic::devices
