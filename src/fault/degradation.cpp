#include "lognic/fault/degradation.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <tuple>

#include "lognic/core/model.hpp"

namespace lognic::fault {

namespace {

/// Steady fault state at one instant, accumulated by replaying a plan.
struct SteadyState {
    std::map<std::string, std::int64_t> engines_down;
    std::map<std::string, double> slowdown;   // service-time multiplier
    std::map<std::string, double> link_factor; // "interface"/"memory" keys
    std::map<std::string, std::uint32_t> queue_cap;
};

bool
is_link_name(const std::string& target)
{
    return target == "interface" || target == "memory" || target == "fabric";
}

/**
 * Replay @p plan to instant @p t. An event with duration > 0 whose window
 * [at, at + duration) has already closed by @p t contributes nothing;
 * open-ended events stay in force until a later event counters them
 * (assignment semantics: the last slowdown/degrade/capacity writer wins).
 */
SteadyState
replay(const FaultPlan& plan, double t)
{
    struct Timed {
        double at;
        FaultEvent ev;
        bool inverse;
    };
    std::vector<Timed> timeline;
    for (const FaultEvent& ev : plan.sorted()) {
        timeline.push_back({ev.at, ev, false});
        if (ev.duration > 0.0)
            timeline.push_back({ev.at + ev.duration, ev, true});
    }
    std::stable_sort(timeline.begin(), timeline.end(),
                     [](const Timed& a, const Timed& b) { return a.at < b.at; });

    SteadyState st;
    for (const Timed& item : timeline) {
        if (item.at > t)
            break;
        const FaultEvent& ev = item.ev;
        switch (ev.kind) {
          case FaultKind::kEngineFail:
            st.engines_down[ev.target] +=
                item.inverse ? -static_cast<std::int64_t>(ev.count)
                             : static_cast<std::int64_t>(ev.count);
            break;
          case FaultKind::kEngineRecover:
            st.engines_down[ev.target] +=
                item.inverse ? static_cast<std::int64_t>(ev.count)
                             : -static_cast<std::int64_t>(ev.count);
            break;
          case FaultKind::kSlowdown:
            st.slowdown[ev.target] = item.inverse ? 1.0 : ev.factor;
            break;
          case FaultKind::kLinkDegrade:
            st.link_factor[ev.target] = item.inverse ? 1.0 : ev.factor;
            break;
          case FaultKind::kDropBurst:
            // Transient loss does not move the analytical operating point;
            // only the simulator can express it. Target existence is still
            // checked by the caller.
            break;
          case FaultKind::kQueueCapacity:
            st.queue_cap[ev.target] = item.inverse ? 0u : ev.capacity;
            break;
        }
    }
    return st;
}

std::uint32_t
effective_engines(const core::HardwareModel& hw, const core::Vertex& v)
{
    return v.params.parallelism != 0 ? v.params.parallelism
                                     : hw.ip(v.ip).max_engines;
}

} // namespace

FaultedScenario
apply_faults_at(const FaultPlan& plan, double t,
                const core::HardwareModel& hw,
                const core::ExecutionGraph& graph)
{
    plan.validate();

    // Every target must resolve to a graph vertex or a reserved link name,
    // even when the event kind ends up not changing any model parameter.
    for (const FaultEvent& ev : plan.events) {
        if (is_link_name(ev.target))
            continue;
        if (!graph.find_vertex(ev.target))
            throw std::invalid_argument(
                "apply_faults_at: fault target '" + ev.target
                + "' is neither a vertex of graph '" + graph.name()
                + "' nor a reserved link name (interface|memory|fabric)");
    }

    const SteadyState st = replay(plan, t);

    auto link_scale = [&st](const char* name) {
        auto it = st.link_factor.find(name);
        return it == st.link_factor.end() ? 1.0 : it->second;
    };
    core::HardwareModel degraded_hw(
        hw.name(), hw.interface_bandwidth() * link_scale("interface"),
        hw.memory_bandwidth() * link_scale("memory"), hw.line_rate());
    for (core::IpId id = 0; id < hw.ip_count(); ++id)
        degraded_hw.add_ip(hw.ip(id));
    for (const auto& [a, b, bw] : hw.ip_links())
        degraded_hw.set_ip_bandwidth(a, b, bw);

    core::ExecutionGraph degraded = graph;
    for (core::VertexId v = 0; v < degraded.vertex_count(); ++v) {
        core::Vertex& vx = degraded.vertex(v);
        if (vx.kind != core::VertexKind::kIp)
            continue;
        const std::uint32_t base = effective_engines(hw, vx);
        if (auto it = st.engines_down.find(vx.name);
            it != st.engines_down.end() && it->second > 0) {
            const auto down =
                std::min<std::int64_t>(it->second, static_cast<std::int64_t>(base) - 1);
            // The queueing model cannot express a zero-server vertex, so a
            // fully failed vertex is floored at one engine here; callers
            // needing the all-lost point special-case it (degradation_curve).
            vx.params.parallelism =
                static_cast<std::uint32_t>(static_cast<std::int64_t>(base) - std::max<std::int64_t>(down, 0));
        }
        if (auto it = st.slowdown.find(vx.name);
            it != st.slowdown.end() && it->second > 1.0)
            vx.params.acceleration /= it->second;
        if (auto it = st.queue_cap.find(vx.name);
            it != st.queue_cap.end() && it->second > 0)
            vx.params.queue_capacity = it->second;
    }

    return FaultedScenario{std::move(degraded_hw), std::move(degraded)};
}

DegradationCurve
degradation_curve(const core::HardwareModel& hw,
                  const core::ExecutionGraph& graph,
                  const core::TrafficProfile& traffic,
                  const std::string& vertex, double max_fraction)
{
    if (!(max_fraction > 0.0) || max_fraction > 1.0)
        throw std::invalid_argument(
            "degradation_curve: max_fraction must be in (0, 1], got "
            + std::to_string(max_fraction));
    const auto vid = graph.find_vertex(vertex);
    if (!vid || graph.vertex(*vid).kind != core::VertexKind::kIp)
        throw std::invalid_argument(
            "degradation_curve: '" + vertex + "' is not an IP vertex of graph '"
            + graph.name() + "'");

    DegradationCurve curve;
    curve.vertex = vertex;
    curve.base_engines = effective_engines(hw, graph.vertex(*vid));

    const auto max_failed = static_cast<std::uint32_t>(
        static_cast<double>(curve.base_engines) * max_fraction);
    const core::Model model(hw);
    for (std::uint32_t k = 0; k <= max_failed; ++k) {
        DegradationPoint pt;
        pt.engines_failed = k;
        pt.engines_left = curve.base_engines - k;
        pt.fraction_failed =
            static_cast<double>(k) / static_cast<double>(curve.base_engines);
        if (pt.engines_left == 0) {
            // All engines lost: the vertex passes nothing; capacity and
            // throughput are zero and latency is undefined (reported as 0).
            curve.points.push_back(pt);
            continue;
        }
        core::ExecutionGraph g = graph;
        g.vertex(*vid).params.parallelism = pt.engines_left;
        const core::Report report = model.estimate(g, traffic);
        pt.capacity = report.throughput.capacity;
        pt.achieved = report.throughput.achieved;
        pt.mean_latency = report.latency.mean;
        curve.points.push_back(pt);
    }
    return curve;
}

io::Json
to_json(const DegradationCurve& curve)
{
    io::JsonArray points;
    for (const DegradationPoint& pt : curve.points) {
        io::JsonObject o;
        o.emplace("engines_failed", io::Json(static_cast<double>(pt.engines_failed)));
        o.emplace("engines_left", io::Json(static_cast<double>(pt.engines_left)));
        o.emplace("fraction_failed", io::Json(pt.fraction_failed));
        o.emplace("capacity_gbps", io::Json(pt.capacity.gbps()));
        o.emplace("achieved_gbps", io::Json(pt.achieved.gbps()));
        o.emplace("mean_latency_us", io::Json(pt.mean_latency.micros()));
        points.push_back(io::Json(std::move(o)));
    }
    io::JsonObject o;
    o.emplace("vertex", io::Json(curve.vertex));
    o.emplace("base_engines", io::Json(static_cast<double>(curve.base_engines)));
    o.emplace("points", io::Json(std::move(points)));
    return io::Json(std::move(o));
}

} // namespace lognic::fault
