#include "lognic/fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace lognic::fault {

namespace {

std::string
describe(std::size_t index, const FaultEvent& ev)
{
    return "FaultPlan event #" + std::to_string(index) + " ("
        + to_string(ev.kind) + " @" + std::to_string(ev.at) + "s, target '"
        + ev.target + "'): ";
}

} // namespace

const char*
to_string(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kEngineFail:
        return "engine_fail";
      case FaultKind::kEngineRecover:
        return "engine_recover";
      case FaultKind::kSlowdown:
        return "slowdown";
      case FaultKind::kLinkDegrade:
        return "link_degrade";
      case FaultKind::kDropBurst:
        return "drop_burst";
      case FaultKind::kQueueCapacity:
        return "queue_capacity";
    }
    return "unknown";
}

FaultKind
fault_kind_from_string(const std::string& name)
{
    for (FaultKind k :
         {FaultKind::kEngineFail, FaultKind::kEngineRecover,
          FaultKind::kSlowdown, FaultKind::kLinkDegrade,
          FaultKind::kDropBurst, FaultKind::kQueueCapacity}) {
        if (name == to_string(k))
            return k;
    }
    throw std::invalid_argument("unknown fault kind '" + name + "'");
}

const char*
to_string(InServicePolicy policy)
{
    return policy == InServicePolicy::kRequeue ? "requeue" : "drop";
}

InServicePolicy
in_service_policy_from_string(const std::string& name)
{
    if (name == "requeue")
        return InServicePolicy::kRequeue;
    if (name == "drop")
        return InServicePolicy::kDrop;
    throw std::invalid_argument(
        "unknown in-service policy '" + name + "' (want requeue|drop)");
}

std::vector<FaultEvent>
FaultPlan::sorted() const
{
    std::vector<FaultEvent> out = events;
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at < b.at;
                     });
    return out;
}

void
FaultPlan::validate() const
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        const FaultEvent& ev = events[i];
        const std::string where = describe(i, ev);
        if (!std::isfinite(ev.at) || ev.at < 0.0)
            throw std::invalid_argument(where + "time must be finite and >= 0");
        if (!std::isfinite(ev.duration) || ev.duration < 0.0)
            throw std::invalid_argument(where + "duration must be >= 0");
        if (ev.target.empty())
            throw std::invalid_argument(where + "missing target name");
        switch (ev.kind) {
          case FaultKind::kEngineFail:
          case FaultKind::kEngineRecover:
            if (ev.count == 0)
                throw std::invalid_argument(where + "count must be >= 1");
            break;
          case FaultKind::kSlowdown:
            if (!std::isfinite(ev.factor) || ev.factor < 1.0)
                throw std::invalid_argument(
                    where + "slowdown factor must be >= 1");
            break;
          case FaultKind::kLinkDegrade:
            if (!std::isfinite(ev.factor) || ev.factor <= 0.0
                || ev.factor > 1.0)
                throw std::invalid_argument(
                    where + "degrade factor must be in (0, 1]");
            break;
          case FaultKind::kDropBurst:
            if (!std::isfinite(ev.probability) || ev.probability <= 0.0
                || ev.probability > 1.0)
                throw std::invalid_argument(
                    where + "drop probability must be in (0, 1]");
            break;
          case FaultKind::kQueueCapacity:
            if (ev.capacity == 0)
                throw std::invalid_argument(
                    where + "capacity override must be >= 1");
            break;
        }
    }
}

FaultPlan
random_fault_plan(std::uint64_t seed,
                  const std::vector<std::string>& targets,
                  const RandomFaultConfig& config)
{
    if (!(config.horizon > 0.0) || !(config.mtbf > 0.0)
        || !(config.mttr > 0.0) || config.max_engines_per_fault == 0)
        throw std::invalid_argument(
            "random_fault_plan: horizon/mtbf/mttr must be positive and "
            "max_engines_per_fault >= 1");
    FaultPlan plan;
    // One independent substream per target (seed + target index) keeps the
    // timeline of target i invariant under reordering of the target list's
    // tail — and mt19937_64 sequences are identical on every platform.
    for (std::size_t t = 0; t < targets.size(); ++t) {
        std::mt19937_64 rng(seed + 0x9E3779B97F4A7C15ull * (t + 1));
        std::exponential_distribution<double> ttf(1.0 / config.mtbf);
        std::exponential_distribution<double> ttr(1.0 / config.mttr);
        std::uniform_int_distribution<std::uint32_t> engines(
            1, config.max_engines_per_fault);
        double now = 0.0;
        for (;;) {
            now += ttf(rng);
            if (now >= config.horizon)
                break;
            FaultEvent fail;
            fail.at = now;
            fail.kind = FaultKind::kEngineFail;
            fail.target = targets[t];
            fail.count = engines(rng);
            const double repair = ttr(rng);
            // Clip the repair to the horizon: a failure that would outlive
            // the run simply stays in force (duration 0 = permanent).
            if (now + repair < config.horizon)
                fail.duration = repair;
            plan.events.push_back(fail);
            now += repair;
            if (now >= config.horizon)
                break;
        }
    }
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.at < b.at;
                     });
    plan.validate();
    return plan;
}

io::Json
to_json(const FaultEvent& event)
{
    io::JsonObject o;
    o.emplace("at", io::Json(event.at));
    o.emplace("kind", io::Json(to_string(event.kind)));
    o.emplace("target", io::Json(event.target));
    switch (event.kind) {
      case FaultKind::kEngineFail:
      case FaultKind::kEngineRecover:
        o.emplace("count", io::Json(static_cast<double>(event.count)));
        break;
      case FaultKind::kSlowdown:
      case FaultKind::kLinkDegrade:
        o.emplace("factor", io::Json(event.factor));
        break;
      case FaultKind::kDropBurst:
        o.emplace("probability", io::Json(event.probability));
        break;
      case FaultKind::kQueueCapacity:
        o.emplace("capacity", io::Json(static_cast<double>(event.capacity)));
        break;
    }
    if (event.duration > 0.0)
        o.emplace("duration", io::Json(event.duration));
    return io::Json(std::move(o));
}

io::Json
to_json(const FaultPlan& plan)
{
    io::JsonArray events;
    for (const FaultEvent& ev : plan.events)
        events.push_back(to_json(ev));
    io::JsonObject o;
    o.emplace("faults", io::Json(std::move(events)));
    o.emplace("in_service_policy",
              io::Json(to_string(plan.in_service_policy)));
    return io::Json(std::move(o));
}

FaultPlan
fault_plan_from_json(const io::Json& doc)
{
    const io::Json* events = nullptr;
    FaultPlan plan;
    // Name-lookup and range errors surface as invalid_argument; re-wrap
    // them so this parser honors its all-runtime_error contract.
    try {
        if (doc.is_array()) {
            events = &doc;
        } else if (doc.is_object() && doc.contains("faults")) {
            events = &doc.at("faults");
            if (doc.contains("in_service_policy"))
                plan.in_service_policy = in_service_policy_from_string(
                    doc.at("in_service_policy").as_string());
        } else {
            throw std::runtime_error(
                "fault plan: expected {\"faults\": [...]} or a bare array");
        }
        for (const io::Json& j : events->as_array()) {
            if (!j.is_object() || !j.contains("kind")
                || !j.contains("target"))
                throw std::runtime_error(
                    "fault plan: each event needs \"kind\" and \"target\"");
            FaultEvent ev;
            ev.kind = fault_kind_from_string(j.at("kind").as_string());
            ev.target = j.at("target").as_string();
            ev.at = j.number_or("at", 0.0);
            ev.count =
                static_cast<std::uint32_t>(j.number_or("count", 1.0));
            ev.factor = j.number_or("factor", 1.0);
            ev.duration = j.number_or("duration", 0.0);
            ev.probability = j.number_or("probability", 1.0);
            ev.capacity =
                static_cast<std::uint32_t>(j.number_or("capacity", 1.0));
            plan.events.push_back(std::move(ev));
        }
        plan.validate();
    } catch (const std::invalid_argument& e) {
        throw std::runtime_error(std::string("fault plan: ") + e.what());
    }
    return plan;
}

std::string
sample_fault_plan()
{
    FaultPlan plan;
    FaultEvent fail;
    fail.at = 0.01;
    fail.kind = FaultKind::kEngineFail;
    fail.target = "cores";
    fail.count = 2;
    fail.duration = 0.02; // auto-recovers at t = 0.03
    plan.events.push_back(fail);

    FaultEvent degrade;
    degrade.at = 0.015;
    degrade.kind = FaultKind::kLinkDegrade;
    degrade.target = "memory";
    degrade.factor = 0.5;
    degrade.duration = 0.01;
    plan.events.push_back(degrade);

    FaultEvent burst;
    burst.at = 0.02;
    burst.kind = FaultKind::kDropBurst;
    burst.target = "crypto";
    burst.probability = 0.5;
    burst.duration = 0.002;
    plan.events.push_back(burst);

    return to_json(plan).dump();
}

} // namespace lognic::fault
