#include "lognic/runner/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace lognic::runner {

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait_idle()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    if (first_error_)
        std::rethrow_exception(std::exchange(first_error_, nullptr));
}

void
ThreadPool::worker_loop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty())
            return; // stop_ and drained
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        if (error && !first_error_)
            first_error_ = error;
        --active_;
        if (queue_.empty() && active_ == 0)
            idle_cv_.notify_all();
    }
}

void
parallel_for(std::size_t n, std::size_t threads,
             const std::function<void(std::size_t)>& body)
{
    if (n == 0)
        return;
    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    auto drain = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
                next.store(n); // abandon remaining indices
                return;
            }
        }
    };

    ThreadPool pool(std::min(threads, n));
    for (std::size_t w = 0; w < pool.size(); ++w)
        pool.submit(drain);
    pool.wait_idle();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace lognic::runner
