#include "lognic/runner/sweep.hpp"

#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

#include "lognic/runner/seed.hpp"
#include "lognic/runner/thread_pool.hpp"

namespace lognic::runner {

namespace {

std::string
format_gbps(double gbps)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "rate=%gGbps", gbps);
    return buf;
}

std::string
format_size(double bytes)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "size=%gB", bytes);
    return buf;
}

io::Json
to_json(const Summary& s)
{
    io::JsonObject o;
    o.emplace("n", io::Json(static_cast<double>(s.n)));
    o.emplace("mean", io::Json(s.mean));
    o.emplace("stddev", io::Json(s.stddev));
    o.emplace("ci95", io::Json(s.ci_half));
    return io::Json(std::move(o));
}

std::string
hex_seed(std::uint64_t seed)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(seed));
    return buf;
}

/// One (point, replication) slot of a guarded campaign.
struct TaskOutcome {
    sim::SimResult result;
    bool ok{false};
    std::uint64_t seed{0};     ///< seed of the last attempt made
    std::size_t attempts{0};
    std::string error;         ///< what() of the last failed attempt
    std::exception_ptr eptr;
};

struct GuardedOutcome {
    SweepReport report;
    /// Failure of the lowest (point, replication) — what run() rethrows.
    std::exception_ptr first_error;
};

GuardedOutcome
run_guarded_impl(const std::vector<SweepPoint>& points,
                 const SweepOptions& options)
{
    const std::size_t reps = options.replications > 0
        ? options.replications
        : 1;
    const std::size_t npoints = points.size();
    std::vector<std::vector<TaskOutcome>> raw(
        npoints, std::vector<TaskOutcome>(reps));

    // One task per (point, replication): replications of a slow point can
    // run alongside other points, and every outcome — including the retry
    // chain — is a pure function of the flattened index, never of the
    // executing thread or of other points' fates.
    parallel_for(npoints * reps, options.threads, [&](std::size_t task) {
        const std::size_t p = task / reps;
        const std::size_t r = task % reps;
        const SweepPoint& pt = points[p];
        TaskOutcome& out = raw[p][r];
        if (options.resume_lookup) {
            CompletedTask done;
            if (options.resume_lookup(task, done)) {
                // Journaled outcome (success or exhausted-retries failure):
                // replay it verbatim. No simulation, no completion hook —
                // the journal already has it.
                out.ok = done.ok;
                out.seed = done.seed;
                out.attempts = done.attempts;
                out.error = std::move(done.error);
                out.result = std::move(done.result);
                return;
            }
        }
        const std::uint64_t seed0 =
            derive_seed(derive_seed(options.root_seed, p), r);
        for (std::size_t attempt = 0; attempt <= options.max_retries;
             ++attempt) {
            // Attempt 0 keeps the classic seed (so an empty retry budget
            // reproduces historical results bit-for-bit); attempt k draws
            // a fresh-but-deterministic derived seed.
            out.seed = attempt == 0 ? seed0 : derive_seed(seed0, attempt);
            out.attempts = attempt + 1;
            sim::SimOptions so = pt.options;
            so.seed = out.seed;
            try {
                out.result = sim::simulate(pt.hw, pt.graph, pt.traffic, so);
                out.ok = true;
                break;
            } catch (const std::exception& e) {
                out.error = e.what();
                out.eptr = std::current_exception();
            } catch (...) {
                out.error = "unknown exception";
                out.eptr = std::current_exception();
            }
        }
        if (options.on_task_complete) {
            CompletedTask done;
            done.ok = out.ok;
            done.seed = out.seed;
            done.attempts = out.attempts;
            done.error = out.error;
            if (done.ok)
                done.result = out.result;
            options.on_task_complete(task, done);
        }
    });

    GuardedOutcome out;
    for (std::size_t p = 0; p < npoints; ++p) {
        const TaskOutcome* fail = nullptr;
        std::size_t fail_r = 0;
        for (std::size_t r = 0; r < reps; ++r) {
            if (!raw[p][r].ok) {
                fail = &raw[p][r];
                fail_r = r;
                break;
            }
        }
        if (fail) {
            FailedPoint f;
            f.index = p;
            f.label = points[p].label;
            f.replication = fail_r;
            f.seed = fail->seed;
            f.attempts = fail->attempts;
            f.error = fail->error;
            out.report.failed.push_back(std::move(f));
            if (!out.first_error)
                out.first_error = fail->eptr;
            continue;
        }
        std::vector<std::uint64_t> seeds;
        std::vector<sim::SimResult> results;
        seeds.reserve(reps);
        results.reserve(reps);
        for (std::size_t r = 0; r < reps; ++r) {
            TaskOutcome& t = raw[p][r];
            if (t.result.truncated) {
                TruncationRecord tr;
                tr.index = p;
                tr.label = points[p].label;
                tr.replication = r;
                tr.seed = t.seed;
                tr.reason = t.result.truncation_reason;
                tr.sim_time_reached = t.result.sim_time_reached;
                out.report.truncated.push_back(std::move(tr));
            }
            seeds.push_back(t.seed);
            results.push_back(std::move(t.result));
        }
        PointResult pr;
        pr.index = p;
        pr.label = points[p].label;
        pr.stats = Replicator::aggregate(seeds, results);
        out.report.results.push_back(std::move(pr));
    }
    return out;
}

} // namespace

std::size_t
Sweep::add(SweepPoint point)
{
    points_.push_back(std::move(point));
    return points_.size() - 1;
}

std::vector<PointResult>
Sweep::run(const SweepOptions& options) const
{
    GuardedOutcome out = run_guarded_impl(points_, options);
    if (out.first_error)
        std::rethrow_exception(out.first_error);
    // A failure replayed from a checkpoint journal carries no live
    // exception; fail-fast still owes the caller a throw.
    if (!out.report.failed.empty())
        throw std::runtime_error(out.report.failed.front().error);
    return std::move(out.report.results);
}

SweepReport
Sweep::run_guarded(const SweepOptions& options) const
{
    return run_guarded_impl(points_, options).report;
}

SweepSpec
sweep_spec_from_json(const io::Json& doc)
{
    if (!doc.is_object() || !doc.contains("scenario")
        || !doc.contains("sweep"))
        throw std::runtime_error(
            "sweep spec: expected {\"scenario\": ..., \"sweep\": ...}");
    SweepSpec spec{io::scenario_from_json(doc.at("scenario")),
                   {}, {}, {}, {}};

    const io::Json& sw = doc.at("sweep");
    if (!sw.is_object())
        throw std::runtime_error("sweep spec: \"sweep\" must be an object");
    if (sw.contains("rates_gbps")) {
        for (const auto& v : sw.at("rates_gbps").as_array())
            spec.rates_gbps.push_back(v.as_number());
    }
    if (sw.contains("packet_sizes")) {
        for (const auto& v : sw.at("packet_sizes").as_array())
            spec.packet_sizes_bytes.push_back(v.as_number());
    }
    spec.options.replications = static_cast<std::size_t>(
        sw.number_or("replications", 1.0));
    spec.options.threads = static_cast<std::size_t>(
        sw.number_or("threads", 1.0));
    spec.options.root_seed = static_cast<std::uint64_t>(
        sw.number_or("root_seed", 42.0));
    spec.sim.duration = sw.number_or("duration", spec.sim.duration);
    spec.sim.warmup_fraction =
        sw.number_or("warmup_fraction", spec.sim.warmup_fraction);
    const double retries = sw.number_or("max_retries", 0.0);
    const double max_events = sw.number_or("max_sim_events", 0.0);
    const double deadline = sw.number_or("deadline_seconds", 0.0);
    if (retries < 0.0 || max_events < 0.0 || deadline < 0.0)
        throw std::runtime_error(
            "sweep spec: max_retries/max_sim_events/deadline_seconds "
            "must be >= 0");
    spec.options.max_retries = static_cast<std::size_t>(retries);
    spec.sim.watchdog.max_events = static_cast<std::uint64_t>(max_events);
    spec.sim.watchdog.wall_clock_seconds = deadline;
    if (sw.contains("faults"))
        spec.sim.faults = fault::fault_plan_from_json(sw.at("faults"));
    if (spec.options.replications == 0)
        throw std::runtime_error("sweep spec: replications must be >= 1");
    if (spec.sim.duration <= 0.0)
        throw std::runtime_error("sweep spec: duration must be > 0");
    return spec;
}

Sweep
build_sweep(const SweepSpec& spec)
{
    // An absent axis contributes a single "keep the base" element.
    std::vector<double> rates = spec.rates_gbps;
    if (rates.empty())
        rates.push_back(spec.base.traffic.ingress_bandwidth().gbps());
    std::vector<double> sizes = spec.packet_sizes_bytes;
    const bool size_axis = !sizes.empty();
    if (!size_axis)
        sizes.push_back(0.0); // placeholder: keep the base packet mix

    Sweep sweep;
    for (double size : sizes) {
        for (double rate : rates) {
            std::string label;
            core::TrafficProfile traffic = spec.base.traffic;
            if (size_axis) {
                traffic = core::TrafficProfile::fixed(
                    Bytes{size}, Bandwidth::from_gbps(rate));
                label = format_size(size) + "," + format_gbps(rate);
            } else {
                traffic.set_ingress_bandwidth(Bandwidth::from_gbps(rate));
                label = format_gbps(rate);
            }
            sweep.add(SweepPoint{std::move(label), spec.base.hw,
                                 spec.base.graph, std::move(traffic),
                                 spec.sim});
        }
    }
    return sweep;
}

io::Json
to_json(const PointResult& result)
{
    io::JsonObject o;
    o.emplace("index", io::Json(static_cast<double>(result.index)));
    o.emplace("label", io::Json(result.label));
    o.emplace("replications",
              io::Json(static_cast<double>(result.stats.replications)));
    o.emplace("degenerate",
              io::Json(static_cast<double>(result.stats.degenerate)));
    io::JsonArray seeds;
    for (std::uint64_t s : result.stats.seeds)
        seeds.emplace_back(hex_seed(s));
    o.emplace("seeds", io::Json(std::move(seeds)));
    o.emplace("delivered_gbps", to_json(result.stats.delivered_gbps));
    o.emplace("delivered_mops", to_json(result.stats.delivered_mops));
    o.emplace("mean_latency_us", to_json(result.stats.mean_latency_us));
    o.emplace("p50_latency_us", to_json(result.stats.p50_latency_us));
    o.emplace("p99_latency_us", to_json(result.stats.p99_latency_us));
    o.emplace("drop_rate", to_json(result.stats.drop_rate));
    // Aggregated structured snapshot (counters summed, gauges averaged
    // across replications); omitted when nothing was published.
    if (!result.stats.metrics.empty())
        o.emplace("metrics", result.stats.metrics.to_json());
    return io::Json(std::move(o));
}

io::Json
sweep_results_json(const std::vector<PointResult>& results)
{
    io::JsonArray points;
    for (const auto& r : results)
        points.push_back(to_json(r));
    io::JsonObject o;
    o.emplace("points", io::Json(std::move(points)));
    return io::Json(std::move(o));
}

io::Json
to_json(const FailedPoint& failure)
{
    io::JsonObject o;
    o.emplace("index", io::Json(static_cast<double>(failure.index)));
    o.emplace("label", io::Json(failure.label));
    o.emplace("replication",
              io::Json(static_cast<double>(failure.replication)));
    o.emplace("seed", io::Json(hex_seed(failure.seed)));
    o.emplace("attempts", io::Json(static_cast<double>(failure.attempts)));
    o.emplace("error", io::Json(failure.error));
    return io::Json(std::move(o));
}

io::Json
to_json(const TruncationRecord& record)
{
    io::JsonObject o;
    o.emplace("index", io::Json(static_cast<double>(record.index)));
    o.emplace("label", io::Json(record.label));
    o.emplace("replication",
              io::Json(static_cast<double>(record.replication)));
    o.emplace("seed", io::Json(hex_seed(record.seed)));
    o.emplace("reason", io::Json(record.reason));
    o.emplace("sim_time_reached", io::Json(record.sim_time_reached));
    return io::Json(std::move(o));
}

io::Json
to_json(const SweepReport& report)
{
    io::JsonObject o = sweep_results_json(report.results).as_object();
    io::JsonArray failed;
    for (const auto& f : report.failed)
        failed.push_back(to_json(f));
    io::JsonArray truncated;
    for (const auto& t : report.truncated)
        truncated.push_back(to_json(t));
    o.emplace("failed", io::Json(std::move(failed)));
    o.emplace("truncated", io::Json(std::move(truncated)));
    o.emplace("complete", io::Json(report.complete()));
    return io::Json(std::move(o));
}

std::string
sample_sweep_spec(const io::Scenario& base)
{
    io::JsonObject sw;
    sw.emplace("rates_gbps", io::Json(io::JsonArray{
                                 io::Json(5.0), io::Json(12.0)}));
    sw.emplace("replications", io::Json(2.0));
    sw.emplace("threads", io::Json(2.0));
    sw.emplace("root_seed", io::Json(42.0));
    sw.emplace("duration", io::Json(0.002));
    io::JsonObject doc;
    doc.emplace("scenario", io::to_json(base));
    doc.emplace("sweep", io::Json(std::move(sw)));
    return io::Json(std::move(doc)).dump();
}

} // namespace lognic::runner
