#include "lognic/runner/replicator.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "lognic/runner/seed.hpp"
#include "lognic/runner/thread_pool.hpp"

namespace lognic::runner {

namespace {

/**
 * Two-sided 97.5% Student-t critical values for df = 1..30; beyond that
 * the normal approximation (1.96) is within 0.5%. Indexed by df - 1.
 */
constexpr double kT975[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
};

double
t975(std::size_t df)
{
    if (df == 0)
        return 0.0;
    if (df <= 30)
        return kT975[df - 1];
    return 1.96;
}

} // namespace

Summary
summarize(const std::vector<double>& samples)
{
    Summary s;
    s.n = samples.size();
    if (s.n == 0)
        return s;
    double sum = 0.0;
    for (double x : samples)
        sum += x;
    s.mean = sum / static_cast<double>(s.n);
    if (s.n < 2)
        return s;
    double ss = 0.0;
    for (double x : samples) {
        const double d = x - s.mean;
        ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
    s.ci_half = t975(s.n - 1) * s.stddev
        / std::sqrt(static_cast<double>(s.n));
    return s;
}

std::vector<std::uint64_t>
Replicator::seeds() const
{
    std::vector<std::uint64_t> out;
    out.reserve(replications_);
    for (std::size_t i = 0; i < replications_; ++i)
        out.push_back(derive_seed(root_seed_, i));
    return out;
}

ReplicationResult
Replicator::run(const SimFn& fn, std::size_t threads) const
{
    if (replications_ == 0)
        throw std::invalid_argument("Replicator: zero replications");
    const auto reps_seeds = seeds();
    std::vector<sim::SimResult> results(replications_);
    parallel_for(replications_, threads, [&](std::size_t i) {
        results[i] = fn(reps_seeds[i]);
    });
    return aggregate(reps_seeds, results);
}

GuardedReplication
Replicator::run_guarded(const SimFn& fn, std::size_t threads) const
{
    return run_guarded(fn, threads, ReplicatorHooks{});
}

GuardedReplication
Replicator::run_guarded(const SimFn& fn, std::size_t threads,
                        const ReplicatorHooks& hooks) const
{
    if (replications_ == 0)
        throw std::invalid_argument("Replicator: zero replications");
    const auto reps_seeds = seeds();
    std::vector<sim::SimResult> results(replications_);
    std::vector<std::string> errors(replications_);
    std::vector<char> ok(replications_, 0);
    parallel_for(replications_, threads, [&](std::size_t i) {
        if (hooks.lookup) {
            CompletedTask done;
            if (hooks.lookup(i, done)) {
                // Replay the journaled outcome; no simulation, no hook.
                ok[i] = done.ok ? 1 : 0;
                results[i] = std::move(done.result);
                errors[i] = std::move(done.error);
                return;
            }
        }
        try {
            results[i] = fn(reps_seeds[i]);
            ok[i] = 1;
        } catch (const std::exception& e) {
            errors[i] = e.what();
        } catch (...) {
            errors[i] = "unknown exception";
        }
        if (hooks.on_complete) {
            CompletedTask done;
            done.ok = ok[i] != 0;
            done.seed = reps_seeds[i];
            done.attempts = 1;
            done.error = errors[i];
            if (done.ok)
                done.result = results[i];
            hooks.on_complete(i, done);
        }
    });

    GuardedReplication out;
    std::vector<std::uint64_t> good_seeds;
    std::vector<sim::SimResult> good_results;
    for (std::size_t i = 0; i < replications_; ++i) {
        if (ok[i]) {
            good_seeds.push_back(reps_seeds[i]);
            good_results.push_back(std::move(results[i]));
        } else {
            out.failed.push_back(
                FailedReplication{i, reps_seeds[i], std::move(errors[i])});
        }
    }
    out.stats = aggregate(good_seeds, good_results);
    return out;
}

ReplicationResult
Replicator::aggregate(const std::vector<std::uint64_t>& seeds,
                      const std::vector<sim::SimResult>& results)
{
    if (seeds.size() != results.size())
        throw std::invalid_argument(
            "Replicator::aggregate: seeds/results size mismatch");
    ReplicationResult agg;
    agg.replications = results.size();
    agg.seeds = seeds;

    std::vector<double> gbps, mops, drop, lat_mean, lat_p50, lat_p99;
    for (const auto& r : results) {
        gbps.push_back(r.delivered.gbps());
        mops.push_back(r.delivered_ops.mops());
        drop.push_back(r.drop_rate);
        if (r.completed == 0) {
            // Empty-set sentinel: latency fields are meaningless, skip.
            ++agg.degenerate;
            continue;
        }
        lat_mean.push_back(r.mean_latency.micros());
        lat_p50.push_back(r.p50_latency.micros());
        lat_p99.push_back(r.p99_latency.micros());
    }
    agg.delivered_gbps = summarize(gbps);
    agg.delivered_mops = summarize(mops);
    agg.drop_rate = summarize(drop);
    agg.mean_latency_us = summarize(lat_mean);
    agg.p50_latency_us = summarize(lat_p50);
    agg.p99_latency_us = summarize(lat_p99);

    std::vector<obs::MetricsSnapshot> snapshots;
    for (const auto& r : results) {
        if (!r.metrics.empty())
            snapshots.push_back(r.metrics);
    }
    if (!snapshots.empty())
        agg.metrics = obs::aggregate(snapshots);
    return agg;
}

} // namespace lognic::runner
