#include "lognic/apps/nf_chain.hpp"

#include <stdexcept>

#include "lognic/core/model.hpp"

namespace lognic::apps {

using devices::NetworkFunction;

bool
NfPlacement::offloaded(NetworkFunction nf) const
{
    switch (nf) {
      case NetworkFunction::kFirewall:
        return fw;
      case NetworkFunction::kLoadBalancer:
        return lb;
      case NetworkFunction::kDpi:
        return false;
      case NetworkFunction::kNat:
        return nat;
      case NetworkFunction::kEncryption:
        return pe;
    }
    throw std::invalid_argument("NfPlacement: unknown network function");
}

std::string
NfPlacement::to_string() const
{
    std::string out;
    for (NetworkFunction nf : devices::nf_chain_order()) {
        if (!out.empty())
            out += '-';
        out += devices::to_string(nf);
        out += offloaded(nf) ? "@hw" : "@arm";
    }
    return out;
}

std::vector<NfPlacement>
all_placements()
{
    std::vector<NfPlacement> out;
    for (int mask = 0; mask < 16; ++mask) {
        NfPlacement p;
        p.fw = (mask & 1) != 0;
        p.lb = (mask & 2) != 0;
        p.nat = (mask & 4) != 0;
        p.pe = (mask & 8) != 0;
        out.push_back(p);
    }
    return out;
}

NfPlacement
arm_only_placement()
{
    return NfPlacement{};
}

NfPlacement
accelerator_only_placement()
{
    return NfPlacement{true, true, true, true};
}

NfChainScenario
make_nf_chain(const NfPlacement& placement)
{
    core::HardwareModel hw = devices::bluefield2();

    // The merged ARM stage: every ARM-resident NF plus the preparation
    // overhead of every offloaded NF.
    Seconds arm_fixed{0.0};
    double arm_passes = 0.0;
    std::vector<NetworkFunction> offloads;
    for (NetworkFunction nf : devices::nf_chain_order()) {
        if (placement.offloaded(nf)) {
            arm_fixed += devices::bf2_offload_prep(nf);
            offloads.push_back(nf);
        } else {
            arm_fixed += devices::bf2_arm_cost(nf, Bytes{0.0});
            arm_passes += 1.0;
        }
    }
    const core::IpId arm_ip =
        devices::add_arm_ip(hw, "arm", arm_fixed, arm_passes);

    core::ExecutionGraph g("nfchain-" + placement.to_string());
    const auto ingress = g.add_ingress();
    const auto egress = g.add_egress();
    const auto v_arm = g.add_ip_vertex("arm", arm_ip);
    g.add_edge(ingress, v_arm, core::EdgeParams{1.0, 0.0, 0.0, {}});

    core::VertexId prev = v_arm;
    for (NetworkFunction nf : offloads) {
        const core::IpId accel = *hw.find_ip(devices::nf_accelerator(nf));
        const auto v = g.add_ip_vertex(devices::nf_accelerator(nf), accel);
        // Payload crosses the SoC interconnect into the accelerator domain.
        g.add_edge(prev, v, core::EdgeParams{1.0, 1.0, 0.0, {}});
        prev = v;
    }
    // Final hop to the TX pipeline; it recrosses the interconnect only when
    // leaving an accelerator domain.
    core::EdgeParams out;
    out.delta = 1.0;
    out.alpha = offloads.empty() ? 0.0 : 1.0;
    g.add_edge(prev, egress, out);

    return NfChainScenario{std::move(hw), std::move(g)};
}

NfPlacement
lognic_opt_placement(const core::TrafficProfile& traffic)
{
    NfPlacement best;
    double best_tput = -1.0;
    double best_lat = 0.0;
    for (const NfPlacement& p : all_placements()) {
        NfChainScenario sc = make_nf_chain(p);
        const core::Model model(sc.hw);
        const core::Report rep = model.estimate(sc.graph, traffic);
        const double tput = rep.throughput.capacity.bits_per_sec();
        const double lat = rep.latency.mean.seconds();
        if (tput > best_tput || (tput == best_tput && lat < best_lat)) {
            best_tput = tput;
            best_lat = lat;
            best = p;
        }
    }
    return best;
}

} // namespace lognic::apps
