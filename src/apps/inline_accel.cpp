#include "lognic/apps/inline_accel.hpp"

namespace lognic::apps {

InlineAccelScenario
make_inline_accel(devices::LiquidIoKernel kernel, std::uint32_t cores)
{
    core::HardwareModel hw = devices::liquidio_cn2360();
    const core::IpId cores_ip = devices::add_core_ip(hw, kernel, 16);
    const core::IpId accel_ip =
        *hw.find_ip(devices::to_string(kernel));

    core::ExecutionGraph g(std::string("inline-")
                           + devices::to_string(kernel));
    const auto ingress = g.add_ingress();
    const auto egress = g.add_egress();

    core::VertexParams core_params;
    core_params.parallelism = cores;
    const auto v_cores =
        g.add_ip_vertex("nic-cores", cores_ip, core_params);
    const auto v_accel =
        g.add_ip_vertex(devices::to_string(kernel), accel_ip);

    const bool off_chip = devices::is_off_chip(kernel);

    // RX -> cores: packets land in the packet buffer.
    g.add_edge(ingress, v_cores, core::EdgeParams{1.0, 0.0, 0.0, {}});
    // Cores -> accelerator: payload crosses the engine's data feed.
    core::EdgeParams to_accel;
    to_accel.delta = 1.0;
    to_accel.alpha = off_chip ? 1.0 : 0.0;
    to_accel.beta = off_chip ? 0.0 : 1.0;
    g.add_edge(v_cores, v_accel, to_accel);
    // Accelerator -> TX: the echo response leaves; the accelerator's own
    // output is a digest/verdict, so the payload does not recross a medium.
    g.add_edge(v_accel, egress, core::EdgeParams{1.0, 0.0, 0.0, {}});

    return InlineAccelScenario{std::move(hw), std::move(g), cores_ip,
                               accel_ip,      v_cores,      v_accel};
}

InlineAccelScenario
make_inline_accel_unbounded(devices::LiquidIoKernel kernel,
                            std::uint32_t cores, Bandwidth feed_rate)
{
    InlineAccelScenario sc = make_inline_accel(kernel, cores);
    sc.hw.set_line_rate(feed_rate);
    return sc;
}

} // namespace lognic::apps
