#include "lognic/apps/panic_models.hpp"

#include <algorithm>
#include <stdexcept>

#include "lognic/core/model.hpp"
#include "lognic/core/optimizer.hpp"
#include "lognic/devices/panic_proto.hpp"

namespace lognic::apps {

namespace {

/// Model-1 chain unit: calibrated so the credit knee lands at the paper's
/// 5/4/4/4 for traffic profiles 1-4 (see DESIGN.md S5).
const Seconds kChainUnitFixed = Seconds::from_nanos(12.5);
const Bandwidth kChainUnitStream = Bandwidth::from_gbps(250.0);

} // namespace

sim::PanicConfig
make_panic_pipelined_chain(std::uint32_t credits, std::uint32_t stages)
{
    if (credits == 0 || stages == 0)
        throw std::invalid_argument(
            "make_panic_pipelined_chain: credits and stages must be >= 1");
    sim::PanicConfig cfg = devices::panic_defaults();
    sim::PanicChain chain;
    for (std::uint32_t s = 0; s < stages; ++s) {
        cfg.units.push_back(devices::panic_unit(
            "unit" + std::to_string(s + 1), kChainUnitFixed,
            kChainUnitStream, 1, credits));
        chain.units.push_back(s);
    }
    chain.weight = 1.0;
    cfg.chains.push_back(std::move(chain));
    return cfg;
}

Bytes
mean_request_size(const core::TrafficProfile& traffic)
{
    // Byte weights w_i at size s_i give packet counts proportional to
    // w_i / s_i; the packet-count mean size is total bytes / total packets.
    double count = 0.0;
    for (const auto& c : traffic.classes())
        count += c.weight / c.size.bytes();
    return Bytes{1.0 / count};
}

Bandwidth
lognic_panic_chain_capacity(const core::TrafficProfile& traffic,
                            std::uint32_t credits, std::uint32_t stages)
{
    const sim::PanicConfig cfg = make_panic_pipelined_chain(credits, stages);
    const Bytes request = mean_request_size(traffic);
    Bandwidth capacity = cfg.fabric_bw;
    for (const auto& unit : cfg.units) {
        capacity = std::min(capacity,
                            sim::panic_credit_capacity(unit, request, cfg));
    }
    return capacity;
}

std::uint32_t
lognic_optimal_credits(const core::TrafficProfile& traffic,
                       std::uint32_t max_credits, double tolerance)
{
    const Bandwidth saturated =
        lognic_panic_chain_capacity(traffic, max_credits);
    for (std::uint32_t c = 1; c < max_credits; ++c) {
        const Bandwidth cap = lognic_panic_chain_capacity(traffic, c);
        if (cap.bits_per_sec()
            >= (1.0 - tolerance) * saturated.bits_per_sec())
            return c;
    }
    return max_credits;
}

PanicParallelScenario
make_panic_parallel_chain(double a2_percent)
{
    if (a2_percent <= 0.0 || a2_percent >= 80.0)
        throw std::invalid_argument(
            "make_panic_parallel_chain: A2 share must be in (0, 80)");
    PanicParallelScenario sc{devices::panic_parallel_chain_hw(),
                             core::ExecutionGraph("panic-model2")};
    const auto ingress = sc.graph.add_ingress();
    const auto egress = sc.graph.add_egress();
    const auto a1 = sc.graph.add_ip_vertex("a1", *sc.hw.find_ip("a1"));
    const auto a2 = sc.graph.add_ip_vertex("a2", *sc.hw.find_ip("a2"));
    const auto a3 = sc.graph.add_ip_vertex("a3", *sc.hw.find_ip("a3"));

    const double x = a2_percent / 100.0;
    sc.graph.add_edge(ingress, a1, core::EdgeParams{0.20, 0.0, 0.0, {}});
    sc.graph.add_edge(ingress, a2, core::EdgeParams{x, 0.0, 0.0, {}});
    sc.graph.add_edge(ingress, a3,
                      core::EdgeParams{0.80 - x, 0.0, 0.0, {}});
    sc.graph.add_edge(a1, egress, core::EdgeParams{0.20, 0.0, 0.0, {}});
    sc.graph.add_edge(a2, egress, core::EdgeParams{x, 0.0, 0.0, {}});
    sc.graph.add_edge(a3, egress,
                      core::EdgeParams{0.80 - x, 0.0, 0.0, {}});
    return sc;
}

double
lognic_opt_split(const core::TrafficProfile& traffic)
{
    // One continuous knob: X, the percentage steered to A2.
    PanicParallelScenario seed = make_panic_parallel_chain(40.0);
    core::ContinuousProblem problem;
    problem.graph = seed.graph;
    problem.traffic = traffic;
    problem.apply = [](core::ExecutionGraph& g, core::TrafficProfile&,
                       const solver::Vector& x) {
        const double share = x[0] / 100.0;
        // Edges 1/2 (ingress->a2/a3) and 4/5 (a2/a3->egress) carry the split.
        g.edge(1).params.delta = share;
        g.edge(2).params.delta = 0.80 - share;
        g.edge(4).params.delta = share;
        g.edge(5).params.delta = 0.80 - share;
    };
    // Minimize latency, but a lossy configuration must never look good:
    // penalize the worst per-IP drop probability heavily so the optimizer
    // cannot "save" latency by overloading one accelerator's finite queue.
    problem.custom_objective = [](const core::Report& r) {
        return r.latency.mean.micros()
            + 1e4 * r.latency.max_drop_probability;
    };
    problem.bounds.lower = {5.0};
    problem.bounds.upper = {75.0};
    problem.x0 = {40.0};

    const core::Optimizer opt(devices::panic_parallel_chain_hw());
    return opt.optimize(problem).x[0];
}

PanicHybridScenario
make_panic_hybrid(double ip3_fraction, std::uint32_t ip4_parallelism)
{
    if (ip3_fraction < 0.0 || ip3_fraction > 1.0)
        throw std::invalid_argument(
            "make_panic_hybrid: split fraction must be in [0, 1]");
    if (ip4_parallelism == 0 || ip4_parallelism > 8)
        throw std::invalid_argument(
            "make_panic_hybrid: IP4 parallelism must be 1..8");

    PanicHybridScenario sc{devices::panic_hybrid_chain_hw(),
                           core::ExecutionGraph("panic-model3")};
    const auto ingress = sc.graph.add_ingress();
    const auto egress = sc.graph.add_egress();
    const auto ip1 = sc.graph.add_ip_vertex("ip1", *sc.hw.find_ip("ip1"));
    const auto ip2 = sc.graph.add_ip_vertex("ip2", *sc.hw.find_ip("ip2"));
    const auto ip3 = sc.graph.add_ip_vertex("ip3", *sc.hw.find_ip("ip3"));
    core::VertexParams ip4_params;
    ip4_params.parallelism = ip4_parallelism;
    const auto ip4 =
        sc.graph.add_ip_vertex("ip4", *sc.hw.find_ip("ip4"), ip4_params);

    const double to_ip1 = 0.7;
    const double to_ip2 = 0.3;
    const double d13 = to_ip1 * ip3_fraction;
    const double d14 = to_ip1 * (1.0 - ip3_fraction);
    sc.graph.add_edge(ingress, ip1, core::EdgeParams{to_ip1, 0, 0, {}});
    sc.graph.add_edge(ingress, ip2, core::EdgeParams{to_ip2, 0, 0, {}});
    sc.graph.add_edge(ip1, ip3, core::EdgeParams{d13, 0, 0, {}});
    sc.graph.add_edge(ip1, ip4, core::EdgeParams{d14, 0, 0, {}});
    sc.graph.add_edge(ip2, ip4, core::EdgeParams{to_ip2, 0, 0, {}});
    sc.graph.add_edge(ip3, egress, core::EdgeParams{d13, 0, 0, {}});
    sc.graph.add_edge(ip4, egress,
                      core::EdgeParams{d14 + to_ip2, 0, 0, {}});
    return sc;
}

std::uint32_t
lognic_opt_parallelism(double ip3_fraction,
                       const core::TrafficProfile& traffic,
                       std::uint32_t max_parallelism)
{
    double saturated = 0.0;
    {
        PanicHybridScenario sc =
            make_panic_hybrid(ip3_fraction, max_parallelism);
        const core::Model model(sc.hw);
        saturated =
            model.throughput(sc.graph, traffic).capacity.bits_per_sec();
    }
    for (std::uint32_t d = 1; d < max_parallelism; ++d) {
        PanicHybridScenario sc = make_panic_hybrid(ip3_fraction, d);
        const core::Model model(sc.hw);
        const double cap =
            model.throughput(sc.graph, traffic).capacity.bits_per_sec();
        if (cap >= 0.999 * saturated)
            return d;
    }
    return max_parallelism;
}

} // namespace lognic::apps
