#include "lognic/apps/nvmeof.hpp"

#include <stdexcept>

#include "lognic/devices/stingray.hpp"

namespace lognic::apps {

namespace {

/// Shared Figure-2c graph construction around an already-registered SSD IP.
NvmeOfScenario
build_scenario(core::HardwareModel hw, core::IpId ssd_ip,
               const traffic::IoWorkload& workload,
               Seconds ssd_overhead)
{
    const core::IpId submit_ip = *hw.find_ip("cores-submit");
    const core::IpId complete_ip = *hw.find_ip("cores-complete");

    core::ExecutionGraph g("nvmeof-" + workload.name);
    const auto ingress = g.add_ingress("eth-ingress");
    const auto egress = g.add_egress("eth-egress");
    const auto v_submit = g.add_ip_vertex("ip1-submit", submit_ip);
    core::VertexParams ssd_params;
    ssd_params.overhead = ssd_overhead;
    const auto v_ssd = g.add_ip_vertex("ip2-ssd", ssd_ip, ssd_params);
    const auto v_complete = g.add_ip_vertex("ip3-complete", complete_ip);

    const auto pcie = devices::stingray_ssd_link();

    // Edge 1: RDMA payload lands in DRAM while cores parse the command.
    g.add_edge(ingress, v_submit, core::EdgeParams{1.0, 0.0, 1.0, {}});
    // Edge 2: NVMe submission; data DMA between DRAM and the drive (PCIe).
    g.add_edge(v_submit, v_ssd, core::EdgeParams{1.0, 0.0, 1.0, pcie});
    // Edge 3: NVMe completion path back through DRAM over PCIe.
    g.add_edge(v_ssd, v_complete, core::EdgeParams{1.0, 0.0, 1.0, pcie});
    // Edge 4: response packets out of DRAM to the wire.
    g.add_edge(v_complete, egress, core::EdgeParams{1.0, 0.0, 1.0, {}});

    return NvmeOfScenario{std::move(hw), std::move(g), ssd_ip};
}

} // namespace

NvmeOfScenario
make_nvmeof_target(const ssd::CalibratedSsd& calibrated,
                   const traffic::IoWorkload& workload)
{
    core::HardwareModel hw = devices::stingray_ps1100r();
    const core::IpId ssd_ip =
        hw.add_ip(calibrated.to_ip_spec("ssd", workload.block_size));
    // The fitted sojourn curve covers the full SSD residence time, so the
    // vertex carries no extra overhead.
    return build_scenario(std::move(hw), ssd_ip, workload, Seconds{0.0});
}

NvmeOfScenario
make_nvmeof_testbed(const ssd::SsdGroundTruth& drive,
                    const traffic::IoWorkload& workload)
{
    core::HardwareModel hw = devices::stingray_ps1100r();
    const Seconds occupancy = drive.mean_occupancy(workload);
    core::ServiceModel engine;
    engine.byte_rate = workload.block_size / occupancy;
    core::IpSpec spec;
    spec.name = "ssd";
    spec.kind = core::IpKind::kStorage;
    spec.roofline = core::ExtendedRoofline(engine, {});
    spec.max_engines = drive.spec().parallelism;
    spec.default_queue_capacity = 256;
    const core::IpId ssd_ip = hw.add_ip(std::move(spec));
    // Controller pipelining: latency beyond the channel occupancy shows up
    // as a fixed per-command delay.
    const Seconds extra{std::max(
        0.0, drive.base_latency(workload).seconds() - occupancy.seconds())};
    return build_scenario(std::move(hw), ssd_ip, workload, extra);
}

Bandwidth
mixed_model_bandwidth(const ssd::CalibratedSsd& read_calib,
                      const ssd::CalibratedSsd& write_calib,
                      double read_fraction)
{
    if (read_fraction < 0.0 || read_fraction > 1.0)
        throw std::invalid_argument(
            "mixed_model_bandwidth: read fraction must be in [0, 1]");
    const double cr = read_calib.capacity.bits_per_sec();
    const double cw = write_calib.capacity.bits_per_sec();
    if (cr <= 0.0 || cw <= 0.0)
        throw std::invalid_argument(
            "mixed_model_bandwidth: calibrations lack capacity");
    return Bandwidth{1.0
                     / (read_fraction / cr + (1.0 - read_fraction) / cw)};
}

} // namespace lognic::apps
