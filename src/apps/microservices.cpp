#include "lognic/apps/microservices.hpp"

#include <functional>
#include <numeric>
#include <stdexcept>

#include "lognic/core/model.hpp"

namespace lognic::apps {

namespace {

/// cnMIPS payload streaming rate (one core, one pass).
const Bandwidth kCoreStream = Bandwidth::from_gigabytes_per_sec(2.0);
constexpr std::uint32_t kTotalCores = 16;
// Run-to-completion inflation: the whole chain's code and working set
// thrash each cnMIPS core's small caches (16 KB I-cache), where pinned
// stages stay resident. Calibrated so LogNIC-opt's throughput gain over
// round-robin at 80% load lands in the paper's ~35% regime.
constexpr double kMonolithicPenalty = 1.75;
const Seconds kHandoff = Seconds::from_micros(0.20);
const Bytes kRequestSize{512.0};

struct WorkloadEntry {
    E3Workload workload;
    const char* name;
    std::vector<E3Stage> stages;
};

const std::vector<WorkloadEntry>&
catalog()
{
    static const std::vector<WorkloadEntry> entries = {
        {E3Workload::kNfvFin, "NFV-FIN",
         {{"parse", Seconds::from_micros(0.8), 1.0},
          {"flow-table", Seconds::from_micros(1.6), 1.0},
          {"stats", Seconds::from_micros(1.2), 0.5},
          {"tx", Seconds::from_micros(0.6), 1.0}}},
        {E3Workload::kNfvDin, "NFV-DIN",
         {{"parse", Seconds::from_micros(0.8), 1.0},
          {"regex", Seconds::from_micros(3.0), 2.0},
          {"classify", Seconds::from_micros(1.4), 1.0},
          {"tx", Seconds::from_micros(0.6), 1.0}}},
        {E3Workload::kRtaSf, "RTA-SF",
         {{"rx", Seconds::from_micros(0.7), 1.0},
          {"tokenize", Seconds::from_micros(1.8), 2.0},
          {"classify", Seconds::from_micros(2.6), 1.0},
          {"tx", Seconds::from_micros(0.6), 1.0}}},
        {E3Workload::kRtaShm, "RTA-SHM",
         {{"rx", Seconds::from_micros(0.6), 1.0},
          {"aggregate", Seconds::from_micros(1.2), 1.0},
          {"detect", Seconds::from_micros(1.0), 0.5}}},
        {E3Workload::kIotDh, "IOT-DH",
         {{"rx", Seconds::from_micros(0.7), 1.0},
          {"transform", Seconds::from_micros(1.5), 2.0},
          {"store", Seconds::from_micros(1.9), 1.0},
          {"tx", Seconds::from_micros(0.6), 1.0}}},
    };
    return entries;
}

const WorkloadEntry&
entry(E3Workload w)
{
    for (const auto& e : catalog()) {
        if (e.workload == w)
            return e;
    }
    throw std::invalid_argument("microservices: unknown workload");
}

core::IpSpec
stage_ip(const std::string& name, Seconds fixed, double passes)
{
    core::ServiceModel engine;
    engine.fixed_cost = fixed;
    engine.byte_rate = passes > 0.0 ? kCoreStream / passes
                                    : Bandwidth::from_gbps(1e6);
    core::IpSpec spec;
    spec.name = name;
    spec.kind = core::IpKind::kCpuCores;
    spec.roofline = core::ExtendedRoofline(engine, {});
    spec.max_engines = kTotalCores;
    spec.default_queue_capacity = 64;
    return spec;
}

} // namespace

const char*
to_string(E3Workload workload)
{
    return entry(workload).name;
}

std::vector<E3Workload>
e3_workloads()
{
    std::vector<E3Workload> out;
    for (const auto& e : catalog())
        out.push_back(e.workload);
    return out;
}

std::vector<E3Stage>
e3_stages(E3Workload workload)
{
    return entry(workload).stages;
}

double
e3_monolithic_penalty()
{
    return kMonolithicPenalty;
}

Seconds
e3_handoff_overhead()
{
    return kHandoff;
}

Bytes
e3_request_size()
{
    return kRequestSize;
}

MicroserviceScenario
make_e3_pipeline(E3Workload workload,
                 const std::vector<std::uint32_t>& cores_per_stage)
{
    const auto stages = e3_stages(workload);
    if (cores_per_stage.size() != stages.size())
        throw std::invalid_argument(
            "make_e3_pipeline: one core count per stage required");
    const std::uint32_t total = std::accumulate(
        cores_per_stage.begin(), cores_per_stage.end(), 0u);
    if (total > kTotalCores)
        throw std::invalid_argument(
            "make_e3_pipeline: allocation exceeds the 16 cnMIPS cores");

    MicroserviceScenario sc{
        core::HardwareModel(std::string(to_string(workload)) + "-pipeline",
                            Bandwidth::from_gbps(40.0),
                            Bandwidth::from_gbps(50.0),
                            Bandwidth::from_gbps(25.0)),
        core::ExecutionGraph(std::string(to_string(workload)) + "-pipeline"),
        {}};

    const auto ingress = sc.graph.add_ingress();
    const auto egress = sc.graph.add_egress();
    core::VertexId prev = ingress;
    for (std::size_t i = 0; i < stages.size(); ++i) {
        if (cores_per_stage[i] == 0)
            throw std::invalid_argument(
                "make_e3_pipeline: every stage needs >= 1 core");
        const core::IpId ip = sc.hw.add_ip(
            stage_ip(stages[i].name, stages[i].fixed,
                     stages[i].stream_passes));
        core::VertexParams vp;
        vp.parallelism = cores_per_stage[i];
        vp.overhead = kHandoff;
        const auto v = sc.graph.add_ip_vertex(stages[i].name, ip, vp);
        sc.graph.add_edge(prev, v, core::EdgeParams{1.0, 0.0, 0.0, {}});
        sc.stage_vertices.push_back(v);
        prev = v;
    }
    sc.graph.add_edge(prev, egress, core::EdgeParams{1.0, 0.0, 0.0, {}});
    return sc;
}

MicroserviceScenario
make_e3_run_to_completion(E3Workload workload, std::uint32_t total_cores)
{
    if (total_cores == 0 || total_cores > kTotalCores)
        throw std::invalid_argument(
            "make_e3_run_to_completion: 1..16 cores");
    const auto stages = e3_stages(workload);
    Seconds fixed{0.0};
    double passes = 0.0;
    for (const auto& s : stages) {
        fixed += s.fixed;
        passes += s.stream_passes;
    }
    fixed = fixed * kMonolithicPenalty;
    passes = passes * kMonolithicPenalty;

    MicroserviceScenario sc{
        core::HardwareModel(std::string(to_string(workload)) + "-rtc",
                            Bandwidth::from_gbps(40.0),
                            Bandwidth::from_gbps(50.0),
                            Bandwidth::from_gbps(25.0)),
        core::ExecutionGraph(std::string(to_string(workload)) + "-rtc"),
        {}};
    const auto ingress = sc.graph.add_ingress();
    const auto egress = sc.graph.add_egress();
    const core::IpId ip = sc.hw.add_ip(stage_ip("chain", fixed, passes));
    core::VertexParams vp;
    vp.parallelism = total_cores;
    const auto v = sc.graph.add_ip_vertex("chain", ip, vp);
    sc.graph.add_edge(ingress, v, core::EdgeParams{1.0, 0.0, 0.0, {}});
    sc.graph.add_edge(v, egress, core::EdgeParams{1.0, 0.0, 0.0, {}});
    sc.stage_vertices.push_back(v);
    return sc;
}

std::vector<std::uint32_t>
equal_partition_alloc(E3Workload workload, std::uint32_t total)
{
    const auto stages = e3_stages(workload);
    const auto k = static_cast<std::uint32_t>(stages.size());
    std::vector<std::uint32_t> alloc(k, total / k);
    for (std::uint32_t i = 0; i < total % k; ++i)
        ++alloc[i];
    return alloc;
}

std::vector<std::uint32_t>
lognic_opt_alloc(E3Workload workload, const core::TrafficProfile& traffic,
                 std::uint32_t total)
{
    const auto stages = e3_stages(workload);
    const auto k = stages.size();
    if (total < k)
        throw std::invalid_argument("lognic_opt_alloc: need >= 1 core/stage");

    std::vector<std::uint32_t> best;
    double best_tput = -1.0;
    double best_lat = 0.0;

    std::vector<std::uint32_t> current(k, 1);
    // Enumerate compositions of `total` into k positive parts.
    std::function<void(std::size_t, std::uint32_t)> recurse =
        [&](std::size_t stage, std::uint32_t remaining) {
            if (stage == k - 1) {
                current[stage] = remaining;
                MicroserviceScenario sc = make_e3_pipeline(workload, current);
                const core::Model model(sc.hw);
                const core::Report rep = model.estimate(sc.graph, traffic);
                const double tput = rep.throughput.capacity.bits_per_sec();
                const double lat = rep.latency.mean.seconds();
                if (tput > best_tput
                    || (tput == best_tput && lat < best_lat)) {
                    best_tput = tput;
                    best_lat = lat;
                    best = current;
                }
                return;
            }
            const auto tail = static_cast<std::uint32_t>(k - stage - 1);
            for (std::uint32_t c = 1; c + tail <= remaining; ++c) {
                current[stage] = c;
                recurse(stage + 1, remaining - c);
            }
        };
    recurse(0, total);
    return best;
}

} // namespace lognic::apps
