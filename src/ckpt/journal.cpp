/**
 * @file
 * Completed-work journals: bit-exact JSON round-trips for the result
 * types, plus the locked map + hook adapters per workload. See
 * journal.hpp for the format contract.
 */
#include "lognic/ckpt/journal.hpp"

#include <stdexcept>
#include <utility>

#include "lognic/io/checkpoint.hpp"

namespace lognic::ckpt {

namespace {

std::string
hexd(double v)
{
    return io::double_to_hex(v);
}

std::string
hexu(std::uint64_t v)
{
    return io::u64_to_hex(v);
}

double
get_d(const io::Json& j, const std::string& key)
{
    return io::double_from_hex(j.at(key).as_string(), "journal field " + key);
}

std::uint64_t
get_u(const io::Json& j, const std::string& key)
{
    return io::parse_u64(j.at(key).as_string(), "journal field " + key);
}

io::Json
hex_array(const std::vector<double>& values)
{
    io::Json a(io::JsonArray{});
    for (double v : values)
        a.push_back(hexd(v));
    return a;
}

std::vector<double>
hex_array_back(const io::Json& j, const std::string& key)
{
    std::vector<double> out;
    const auto& arr = j.at(key).as_array();
    out.reserve(arr.size());
    for (const auto& e : arr)
        out.push_back(io::double_from_hex(e.as_string(),
                                          "journal field " + key));
    return out;
}

} // namespace

// --- MetricsSnapshot ----------------------------------------------------------

io::Json
metrics_to_json(const obs::MetricsSnapshot& m)
{
    io::Json counters(io::JsonObject{});
    for (const auto& [name, value] : m.counters)
        counters.set(name, hexu(value));
    io::Json gauges(io::JsonObject{});
    for (const auto& [name, value] : m.gauges)
        gauges.set(name, hexd(value));
    io::Json histograms(io::JsonObject{});
    for (const auto& [name, h] : m.histograms) {
        io::Json hj;
        hj.set("bounds", hex_array(h.bounds));
        io::Json counts(io::JsonArray{});
        for (std::uint64_t c : h.counts)
            counts.push_back(hexu(c));
        hj.set("counts", std::move(counts));
        hj.set("total", hexu(h.total));
        hj.set("sum", hexd(h.sum));
        histograms.set(name, std::move(hj));
    }
    io::Json j;
    j.set("counters", std::move(counters));
    j.set("gauges", std::move(gauges));
    j.set("histograms", std::move(histograms));
    return j;
}

obs::MetricsSnapshot
metrics_from_json(const io::Json& j)
{
    obs::MetricsSnapshot m;
    for (const auto& [name, value] : j.at("counters").as_object())
        m.counters[name] =
            io::parse_u64(value.as_string(), "metrics counter " + name);
    for (const auto& [name, value] : j.at("gauges").as_object())
        m.gauges[name] =
            io::double_from_hex(value.as_string(), "metrics gauge " + name);
    for (const auto& [name, hj] : j.at("histograms").as_object()) {
        obs::HistogramSnapshot h;
        h.bounds = hex_array_back(hj, "bounds");
        for (const auto& c : hj.at("counts").as_array())
            h.counts.push_back(
                io::parse_u64(c.as_string(), "metrics histogram " + name));
        h.total = get_u(hj, "total");
        h.sum = get_d(hj, "sum");
        m.histograms.emplace(name, std::move(h));
    }
    return m;
}

// --- SimResult ----------------------------------------------------------------

io::Json
sim_result_to_json(const sim::SimResult& r)
{
    io::Json j;
    j.set("delivered", hexd(r.delivered.bits_per_sec()));
    j.set("delivered_ops", hexd(r.delivered_ops.per_sec()));
    j.set("mean_latency", hexd(r.mean_latency.seconds()));
    j.set("p50_latency", hexd(r.p50_latency.seconds()));
    j.set("p99_latency", hexd(r.p99_latency.seconds()));
    j.set("generated", hexu(r.generated));
    j.set("completed", hexu(r.completed));
    j.set("dropped", hexu(r.dropped));
    j.set("drop_rate", hexd(r.drop_rate));
    j.set("completed_total", hexu(r.completed_total));
    j.set("dropped_total", hexu(r.dropped_total));
    j.set("in_flight", hexu(r.in_flight));
    j.set("truncated", r.truncated);
    j.set("truncation_reason", r.truncation_reason);
    j.set("sim_time_reached", hexd(r.sim_time_reached));
    j.set("events_executed", hexu(r.events_executed));
    io::Json vertices(io::JsonArray{});
    for (const auto& vs : r.vertex_stats) {
        io::Json vj;
        vj.set("name", vs.name);
        vj.set("utilization", hexd(vs.utilization));
        vj.set("mean_occupancy", hexd(vs.mean_occupancy));
        vj.set("served", hexu(vs.served));
        vj.set("dropped", hexu(vs.dropped));
        vertices.push_back(std::move(vj));
    }
    j.set("vertex_stats", std::move(vertices));
    j.set("metrics", metrics_to_json(r.metrics));
    return j;
}

sim::SimResult
sim_result_from_json(const io::Json& j)
{
    sim::SimResult r;
    r.delivered = Bandwidth{get_d(j, "delivered")};
    r.delivered_ops = OpsRate{get_d(j, "delivered_ops")};
    r.mean_latency = Seconds{get_d(j, "mean_latency")};
    r.p50_latency = Seconds{get_d(j, "p50_latency")};
    r.p99_latency = Seconds{get_d(j, "p99_latency")};
    r.generated = get_u(j, "generated");
    r.completed = get_u(j, "completed");
    r.dropped = get_u(j, "dropped");
    r.drop_rate = get_d(j, "drop_rate");
    r.completed_total = get_u(j, "completed_total");
    r.dropped_total = get_u(j, "dropped_total");
    r.in_flight = get_u(j, "in_flight");
    r.truncated = j.at("truncated").as_bool();
    r.truncation_reason = j.at("truncation_reason").as_string();
    r.sim_time_reached = get_d(j, "sim_time_reached");
    r.events_executed = get_u(j, "events_executed");
    for (const auto& vj : j.at("vertex_stats").as_array()) {
        sim::VertexStats vs;
        vs.name = vj.at("name").as_string();
        vs.utilization = get_d(vj, "utilization");
        vs.mean_occupancy = get_d(vj, "mean_occupancy");
        vs.served = get_u(vj, "served");
        vs.dropped = get_u(vj, "dropped");
        r.vertex_stats.push_back(std::move(vs));
    }
    r.metrics = metrics_from_json(j.at("metrics"));
    return r;
}

// --- CompletedTask ------------------------------------------------------------

io::Json
completed_task_to_json(const runner::CompletedTask& t)
{
    io::Json j;
    j.set("ok", t.ok);
    j.set("seed", hexu(t.seed));
    j.set("attempts", hexu(static_cast<std::uint64_t>(t.attempts)));
    j.set("error", t.error);
    if (t.ok)
        j.set("result", sim_result_to_json(t.result));
    return j;
}

runner::CompletedTask
completed_task_from_json(const io::Json& j)
{
    runner::CompletedTask t;
    t.ok = j.at("ok").as_bool();
    t.seed = get_u(j, "seed");
    t.attempts = static_cast<std::size_t>(get_u(j, "attempts"));
    t.error = j.at("error").as_string();
    if (t.ok)
        t.result = sim_result_from_json(j.at("result"));
    return t;
}

// --- TrialOutcome -------------------------------------------------------------

namespace {

io::Json
trial_failure_to_json(const check::TrialFailure& f)
{
    io::Json j;
    j.set("name", f.name);
    j.set("generator_seed", hexu(f.generator_seed));
    j.set("single_queue", f.single_queue);
    io::Json violations(io::JsonArray{});
    for (const auto& v : f.violations) {
        // The plain fields keep the document readable; the *_bits fields
        // are what violation_from_json restores from (JSON numbers cannot
        // carry non-finite or full-precision doubles).
        io::Json vj = check::to_json(v);
        vj.set("measured_bits", hexd(v.measured));
        vj.set("expected_bits", hexd(v.expected));
        vj.set("tolerance_bits", hexd(v.tolerance));
        violations.push_back(std::move(vj));
    }
    j.set("violations", std::move(violations));
    // The minimal spec is a scenario document built from parsed JSON; the
    // io layer's %.17g round-trips every finite double it contains.
    j.set("minimal_spec", f.minimal_spec);
    return j;
}

check::TrialFailure
trial_failure_from_json(const io::Json& j)
{
    check::TrialFailure f;
    f.name = j.at("name").as_string();
    f.generator_seed = get_u(j, "generator_seed");
    f.single_queue = j.at("single_queue").as_bool();
    for (const auto& vj : j.at("violations").as_array())
        f.violations.push_back(check::violation_from_json(vj));
    f.minimal_spec = j.at("minimal_spec");
    return f;
}

} // namespace

io::Json
trial_outcome_to_json(const check::TrialOutcome& t)
{
    io::Json j;
    j.set("single_queue", t.single_queue);
    j.set("sims_run", hexu(t.sims_run));
    j.set("violations", hexu(t.violations));
    j.set("failed", t.failed);
    if (t.failed)
        j.set("failure", trial_failure_to_json(t.failure));
    return j;
}

check::TrialOutcome
trial_outcome_from_json(const io::Json& j)
{
    check::TrialOutcome t;
    t.single_queue = j.at("single_queue").as_bool();
    t.sims_run = get_u(j, "sims_run");
    t.violations = get_u(j, "violations");
    t.failed = j.at("failed").as_bool();
    if (t.failed)
        t.failure = trial_failure_from_json(j.at("failure"));
    return t;
}

// --- StartRecord --------------------------------------------------------------

io::Json
start_record_to_json(const calib::StartRecord& r)
{
    const calib::StartOutcome& o = r.outcome;
    io::Json oj;
    oj.set("index", hexu(static_cast<std::uint64_t>(o.index)));
    oj.set("seed", hexu(o.seed));
    oj.set("initial_loss", hexd(o.initial_loss));
    oj.set("final_loss", hexd(o.final_loss));
    oj.set("converged", o.converged);
    oj.set("failed", o.failed);
    oj.set("message", o.message);
    oj.set("iterations", hexu(static_cast<std::uint64_t>(o.iterations)));
    oj.set("model_solves", hexu(o.model_solves));
    oj.set("cache_hits", hexu(o.cache_hits));
    oj.set("cache_misses", hexu(o.cache_misses));
    io::Json j;
    j.set("outcome", std::move(oj));
    j.set("x", hex_array(r.x));
    j.set("residuals", hex_array(r.residuals));
    j.set("convergence", hex_array(r.convergence));
    return j;
}

calib::StartRecord
start_record_from_json(const io::Json& j)
{
    calib::StartRecord r;
    const io::Json& oj = j.at("outcome");
    r.outcome.index = static_cast<std::size_t>(get_u(oj, "index"));
    r.outcome.seed = get_u(oj, "seed");
    r.outcome.initial_loss = get_d(oj, "initial_loss");
    r.outcome.final_loss = get_d(oj, "final_loss");
    r.outcome.converged = oj.at("converged").as_bool();
    r.outcome.failed = oj.at("failed").as_bool();
    r.outcome.message = oj.at("message").as_string();
    r.outcome.iterations = static_cast<std::size_t>(get_u(oj, "iterations"));
    r.outcome.model_solves = get_u(oj, "model_solves");
    r.outcome.cache_hits = get_u(oj, "cache_hits");
    r.outcome.cache_misses = get_u(oj, "cache_misses");
    r.x = hex_array_back(j, "x");
    r.residuals = hex_array_back(j, "residuals");
    r.convergence = hex_array_back(j, "convergence");
    return r;
}

// --- TaskJournal --------------------------------------------------------------

io::Json
TaskJournal::to_json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    io::Json tasks(io::JsonArray{});
    for (const auto& [task, done] : tasks_) {
        io::Json e = completed_task_to_json(done);
        e.set("task", hexu(static_cast<std::uint64_t>(task)));
        tasks.push_back(std::move(e));
    }
    io::Json j;
    j.set("tasks", std::move(tasks));
    return j;
}

void
TaskJournal::load_json(const io::Json& j)
{
    std::map<std::size_t, runner::CompletedTask> loaded;
    for (const auto& e : j.at("tasks").as_array()) {
        const auto task = static_cast<std::size_t>(get_u(e, "task"));
        if (!loaded.emplace(task, completed_task_from_json(e)).second)
            throw std::runtime_error("task journal: duplicate task "
                                     + std::to_string(task));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_ = std::move(loaded);
}

std::size_t
TaskJournal::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tasks_.size();
}

std::size_t
TaskJournal::failed_count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& [task, done] : tasks_)
        if (!done.ok)
            ++n;
    return n;
}

void
TaskJournal::record(std::size_t task, runner::CompletedTask done)
{
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_[task] = std::move(done);
}

bool
TaskJournal::lookup(std::size_t task, runner::CompletedTask& out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tasks_.find(task);
    if (it == tasks_.end())
        return false;
    out = it->second;
    return true;
}

std::size_t
TaskJournal::erase_failed()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t erased = 0;
    for (auto it = tasks_.begin(); it != tasks_.end();) {
        if (!it->second.ok) {
            it = tasks_.erase(it);
            ++erased;
        } else {
            ++it;
        }
    }
    return erased;
}

runner::TaskLookup
TaskJournal::lookup_fn() const
{
    return [this](std::size_t task, runner::CompletedTask& out) {
        return lookup(task, out);
    };
}

runner::TaskHook
TaskJournal::record_fn(std::function<void()> after)
{
    return [this, after = std::move(after)](std::size_t task,
                                            const runner::CompletedTask& t) {
        record(task, t);
        if (after)
            after();
    };
}

// --- CheckJournal -------------------------------------------------------------

io::Json
CheckJournal::to_json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    io::Json units(io::JsonArray{});
    for (const auto& [key, done] : units_) {
        io::Json e = trial_outcome_to_json(done);
        e.set("key", key);
        units.push_back(std::move(e));
    }
    io::Json j;
    j.set("units", std::move(units));
    return j;
}

void
CheckJournal::load_json(const io::Json& j)
{
    std::map<std::string, check::TrialOutcome> loaded;
    for (const auto& e : j.at("units").as_array()) {
        const std::string& key = e.at("key").as_string();
        if (!loaded.emplace(key, trial_outcome_from_json(e)).second)
            throw std::runtime_error("check journal: duplicate key '" + key
                                     + "'");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    units_ = std::move(loaded);
}

std::size_t
CheckJournal::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return units_.size();
}

void
CheckJournal::record(const std::string& key, check::TrialOutcome done)
{
    std::lock_guard<std::mutex> lock(mutex_);
    units_[key] = std::move(done);
}

bool
CheckJournal::lookup(const std::string& key, check::TrialOutcome& out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = units_.find(key);
    if (it == units_.end())
        return false;
    out = it->second;
    return true;
}

check::TrialLookup
CheckJournal::lookup_fn() const
{
    return [this](const std::string& key, check::TrialOutcome& out) {
        return lookup(key, out);
    };
}

check::TrialHook
CheckJournal::record_fn(std::function<void()> after)
{
    return [this, after = std::move(after)](const std::string& key,
                                            const check::TrialOutcome& t) {
        record(key, t);
        if (after)
            after();
    };
}

// --- FitJournal ---------------------------------------------------------------

io::Json
FitJournal::to_json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    io::Json starts(io::JsonArray{});
    for (const auto& [start, done] : starts_) {
        io::Json e = start_record_to_json(done);
        e.set("start", hexu(static_cast<std::uint64_t>(start)));
        starts.push_back(std::move(e));
    }
    io::Json j;
    j.set("starts", std::move(starts));
    return j;
}

void
FitJournal::load_json(const io::Json& j)
{
    std::map<std::size_t, calib::StartRecord> loaded;
    for (const auto& e : j.at("starts").as_array()) {
        const auto start = static_cast<std::size_t>(get_u(e, "start"));
        if (!loaded.emplace(start, start_record_from_json(e)).second)
            throw std::runtime_error("fit journal: duplicate start "
                                     + std::to_string(start));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    starts_ = std::move(loaded);
}

std::size_t
FitJournal::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return starts_.size();
}

void
FitJournal::record(std::size_t start, calib::StartRecord done)
{
    std::lock_guard<std::mutex> lock(mutex_);
    starts_[start] = std::move(done);
}

bool
FitJournal::lookup(std::size_t start, calib::StartRecord& out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = starts_.find(start);
    if (it == starts_.end())
        return false;
    out = it->second;
    return true;
}

calib::StartLookup
FitJournal::lookup_fn() const
{
    return [this](std::size_t start, calib::StartRecord& out) {
        return lookup(start, out);
    };
}

calib::StartHook
FitJournal::record_fn(std::function<void()> after)
{
    return [this, after = std::move(after)](std::size_t start,
                                            const calib::StartRecord& r) {
        record(start, r);
        if (after)
            after();
    };
}

} // namespace lognic::ckpt
