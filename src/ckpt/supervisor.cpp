/**
 * @file
 * Kill-tolerant run supervision: checkpoint-store wiring, resume with
 * fingerprint verification, periodic publication, and sweep retry rounds.
 * See supervisor.hpp for the loop contract.
 */
#include "lognic/ckpt/supervisor.hpp"

#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "lognic/io/checkpoint.hpp"

namespace lognic::ckpt {

namespace {

void
log_to(const SupervisorOptions& sup, const std::string& message)
{
    if (sup.log)
        sup.log(message);
}

void
do_sleep(const SupervisorOptions& sup, double seconds)
{
    if (seconds <= 0.0)
        return;
    if (sup.sleep_fn) {
        sup.sleep_fn(seconds);
        return;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void
validate_options(const SupervisorOptions& sup)
{
    if (sup.dir.empty())
        throw std::invalid_argument(
            "supervisor: checkpoint directory must be non-empty");
    if (sup.checkpoint_every == 0)
        throw std::invalid_argument(
            "supervisor: checkpoint_every must be >= 1");
    if (sup.retention == 0)
        throw std::invalid_argument("supervisor: retention must be >= 1");
}

std::string
make_payload(const io::Json& fingerprint, const io::Json& journal)
{
    io::Json doc;
    doc.set("fingerprint", fingerprint);
    doc.set("journal", journal);
    return doc.dump(-1);
}

/**
 * Load the newest valid generation, verify its fingerprint, and hand the
 * journal document to @p load. Rejected generations are logged and
 * recorded; a fingerprint mismatch throws (the directory holds a journal
 * for a different campaign — resuming it would mix incompatible work).
 */
ResumeInfo
resume_into(const CheckpointStore& store, const io::Json& fingerprint,
            const SupervisorOptions& sup,
            const std::function<void(const io::Json&)>& load)
{
    ResumeInfo info;
    if (!sup.resume)
        return info;
    const auto loaded = store.load_latest(&info.rejected);
    for (const auto& r : info.rejected)
        log_to(sup, "checkpoint: skipping " + r.path + ": " + r.reason);
    if (!loaded)
        return info;
    const io::Json doc = io::Json::parse(loaded->payload);
    const std::string want = fingerprint.dump(-1);
    const std::string have = doc.at("fingerprint").dump(-1);
    if (want != have)
        throw std::runtime_error(
            "checkpoint: fingerprint mismatch in '" + store.dir()
            + "': the stored journal belongs to a different campaign "
              "(stored "
            + have + ", running " + want
            + "); point --checkpoint at a fresh directory or rerun the "
              "original spec");
    load(doc.at("journal"));
    info.resumed = true;
    info.generation = loaded->generation;
    log_to(sup, "checkpoint: resumed from generation "
                    + std::to_string(loaded->generation) + " in '"
                    + store.dir() + "'");
    return info;
}

/**
 * Periodic publisher: counts completions (from worker threads) and saves
 * a generation every `checkpoint_every` of them. One mutex serializes the
 * count and the store; journal serialization happens inside it too, which
 * briefly pauses workers — acceptable at checkpoint granularity. Lock
 * order is publisher mutex -> journal mutex, never the reverse.
 */
class Publisher {
public:
    Publisher(CheckpointStore& store, const SupervisorOptions& sup,
              io::Json fingerprint, std::function<io::Json()> journal_json)
        : store_(store), sup_(sup), fingerprint_(std::move(fingerprint)),
          journal_json_(std::move(journal_json))
    {
    }

    /// Completion hook body: maybe publish a periodic generation.
    void tick()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (++pending_ < sup_.checkpoint_every)
            return;
        pending_ = 0;
        publish_locked();
    }

    /// Unconditional publication (the final checkpoint).
    void flush()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_ = 0;
        publish_locked();
    }

    std::uint64_t checkpoints() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return checkpoints_;
    }

private:
    void publish_locked()
    {
        store_.save(make_payload(fingerprint_, journal_json_()));
        ++checkpoints_;
    }

    CheckpointStore& store_;
    const SupervisorOptions& sup_;
    io::Json fingerprint_;
    std::function<io::Json()> journal_json_;
    mutable std::mutex mutex_;
    std::uint64_t pending_{0};
    std::uint64_t checkpoints_{0};
};

} // namespace

// --- sweeps -------------------------------------------------------------------

SupervisedSweep
supervise_sweep(const runner::Sweep& sweep, runner::SweepOptions options,
                const SupervisorOptions& sup)
{
    validate_options(sup);
    if (options.resume_lookup || options.on_task_complete)
        throw std::invalid_argument(
            "supervise_sweep: options.resume_lookup/on_task_complete are "
            "owned by the supervisor and must be unset");

    io::Json fp;
    fp.set("workload", "sweep");
    fp.set("points", io::u64_to_hex(sweep.size()));
    fp.set("replications", io::u64_to_hex(options.replications));
    fp.set("root_seed", io::u64_to_hex(options.root_seed));
    fp.set("max_retries", io::u64_to_hex(options.max_retries));
    // threads intentionally absent: results are thread-count independent,
    // so resuming on a different machine width is legitimate.

    CheckpointStore store(sup.dir, "sweep", StoreOptions{sup.retention});
    TaskJournal journal;
    SupervisedSweep out;
    out.resume = resume_into(store, fp, sup, [&](const io::Json& j) {
        journal.load_json(j);
    });
    out.resume.completed = journal.size();

    Publisher publisher(store, sup, fp, [&journal] {
        return journal.to_json();
    });
    options.resume_lookup = journal.lookup_fn();
    options.on_task_complete =
        journal.record_fn([&publisher] { publisher.tick(); });

    out.report = sweep.run_guarded(options);

    double backoff = sup.backoff_initial_seconds;
    while (out.retry_rounds_used < sup.retry_rounds
           && !out.report.failed.empty()) {
        ++out.retry_rounds_used;
        log_to(sup, "supervisor: retry round "
                        + std::to_string(out.retry_rounds_used) + ": "
                        + std::to_string(out.report.failed.size())
                        + " failed point(s), backing off "
                        + std::to_string(backoff) + "s");
        do_sleep(sup, backoff);
        backoff *= sup.backoff_multiplier;
        journal.erase_failed();
        out.report = sweep.run_guarded(options);
    }

    publisher.flush();
    out.checkpoints = publisher.checkpoints();
    return out;
}

// --- conformance checks -------------------------------------------------------

SupervisedCheck
supervise_check(check::CheckOptions copts,
                const std::vector<check::CorpusEntry>& corpus,
                const SupervisorOptions& sup)
{
    validate_options(sup);
    if (copts.resume_lookup || copts.on_trial_complete)
        throw std::invalid_argument(
            "supervise_check: copts.resume_lookup/on_trial_complete are "
            "owned by the supervisor and must be unset");

    io::Json fp;
    fp.set("workload", "check");
    fp.set("trials", io::u64_to_hex(copts.trials));
    fp.set("seed", io::u64_to_hex(copts.seed));
    fp.set("duration", io::double_to_hex(copts.duration));
    fp.set("warmup_fraction", io::double_to_hex(copts.warmup_fraction));
    fp.set("monotonicity", copts.monotonicity);
    fp.set("minimize", copts.minimize);
    io::Json names(io::JsonArray{});
    for (const auto& e : corpus)
        names.push_back(e.name);
    fp.set("corpus", std::move(names));

    CheckpointStore store(sup.dir, "check", StoreOptions{sup.retention});
    CheckJournal journal;
    SupervisedCheck out;
    out.resume = resume_into(store, fp, sup, [&](const io::Json& j) {
        journal.load_json(j);
    });
    out.resume.completed = journal.size();

    Publisher publisher(store, sup, fp, [&journal] {
        return journal.to_json();
    });
    copts.resume_lookup = journal.lookup_fn();
    copts.on_trial_complete =
        journal.record_fn([&publisher] { publisher.tick(); });

    // Same composition as `lognic check`: corpus replay first, random
    // trials merged on top — so a supervised report is byte-identical to
    // an unsupervised one.
    if (!corpus.empty())
        out.report = check::replay_corpus(corpus, copts);
    if (copts.trials > 0)
        out.report =
            check::merge(std::move(out.report), check::run_trials(copts));

    publisher.flush();
    out.checkpoints = publisher.checkpoints();
    return out;
}

// --- calibrations -------------------------------------------------------------

SupervisedCalibration
supervise_calibration(calib::ParameterSpace space, calib::Dataset data,
                      calib::CalibratorOptions opts,
                      const SupervisorOptions& sup)
{
    validate_options(sup);
    if (opts.fit.resume_lookup || opts.fit.on_start_complete)
        throw std::invalid_argument(
            "supervise_calibration: fit.resume_lookup/on_start_complete "
            "are owned by the supervisor and must be unset");

    io::Json fp;
    fp.set("workload", "calib");
    fp.set("starts", io::u64_to_hex(opts.fit.starts));
    fp.set("seed", io::u64_to_hex(opts.fit.seed));
    fp.set("backend", calib::to_string(opts.fit.backend));
    fp.set("max_iterations", io::u64_to_hex(opts.fit.max_iterations));
    fp.set("holdout_fraction", io::double_to_hex(opts.holdout_fraction));
    fp.set("k_folds", io::u64_to_hex(opts.k_folds));

    CheckpointStore store(sup.dir, "calib", StoreOptions{sup.retention});
    FitJournal journal;
    SupervisedCalibration out;
    out.resume = resume_into(store, fp, sup, [&](const io::Json& j) {
        journal.load_json(j);
    });
    out.resume.completed = journal.size();

    Publisher publisher(store, sup, fp, [&journal] {
        return journal.to_json();
    });
    opts.fit.resume_lookup = journal.lookup_fn();
    opts.fit.on_start_complete =
        journal.record_fn([&publisher] { publisher.tick(); });

    const calib::Calibrator calibrator(std::move(space), std::move(data),
                                       std::move(opts));
    out.report = calibrator.fit();

    publisher.flush();
    out.checkpoints = publisher.checkpoints();
    return out;
}

// --- single long simulations --------------------------------------------------

SupervisedSimulation
supervise_simulation(sim::NicSimulator& sim,
                     std::uint64_t events_per_segment,
                     const SupervisorOptions& sup)
{
    validate_options(sup);
    if (events_per_segment == 0)
        throw std::invalid_argument(
            "supervise_simulation: events_per_segment must be > 0");

    CheckpointStore store(sup.dir, "sim", StoreOptions{sup.retention});
    SupervisedSimulation out;
    bool resumed = false;
    if (sup.resume) {
        const auto loaded = store.load_latest(&out.resume.rejected);
        for (const auto& r : out.resume.rejected)
            log_to(sup, "checkpoint: skipping " + r.path + ": " + r.reason);
        if (loaded) {
            // load_state() validates the snapshot's config fingerprint
            // against the live simulator and throws on mismatch.
            sim.load_state(io::Json::parse(loaded->payload));
            out.resume.resumed = true;
            out.resume.generation = loaded->generation;
            log_to(sup, "checkpoint: resumed simulation from generation "
                            + std::to_string(loaded->generation));
            resumed = true;
        }
    }
    if (!resumed)
        sim.begin();

    std::uint64_t since = 0;
    for (;;) {
        const bool done = sim.advance(events_per_segment);
        ++out.segments;
        if (done)
            break;
        if (++since >= sup.checkpoint_every) {
            since = 0;
            store.save(sim.save_state().dump(-1));
            ++out.checkpoints;
        }
    }
    // Publish the end-of-run snapshot too: a resume after a crash between
    // "run finished" and "results consumed" replays instantly instead of
    // re-simulating the last stretch.
    store.save(sim.save_state().dump(-1));
    ++out.checkpoints;
    out.result = sim.finalize();
    return out;
}

} // namespace lognic::ckpt
