#include "lognic/ckpt/store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "lognic/io/checkpoint.hpp"

namespace lognic::ckpt {
namespace fs = std::filesystem;

CheckpointStore::CheckpointStore(std::string dir, std::string kind,
                                 StoreOptions options)
    : dir_(std::move(dir)), kind_(std::move(kind)), options_(options) {
    if (kind_.empty())
        throw std::runtime_error("checkpoint store kind must be non-empty");
    if (options_.retention == 0)
        throw std::runtime_error("checkpoint store retention must be >= 1");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        throw std::runtime_error("cannot create checkpoint directory '" + dir_ +
                                 "': " + ec.message());
    // Resume numbering after whatever is already on disk so a restarted
    // supervisor never renames over a generation it has not read.
    const std::vector<std::uint64_t> existing = generations();
    if (!existing.empty()) next_generation_ = existing.back() + 1;
}

std::string CheckpointStore::path_for(std::uint64_t generation) const {
    char name[64];
    std::snprintf(name, sizeof(name), "%s-%08llu.lnck", kind_.c_str(),
                  static_cast<unsigned long long>(generation));
    return dir_ + "/" + name;
}

std::vector<std::uint64_t> CheckpointStore::generations() const {
    std::vector<std::uint64_t> out;
    const std::string prefix = kind_ + "-";
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() != prefix.size() + 8 + 5) continue;
        if (name.compare(0, prefix.size(), prefix) != 0) continue;
        if (name.compare(name.size() - 5, 5, ".lnck") != 0) continue;
        const std::string digits = name.substr(prefix.size(), 8);
        if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
        // parse_u64 names the file on failure; a directory scan must skip
        // (not throw on) entries somebody else dropped next to ours.
        try {
            out.push_back(
                io::parse_u64(digits, "checkpoint generation in '" + name + "'"));
        } catch (const std::exception&) {
            continue;
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::uint64_t CheckpointStore::save(const std::string& payload) {
    const std::uint64_t gen = next_generation_++;
    io::CheckpointFrame frame;
    frame.kind = kind_;
    frame.payload = payload;
    io::atomic_write_file(path_for(gen), io::encode_frame(frame));

    std::vector<std::uint64_t> gens = generations();
    while (gens.size() > options_.retention) {
        std::error_code ec;
        fs::remove(path_for(gens.front()), ec); // best-effort prune
        gens.erase(gens.begin());
    }
    return gen;
}

std::optional<Loaded>
CheckpointStore::load_latest(std::vector<Rejected>* rejected) const {
    std::vector<std::uint64_t> gens = generations();
    for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
        const std::string path = path_for(*it);
        const auto reject = [&](std::string reason) {
            if (rejected != nullptr)
                rejected->push_back({path, std::move(reason)});
        };
        std::optional<std::string> data;
        try {
            data = io::read_file_if_exists(path);
        } catch (const std::exception& e) {
            reject(e.what());
            continue;
        }
        if (!data) {
            reject("unreadable");
            continue;
        }
        std::string reason;
        const auto frame = io::decode_frame(*data, &reason);
        if (!frame) {
            reject(reason);
            continue;
        }
        if (frame->kind != kind_) {
            reject("kind mismatch: frame is '" + frame->kind + "', store is '" +
                   kind_ + "'");
            continue;
        }
        return Loaded{*it, frame->payload};
    }
    return std::nullopt;
}

} // namespace lognic::ckpt
