#include "lognic/solver/least_squares.hpp"

#include <algorithm>
#include <cmath>

namespace lognic::solver {

namespace {

double
sum_squares(const Vector& r)
{
    double s = 0.0;
    for (double v : r)
        s += v * v;
    return 0.5 * s;
}

} // namespace

LeastSquaresResult
levenberg_marquardt(const VectorFn& residual_fn, Vector x0,
                    const LeastSquaresOptions& opts)
{
    LeastSquaresResult result;
    const std::size_t n = x0.size();

    Vector x = opts.bounds.clamp(std::move(x0));
    Vector r = residual_fn(x);
    double cost = sum_squares(r);
    double damping = opts.initial_damping;
    std::size_t evals = 1;

    for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
        result.iterations = iter + 1;

        const Matrix j = numerical_jacobian(residual_fn, x);
        evals += n + 1;
        const Matrix jt = j.transposed();
        Matrix jtj = jt * j;
        const Vector g = jt * r; // gradient of 0.5||r||^2

        double g_inf = 0.0;
        for (double v : g)
            g_inf = std::max(g_inf, std::abs(v));
        if (g_inf < opts.gradient_tolerance) {
            result.converged = true;
            result.message = "gradient below tolerance";
            break;
        }

        bool stepped = false;
        for (int attempt = 0; attempt < 30 && !stepped; ++attempt) {
            // Solve (J^T J + damping * diag(J^T J)) dx = -g.
            Matrix a = jtj;
            for (std::size_t i = 0; i < n; ++i)
                a(i, i) += damping * std::max(jtj(i, i), 1e-12);
            Vector neg_g = scaled(g, -1.0);
            Vector dx;
            try {
                dx = solve_cholesky(a, neg_g);
            } catch (const std::exception&) {
                damping *= 10.0;
                continue;
            }

            const Vector x_new = opts.bounds.clamp(axpy(1.0, dx, x));
            const Vector r_new = residual_fn(x_new);
            ++evals;
            const double cost_new = sum_squares(r_new);
            if (cost_new < cost) {
                double step = 0.0;
                for (std::size_t i = 0; i < n; ++i)
                    step = std::max(step, std::abs(x_new[i] - x[i]));
                x = x_new;
                r = r_new;
                cost = cost_new;
                damping = std::max(damping * 0.3, 1e-12);
                stepped = true;
                if (step < opts.step_tolerance) {
                    result.converged = true;
                    result.message = "step below tolerance";
                }
            } else {
                damping *= 10.0;
            }
        }
        if (!stepped) {
            result.converged = true;
            result.message = "damping saturated";
            break;
        }
        if (result.converged)
            break;
    }

    result.x = std::move(x);
    result.value = cost;
    result.residuals = std::move(r);
    result.evaluations = evals;
    if (result.message.empty())
        result.message = "iteration limit reached";
    return result;
}

} // namespace lognic::solver
