#include "lognic/solver/least_squares.hpp"

#include <algorithm>
#include <cmath>

namespace lognic::solver {

namespace {

double
sum_squares(const Vector& r)
{
    double s = 0.0;
    for (double v : r)
        s += v * v;
    return 0.5 * s;
}

/**
 * Scale-aware forward-difference Jacobian: column i is perturbed by
 * h_i = rel_step * max(|x_i|, scale_i), so parameters of very different
 * magnitudes (Gbps next to microseconds) are each probed proportionately.
 * The perturbation flips to a backward difference when the forward probe
 * would leave the feasible box, keeping every evaluation in-bounds.
 */
Matrix
scaled_jacobian(const VectorFn& f, const Vector& x, const Vector& f0,
                const LeastSquaresOptions& opts)
{
    Matrix j(f0.size(), x.size());
    Vector probe = x;
    for (std::size_t c = 0; c < x.size(); ++c) {
        const double floor =
            c < opts.scales.size() ? std::abs(opts.scales[c]) : 1e-8;
        double h = opts.relative_step * std::max(std::abs(x[c]), floor);
        if (c < opts.bounds.upper.size()
            && x[c] + h > opts.bounds.upper[c]
            && (c >= opts.bounds.lower.size()
                || x[c] - h >= opts.bounds.lower[c]))
            h = -h;
        probe[c] = x[c] + h;
        const Vector fp = f(probe);
        probe[c] = x[c];
        for (std::size_t r = 0; r < f0.size(); ++r)
            j(r, c) = (fp[r] - f0[r]) / h;
    }
    return j;
}

} // namespace

const char*
to_string(LsTermination reason)
{
    switch (reason) {
    case LsTermination::kGradientTolerance:
        return "gradient below tolerance";
    case LsTermination::kStepTolerance:
        return "step below tolerance";
    case LsTermination::kStalled:
        return "stalled: no descent step found (damping saturated)";
    case LsTermination::kIterationLimit:
        return "iteration limit reached";
    }
    return "unknown";
}

NonConvergenceError::NonConvergenceError(LeastSquaresResult partial)
    : std::runtime_error(std::string("levenberg_marquardt did not converge: ")
                         + to_string(partial.termination) + " after "
                         + std::to_string(partial.iterations)
                         + " iteration(s), cost "
                         + std::to_string(partial.value)),
      partial_(std::move(partial))
{
}

LeastSquaresResult
levenberg_marquardt(const VectorFn& residual_fn, Vector x0,
                    const LeastSquaresOptions& opts)
{
    LeastSquaresResult result;
    const std::size_t n = x0.size();

    Vector x = opts.bounds.clamp(std::move(x0));
    Vector r = residual_fn(x);
    double cost = sum_squares(r);
    double damping = opts.initial_damping;
    std::size_t evals = 1;
    result.termination = LsTermination::kIterationLimit;

    for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
        result.iterations = iter + 1;

        const Matrix j = scaled_jacobian(residual_fn, x, r, opts);
        evals += n;
        const Matrix jt = j.transposed();
        Matrix jtj = jt * j;
        const Vector g = jt * r; // gradient of 0.5||r||^2

        double g_inf = 0.0;
        for (double v : g)
            g_inf = std::max(g_inf, std::abs(v));
        if (g_inf < opts.gradient_tolerance) {
            result.converged = true;
            result.termination = LsTermination::kGradientTolerance;
            break;
        }

        bool stepped = false;
        for (int attempt = 0; attempt < 30 && !stepped; ++attempt) {
            // Solve (J^T J + damping * diag(J^T J)) dx = -g.
            Matrix a = jtj;
            for (std::size_t i = 0; i < n; ++i)
                a(i, i) += damping * std::max(jtj(i, i), 1e-12);
            Vector neg_g = scaled(g, -1.0);
            Vector dx;
            try {
                dx = solve_cholesky(a, neg_g);
            } catch (const std::exception&) {
                damping *= 10.0;
                continue;
            }

            const Vector x_new = opts.bounds.clamp(axpy(1.0, dx, x));
            const Vector r_new = residual_fn(x_new);
            ++evals;
            const double cost_new = sum_squares(r_new);
            if (cost_new < cost) {
                double step = 0.0;
                for (std::size_t i = 0; i < n; ++i)
                    step = std::max(step, std::abs(x_new[i] - x[i]));
                x = x_new;
                r = r_new;
                cost = cost_new;
                damping = std::max(damping * 0.3, 1e-12);
                stepped = true;
                if (step < opts.step_tolerance) {
                    result.converged = true;
                    result.termination = LsTermination::kStepTolerance;
                }
            } else {
                damping *= 10.0;
            }
        }
        if (!stepped) {
            // Damping saturated without a descent step: the iterate may
            // still be useful (often it sits in a flat valley), but this
            // is *not* a met tolerance — report it as such instead of
            // dressing it up as convergence.
            result.termination = LsTermination::kStalled;
            break;
        }
        if (result.converged)
            break;
    }

    result.x = std::move(x);
    result.value = cost;
    result.residuals = std::move(r);
    result.evaluations = evals;
    result.message = to_string(result.termination);
    if (!result.converged && opts.throw_on_failure)
        throw NonConvergenceError(std::move(result));
    return result;
}

} // namespace lognic::solver
