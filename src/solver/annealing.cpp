#include "lognic/solver/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace lognic::solver {

IntSearchResult
simulated_annealing(const IntObjectiveFn& f, IntVector x0,
                    const std::vector<IntRange>& ranges,
                    const AnnealingOptions& opts)
{
    if (ranges.empty())
        throw std::invalid_argument("simulated_annealing: empty ranges");
    for (const auto& r : ranges) {
        if (r.step <= 0 || r.hi < r.lo)
            throw std::invalid_argument(
                "simulated_annealing: malformed range");
    }
    if (x0.empty()) {
        x0.resize(ranges.size());
        for (std::size_t i = 0; i < ranges.size(); ++i)
            x0[i] = ranges[i].lo;
    }
    if (x0.size() != ranges.size())
        throw std::invalid_argument(
            "simulated_annealing: dimension mismatch");
    for (std::size_t i = 0; i < ranges.size(); ++i)
        x0[i] = std::clamp(x0[i], ranges[i].lo, ranges[i].hi);

    std::mt19937_64 rng(opts.seed);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    std::uniform_int_distribution<std::size_t> pick_dim(
        0, ranges.size() - 1);
    std::uniform_int_distribution<std::int64_t> pick_move(
        1, std::max<std::int64_t>(1, opts.max_move));

    IntSearchResult best;
    IntVector current = x0;
    double current_value = f(current);
    best.x = current;
    best.value = current_value;
    best.evaluations = 1;

    double temperature = opts.initial_temperature;
    for (std::size_t it = 0; it < opts.iterations; ++it) {
        // Propose a single-coordinate move.
        const std::size_t d = pick_dim(rng);
        const std::int64_t direction = uniform(rng) < 0.5 ? -1 : 1;
        const std::int64_t magnitude = pick_move(rng) * ranges[d].step;
        IntVector candidate = current;
        candidate[d] = std::clamp(candidate[d] + direction * magnitude,
                                  ranges[d].lo, ranges[d].hi);
        if (candidate[d] == current[d]) {
            temperature *= opts.cooling;
            continue;
        }

        const double value = f(candidate);
        ++best.evaluations;
        const double delta = value - current_value;
        const bool accept = delta <= 0.0
            || (std::isfinite(delta)
                && uniform(rng) < std::exp(-delta / temperature));
        if (accept) {
            current = std::move(candidate);
            current_value = value;
            if (current_value < best.value) {
                best.value = current_value;
                best.x = current;
            }
        }
        temperature *= opts.cooling;
    }
    return best;
}

} // namespace lognic::solver
