#include "lognic/solver/constrained.hpp"

#include <algorithm>
#include <cmath>

#include "lognic/solver/bfgs.hpp"
#include "lognic/solver/nelder_mead.hpp"

namespace lognic::solver {

namespace {

/// Maximum violation across all constraints at @p x.
double
max_violation(const std::vector<Constraint>& constraints, const Vector& x)
{
    double worst = 0.0;
    for (const auto& c : constraints) {
        const double g = c.fn(x);
        const double v = c.type == Constraint::Type::kEquality
            ? std::abs(g)
            : std::max(0.0, g);
        worst = std::max(worst, v);
    }
    return worst;
}

} // namespace

ConstrainedResult
minimize_constrained(const ObjectiveFn& f, Vector x0,
                     const std::vector<Constraint>& constraints,
                     const ConstrainedOptions& opts)
{
    ConstrainedResult result;
    const std::size_t m = constraints.size();
    Vector multipliers(m, 0.0);
    double penalty = opts.initial_penalty;
    Vector x = opts.bounds.clamp(std::move(x0));

    for (std::size_t outer = 0; outer < opts.max_outer_iterations; ++outer) {
        result.iterations = outer + 1;

        // Augmented Lagrangian:
        //   L(x) = f(x) + sum_eq [ l_i g_i + (p/2) g_i^2 ]
        //        + sum_ineq (1/2p) [ max(0, l_i + p g_i)^2 - l_i^2 ]
        auto augmented = [&](const Vector& v) {
            double val = f(v);
            for (std::size_t i = 0; i < m; ++i) {
                const double g = constraints[i].fn(v);
                if (constraints[i].type == Constraint::Type::kEquality) {
                    val += multipliers[i] * g + 0.5 * penalty * g * g;
                } else {
                    const double t =
                        std::max(0.0, multipliers[i] + penalty * g);
                    val += (t * t - multipliers[i] * multipliers[i])
                        / (2.0 * penalty);
                }
            }
            return val;
        };

        SolveResult inner;
        if (opts.inner == InnerSolver::kBfgs) {
            BfgsOptions bo;
            bo.bounds = opts.bounds;
            bo.max_iterations = opts.inner_max_iterations;
            inner = bfgs(augmented, x, bo);
        } else {
            NelderMeadOptions no;
            no.bounds = opts.bounds;
            no.max_iterations = opts.inner_max_iterations;
            inner = nelder_mead(augmented, x, no);
        }
        x = inner.x;
        result.evaluations += inner.evaluations;

        // Multiplier updates.
        for (std::size_t i = 0; i < m; ++i) {
            const double g = constraints[i].fn(x);
            if (constraints[i].type == Constraint::Type::kEquality) {
                multipliers[i] += penalty * g;
            } else {
                multipliers[i] =
                    std::max(0.0, multipliers[i] + penalty * g);
            }
        }

        const double violation = max_violation(constraints, x);
        if (violation <= opts.constraint_tolerance) {
            result.converged = true;
            result.message = "feasible stationary point";
            break;
        }
        penalty *= opts.penalty_growth;
    }

    result.x = x;
    result.value = f(x);
    result.max_violation = max_violation(constraints, x);
    result.feasible = result.max_violation <= opts.constraint_tolerance;
    if (result.message.empty())
        result.message = "outer iteration limit reached";
    return result;
}

} // namespace lognic::solver
