#include "lognic/solver/special.hpp"

#include <cmath>
#include <stdexcept>

namespace lognic::solver {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEps = 1e-14;

/// Series representation, converges fast for x < a + 1.
double
gamma_p_series(double a, double x)
{
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < kMaxIterations; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::abs(term) < std::abs(sum) * kEps)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Lentz continued fraction for Q(a, x), converges fast for x >= a + 1.
double
gamma_q_continued_fraction(double a, double x)
{
    constexpr double kTiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / kTiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= kMaxIterations; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < kTiny)
            d = kTiny;
        c = b + an / c;
        if (std::abs(c) < kTiny)
            c = kTiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::abs(delta - 1.0) < kEps)
            break;
    }
    return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

} // namespace

double
regularized_gamma_p(double a, double x)
{
    if (!(a > 0.0) || x < 0.0 || !std::isfinite(a) || !std::isfinite(x))
        throw std::invalid_argument(
            "regularized_gamma_p: need a > 0, x >= 0");
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gamma_p_series(a, x);
    return 1.0 - gamma_q_continued_fraction(a, x);
}

double
regularized_gamma_q(double a, double x)
{
    return 1.0 - regularized_gamma_p(a, x);
}

double
gamma_quantile(double k, double theta, double p)
{
    if (!(k > 0.0) || !(theta > 0.0) || !(p > 0.0) || !(p < 1.0))
        throw std::invalid_argument(
            "gamma_quantile: need k, theta > 0 and p in (0, 1)");

    // Bracket the quantile starting from the mean, then bisect.
    double lo = 0.0;
    double hi = k * theta;
    while (regularized_gamma_p(k, hi / theta) < p) {
        hi *= 2.0;
        if (hi > 1e30)
            throw std::runtime_error("gamma_quantile: bracket failed");
    }
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (regularized_gamma_p(k, mid / theta) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * (1.0 + hi))
            break;
    }
    return 0.5 * (lo + hi);
}

} // namespace lognic::solver
