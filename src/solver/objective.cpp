#include "lognic/solver/objective.hpp"

#include <algorithm>
#include <cmath>

namespace lognic::solver {

Vector
Bounds::clamp(Vector x) const
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (i < lower.size())
            x[i] = std::max(x[i], lower[i]);
        if (i < upper.size())
            x[i] = std::min(x[i], upper[i]);
    }
    return x;
}

bool
Bounds::contains(const Vector& x) const
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (i < lower.size() && x[i] < lower[i])
            return false;
        if (i < upper.size() && x[i] > upper[i])
            return false;
    }
    return true;
}

Vector
numerical_gradient(const ObjectiveFn& f, const Vector& x, double step)
{
    Vector g(x.size());
    Vector probe = x;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double h = step * std::max(1.0, std::abs(x[i]));
        probe[i] = x[i] + h;
        const double fp = f(probe);
        probe[i] = x[i] - h;
        const double fm = f(probe);
        probe[i] = x[i];
        g[i] = (fp - fm) / (2.0 * h);
    }
    return g;
}

Matrix
numerical_jacobian(const VectorFn& f, const Vector& x, double step)
{
    const Vector f0 = f(x);
    Matrix j(f0.size(), x.size());
    Vector probe = x;
    for (std::size_t c = 0; c < x.size(); ++c) {
        const double h = step * std::max(1.0, std::abs(x[c]));
        probe[c] = x[c] + h;
        const Vector fp = f(probe);
        probe[c] = x[c];
        for (std::size_t r = 0; r < f0.size(); ++r)
            j(r, c) = (fp[r] - f0[r]) / h;
    }
    return j;
}

} // namespace lognic::solver
