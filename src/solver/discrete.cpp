#include "lognic/solver/discrete.hpp"

#include <stdexcept>

namespace lognic::solver {

namespace {

std::size_t
space_size(const std::vector<IntRange>& ranges)
{
    std::size_t total = 1;
    for (const auto& r : ranges) {
        const std::size_t c = r.count();
        if (c == 0)
            return 0;
        if (total > std::numeric_limits<std::size_t>::max() / c)
            return std::numeric_limits<std::size_t>::max();
        total *= c;
    }
    return total;
}

} // namespace

IntSearchResult
exhaustive_search(const IntObjectiveFn& f, const std::vector<IntRange>& ranges,
                  std::size_t max_points)
{
    for (const auto& r : ranges) {
        if (r.step <= 0)
            throw std::invalid_argument("exhaustive_search: step must be > 0");
    }
    const std::size_t total = space_size(ranges);
    if (total == 0)
        throw std::invalid_argument("exhaustive_search: empty range");
    if (total > max_points)
        throw std::invalid_argument(
            "exhaustive_search: design space exceeds max_points");

    IntSearchResult best;
    IntVector x(ranges.size());
    for (std::size_t i = 0; i < ranges.size(); ++i)
        x[i] = ranges[i].lo;

    for (;;) {
        const double v = f(x);
        ++best.evaluations;
        if (v < best.value) {
            best.value = v;
            best.x = x;
        }
        // Odometer increment.
        std::size_t d = 0;
        for (; d < ranges.size(); ++d) {
            x[d] += ranges[d].step;
            if (x[d] <= ranges[d].hi)
                break;
            x[d] = ranges[d].lo;
        }
        if (d == ranges.size())
            break;
    }
    return best;
}

IntSearchResult
coordinate_descent(const IntObjectiveFn& f, IntVector x0,
                   const std::vector<IntRange>& ranges,
                   std::size_t max_passes)
{
    if (x0.size() != ranges.size())
        throw std::invalid_argument("coordinate_descent: dimension mismatch");
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (ranges[i].step <= 0)
            throw std::invalid_argument("coordinate_descent: step must be > 0");
        x0[i] = std::max(ranges[i].lo, std::min(ranges[i].hi, x0[i]));
    }

    IntSearchResult best;
    best.x = std::move(x0);
    best.value = f(best.x);
    best.evaluations = 1;

    for (std::size_t pass = 0; pass < max_passes; ++pass) {
        bool improved = false;
        for (std::size_t d = 0; d < ranges.size(); ++d) {
            IntVector probe = best.x;
            for (std::int64_t v = ranges[d].lo; v <= ranges[d].hi;
                 v += ranges[d].step) {
                if (v == best.x[d])
                    continue;
                probe[d] = v;
                const double fv = f(probe);
                ++best.evaluations;
                if (fv < best.value) {
                    best.value = fv;
                    best.x = probe;
                    improved = true;
                }
            }
        }
        if (!improved)
            break;
    }
    return best;
}

GridSearchResult
grid_search(const std::function<double(const std::vector<double>&)>& f,
            const std::vector<GridRange>& ranges, std::size_t max_points)
{
    std::size_t total = 1;
    for (const auto& r : ranges) {
        if (r.points < 2)
            throw std::invalid_argument("grid_search: need >= 2 points");
        total *= r.points;
        if (total > max_points)
            throw std::invalid_argument(
                "grid_search: design space exceeds max_points");
    }

    GridSearchResult best;
    std::vector<std::size_t> idx(ranges.size(), 0);
    std::vector<double> x(ranges.size());

    for (;;) {
        for (std::size_t d = 0; d < ranges.size(); ++d) {
            const auto& r = ranges[d];
            x[d] = r.lo
                + (r.hi - r.lo) * static_cast<double>(idx[d])
                    / static_cast<double>(r.points - 1);
        }
        const double v = f(x);
        ++best.evaluations;
        if (v < best.value) {
            best.value = v;
            best.x = x;
        }
        std::size_t d = 0;
        for (; d < ranges.size(); ++d) {
            if (++idx[d] < ranges[d].points)
                break;
            idx[d] = 0;
        }
        if (d == ranges.size())
            break;
    }
    return best;
}

} // namespace lognic::solver
