#include "lognic/solver/bfgs.hpp"

#include <algorithm>
#include <cmath>

namespace lognic::solver {

namespace {

double
inf_norm(const Vector& v)
{
    double m = 0.0;
    for (double x : v)
        m = std::max(m, std::abs(x));
    return m;
}

} // namespace

SolveResult
bfgs(const ObjectiveFn& f, Vector x0, const BfgsOptions& opts,
     const GradientFn& grad)
{
    const std::size_t n = x0.size();
    SolveResult result;
    std::size_t evals = 0;
    auto eval = [&](const Vector& x) {
        ++evals;
        return f(x);
    };
    auto gradient = [&](const Vector& x) {
        if (grad)
            return grad(x);
        evals += 2 * n;
        return numerical_gradient(f, x, opts.gradient_step);
    };

    Vector x = opts.bounds.clamp(std::move(x0));
    double fx = eval(x);
    Vector g = gradient(x);
    Matrix h_inv = Matrix::identity(n); // inverse Hessian approximation

    for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
        result.iterations = iter + 1;
        if (inf_norm(g) < opts.gradient_tolerance) {
            result.converged = true;
            result.message = "gradient below tolerance";
            break;
        }

        // Search direction d = -H_inv * g.
        Vector d = h_inv * g;
        for (double& v : d)
            v = -v;
        double descent = dot(g, d);
        if (descent >= 0.0) {
            // Hessian approximation lost positive definiteness; reset.
            h_inv = Matrix::identity(n);
            d = scaled(g, -1.0);
            descent = dot(g, d);
        }

        // Armijo backtracking.
        constexpr double kArmijoC = 1e-4;
        constexpr double kBacktrack = 0.5;
        double alpha = 1.0;
        Vector x_new;
        double f_new = fx;
        bool accepted = false;
        for (int ls = 0; ls < 60; ++ls) {
            x_new = opts.bounds.clamp(axpy(alpha, d, x));
            f_new = eval(x_new);
            if (f_new <= fx + kArmijoC * alpha * descent) {
                accepted = true;
                break;
            }
            alpha *= kBacktrack;
        }
        if (!accepted) {
            result.converged = true;
            result.message = "line search made no progress";
            break;
        }

        Vector s(n), y(n);
        const Vector g_new = gradient(x_new);
        for (std::size_t i = 0; i < n; ++i) {
            s[i] = x_new[i] - x[i];
            y[i] = g_new[i] - g[i];
        }
        if (inf_norm(s) < opts.step_tolerance) {
            x = std::move(x_new);
            fx = f_new;
            g = g_new;
            result.converged = true;
            result.message = "step below tolerance";
            break;
        }

        // BFGS inverse-Hessian update (Sherman-Morrison form):
        // H' = (I - r s y^T) H (I - r y s^T) + r s s^T,  r = 1/(y^T s).
        const double ys = dot(y, s);
        if (ys > 1e-12) {
            const double r = 1.0 / ys;
            const Vector hy = h_inv * y;
            const double yhy = dot(y, hy);
            Matrix h_next = h_inv;
            for (std::size_t i = 0; i < n; ++i) {
                for (std::size_t j = 0; j < n; ++j) {
                    h_next(i, j) += (r * r * yhy + r) * s[i] * s[j]
                        - r * (hy[i] * s[j] + s[i] * hy[j]);
                }
            }
            h_inv = std::move(h_next);
        }

        x = std::move(x_new);
        fx = f_new;
        g = g_new;
    }

    result.x = std::move(x);
    result.value = fx;
    result.evaluations = evals;
    if (result.message.empty())
        result.message = "iteration limit reached";
    return result;
}

} // namespace lognic::solver
