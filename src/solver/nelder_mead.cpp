#include "lognic/solver/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lognic::solver {

namespace {

// Standard Nelder-Mead coefficients.
constexpr double kReflect = 1.0;
constexpr double kExpand = 2.0;
constexpr double kContract = 0.5;
constexpr double kShrink = 0.5;

} // namespace

SolveResult
nelder_mead(const ObjectiveFn& f, Vector x0, const NelderMeadOptions& opts)
{
    const std::size_t n = x0.size();
    SolveResult result;
    std::size_t evals = 0;
    auto eval = [&](const Vector& x) {
        ++evals;
        return f(x);
    };

    x0 = opts.bounds.clamp(std::move(x0));

    // Build the initial simplex: x0 plus one perturbed point per dimension.
    std::vector<Vector> simplex;
    simplex.reserve(n + 1);
    simplex.push_back(x0);
    for (std::size_t i = 0; i < n; ++i) {
        Vector p = x0;
        const double h =
            opts.initial_step * std::max(1.0, std::abs(x0[i]));
        p[i] += h;
        if (!opts.bounds.contains(p)) {
            p[i] = x0[i] - h; // flip direction if the bound is in the way
            p = opts.bounds.clamp(std::move(p));
        }
        simplex.push_back(std::move(p));
    }

    std::vector<double> fv(n + 1);
    for (std::size_t i = 0; i <= n; ++i)
        fv[i] = eval(simplex[i]);

    std::vector<std::size_t> order(n + 1);

    for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) { return fv[a] < fv[b]; });

        const std::size_t best = order.front();
        const std::size_t worst = order.back();
        const std::size_t second_worst = order[n > 0 ? n - 1 : 0];

        // Convergence checks.
        const double f_spread = std::abs(fv[worst] - fv[best]);
        double diameter = 0.0;
        for (std::size_t i = 0; i <= n; ++i) {
            for (std::size_t d = 0; d < n; ++d) {
                diameter = std::max(
                    diameter, std::abs(simplex[i][d] - simplex[best][d]));
            }
        }
        if (f_spread < opts.f_tolerance && diameter < opts.x_tolerance) {
            result.converged = true;
            result.message = "simplex collapsed";
            result.iterations = iter;
            break;
        }
        result.iterations = iter + 1;

        // Centroid of all but the worst vertex.
        Vector centroid(n, 0.0);
        for (std::size_t i = 0; i <= n; ++i) {
            if (i == worst)
                continue;
            for (std::size_t d = 0; d < n; ++d)
                centroid[d] += simplex[i][d];
        }
        for (double& c : centroid)
            c /= static_cast<double>(n);

        auto blend = [&](double coeff) {
            Vector p(n);
            for (std::size_t d = 0; d < n; ++d)
                p[d] = centroid[d] + coeff * (centroid[d] - simplex[worst][d]);
            return opts.bounds.clamp(std::move(p));
        };

        const Vector reflected = blend(kReflect);
        const double f_reflected = eval(reflected);

        if (f_reflected < fv[best]) {
            const Vector expanded = blend(kExpand);
            const double f_expanded = eval(expanded);
            if (f_expanded < f_reflected) {
                simplex[worst] = expanded;
                fv[worst] = f_expanded;
            } else {
                simplex[worst] = reflected;
                fv[worst] = f_reflected;
            }
        } else if (f_reflected < fv[second_worst]) {
            simplex[worst] = reflected;
            fv[worst] = f_reflected;
        } else {
            // Contract toward the centroid (outside or inside).
            const bool outside = f_reflected < fv[worst];
            const Vector contracted =
                blend(outside ? kContract : -kContract);
            const double f_contracted = eval(contracted);
            const double accept_below = outside ? f_reflected : fv[worst];
            if (f_contracted < accept_below) {
                simplex[worst] = contracted;
                fv[worst] = f_contracted;
            } else {
                // Shrink everything toward the best vertex.
                for (std::size_t i = 0; i <= n; ++i) {
                    if (i == best)
                        continue;
                    for (std::size_t d = 0; d < n; ++d) {
                        simplex[i][d] = simplex[best][d]
                            + kShrink * (simplex[i][d] - simplex[best][d]);
                    }
                    simplex[i] = opts.bounds.clamp(std::move(simplex[i]));
                    fv[i] = eval(simplex[i]);
                }
            }
        }
    }

    const auto best_it = std::min_element(fv.begin(), fv.end());
    const std::size_t best = static_cast<std::size_t>(
        std::distance(fv.begin(), best_it));
    result.x = simplex[best];
    result.value = fv[best];
    result.evaluations = evals;
    if (!result.converged)
        result.message = "iteration limit reached";
    return result;
}

} // namespace lognic::solver
