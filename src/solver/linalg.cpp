#include "lognic/solver/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace lognic::solver {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0)
{
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
        if (row.size() != cols_)
            throw std::invalid_argument("Matrix: ragged initializer");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            t(c, r) = (*this)(r, c);
    return t;
}

Matrix
Matrix::operator*(const Matrix& rhs) const
{
    if (cols_ != rhs.rows_)
        throw std::invalid_argument("Matrix multiply: shape mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0)
                continue;
            for (std::size_t c = 0; c < rhs.cols_; ++c)
                out(r, c) += a * rhs(k, c);
        }
    }
    return out;
}

Vector
Matrix::operator*(const Vector& v) const
{
    if (cols_ != v.size())
        throw std::invalid_argument("Matrix-vector multiply: shape mismatch");
    Vector out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out[r] += (*this)(r, c) * v[c];
    return out;
}

Matrix
Matrix::operator+(const Matrix& rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix add: shape mismatch");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + rhs.data_[i];
    return out;
}

Matrix&
Matrix::operator*=(double s)
{
    for (double& x : data_)
        x *= s;
    return *this;
}

Vector
solve_lu(Matrix a, Vector b)
{
    if (a.rows() != a.cols() || a.rows() != b.size())
        throw std::invalid_argument("solve_lu: shape mismatch");
    const std::size_t n = a.rows();

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        double best = std::abs(a(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a(r, col)) > best) {
                best = std::abs(a(r, col));
                pivot = r;
            }
        }
        if (best < 1e-300)
            throw std::runtime_error("solve_lu: singular matrix");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a(col, c), a(pivot, c));
            std::swap(b[col], b[pivot]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a(r, col) / a(col, col);
            if (f == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a(r, c) -= f * a(col, c);
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    Vector x(n);
    for (std::size_t ri = n; ri-- > 0;) {
        double s = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c)
            s -= a(ri, c) * x[c];
        x[ri] = s / a(ri, ri);
    }
    return x;
}

Vector
solve_cholesky(const Matrix& a, const Vector& b)
{
    if (a.rows() != a.cols() || a.rows() != b.size())
        throw std::invalid_argument("solve_cholesky: shape mismatch");
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double s = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= l(i, k) * l(j, k);
            if (i == j) {
                if (s <= 0.0)
                    throw std::runtime_error(
                        "solve_cholesky: matrix not positive definite");
                l(i, i) = std::sqrt(s);
            } else {
                l(i, j) = s / l(j, j);
            }
        }
    }
    // Forward solve L y = b.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= l(i, k) * y[k];
        y[i] = s / l(i, i);
    }
    // Backward solve L^T x = y.
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            s -= l(k, ii) * x[k];
        x[ii] = s / l(ii, ii);
    }
    return x;
}

double
dot(const Vector& a, const Vector& b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

double
norm2(const Vector& a)
{
    return std::sqrt(dot(a, a));
}

Vector
axpy(double alpha, const Vector& x, const Vector& y)
{
    Vector out(y);
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] += alpha * x[i];
    return out;
}

Vector
scaled(const Vector& x, double alpha)
{
    Vector out(x);
    for (double& v : out)
        v *= alpha;
    return out;
}

} // namespace lognic::solver
