#include "lognic/core/solve_scratch.hpp"

#include <algorithm>

namespace lognic::core {

void
SolveScratch::invalidate()
{
    topo_valid_ = false;
    analysis_valid_.clear();
    analyses_.clear();
}

void
SolveScratch::invalidate_analyses()
{
    std::fill(analysis_valid_.begin(), analysis_valid_.end(), 0);
}

void
SolveScratch::invalidate_vertex(VertexId v)
{
    if (v < analysis_valid_.size())
        analysis_valid_[v] = 0;
}

void
SolveScratch::ensure_topology(const ExecutionGraph& graph)
{
    if (topo_valid_ && in_delta_sums_.size() == graph.vertex_count())
        return;
    ++topology_builds_;
    const std::size_t n = graph.vertex_count();
    topo_order_ = graph.topological_order();
    paths_ = graph.enumerate_paths();
    out_edges_.assign(n, {});
    in_delta_sums_.assign(n, 0.0);
    for (VertexId v = 0; v < n; ++v) {
        out_edges_[v] = graph.out_edges(v);
        in_delta_sums_[v] = graph.in_delta_sum(v);
    }
    ingresses_ = graph.ingress_vertices();
    egresses_ = graph.egress_vertices();
    analysis_valid_.assign(n, 0);
    analyses_.assign(n, VertexAnalysis{});
    topo_valid_ = true;
}

const VertexAnalysis&
SolveScratch::vertex_analysis(const ExecutionGraph& graph,
                              const HardwareModel& hw, VertexId v,
                              const TrafficProfile& traffic,
                              std::size_t class_index)
{
    if (v < analysis_valid_.size() && analysis_valid_[v]) {
        ++analysis_hits_;
        return analyses_[v];
    }
    ++analysis_misses_;
    if (analyses_.size() != graph.vertex_count()) {
        analysis_valid_.assign(graph.vertex_count(), 0);
        analyses_.assign(graph.vertex_count(), VertexAnalysis{});
    }
    analyses_[v] = analyze_vertex(graph, hw, v, traffic, class_index);
    analysis_valid_[v] = 1;
    return analyses_[v];
}

} // namespace lognic::core
