#include "lognic/core/hardware_model.hpp"

#include <stdexcept>
#include <tuple>

namespace lognic::core {

const char*
to_string(IpKind kind)
{
    switch (kind) {
      case IpKind::kCpuCores:
        return "cpu-cores";
      case IpKind::kAccelerator:
        return "accelerator";
      case IpKind::kStorage:
        return "storage";
      case IpKind::kDsp:
        return "dsp";
    }
    return "unknown";
}

HardwareModel::HardwareModel(std::string name, Bandwidth interface_bw,
                             Bandwidth memory_bw, Bandwidth line_rate)
    : name_(std::move(name)), interface_bw_(interface_bw),
      memory_bw_(memory_bw), line_rate_(line_rate)
{
    if (interface_bw.bits_per_sec() <= 0.0
        || memory_bw.bits_per_sec() <= 0.0 || line_rate.bits_per_sec() <= 0.0)
        throw std::invalid_argument(
            "HardwareModel: bandwidths must be positive");
}

IpId
HardwareModel::add_ip(IpSpec spec)
{
    if (spec.name.empty())
        throw std::invalid_argument("HardwareModel: IP needs a name");
    if (spec.max_engines == 0)
        throw std::invalid_argument(
            "HardwareModel: IP needs at least one engine");
    if (find_ip(spec.name))
        throw std::invalid_argument(
            "HardwareModel: duplicate IP name '" + spec.name + "'");
    ips_.push_back(std::move(spec));
    return static_cast<IpId>(ips_.size() - 1);
}

const IpSpec&
HardwareModel::ip(IpId id) const
{
    if (id >= ips_.size())
        throw std::out_of_range("HardwareModel: bad IP id");
    return ips_[id];
}

std::optional<IpId>
HardwareModel::find_ip(const std::string& name) const
{
    for (std::size_t i = 0; i < ips_.size(); ++i) {
        if (ips_[i].name == name)
            return static_cast<IpId>(i);
    }
    return std::nullopt;
}

void
HardwareModel::set_ip_bandwidth(IpId a, IpId b, Bandwidth bw)
{
    if (a >= ips_.size() || b >= ips_.size())
        throw std::out_of_range("HardwareModel: bad IP id for link");
    if (bw.bits_per_sec() <= 0.0)
        throw std::invalid_argument(
            "HardwareModel: link bandwidth must be positive");
    ip_links_.emplace_back(a, b, bw);
}

std::optional<Bandwidth>
HardwareModel::ip_bandwidth(IpId a, IpId b) const
{
    for (const auto& [m, n, bw] : ip_links_) {
        if ((m == a && n == b) || (m == b && n == a))
            return bw;
    }
    return std::nullopt;
}

} // namespace lognic::core
