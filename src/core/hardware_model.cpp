#include "lognic/core/hardware_model.hpp"

#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

namespace lognic::core {

const char*
to_string(IpKind kind)
{
    switch (kind) {
      case IpKind::kCpuCores:
        return "cpu-cores";
      case IpKind::kAccelerator:
        return "accelerator";
      case IpKind::kStorage:
        return "storage";
      case IpKind::kDsp:
        return "dsp";
    }
    return "unknown";
}

HardwareModel::HardwareModel(std::string name, Bandwidth interface_bw,
                             Bandwidth memory_bw, Bandwidth line_rate)
    : name_(std::move(name)), interface_bw_(interface_bw),
      memory_bw_(memory_bw), line_rate_(line_rate)
{
    const char* bad = interface_bw.bits_per_sec() <= 0.0 ? "interface"
        : memory_bw.bits_per_sec() <= 0.0                ? "memory"
        : line_rate.bits_per_sec() <= 0.0                ? "line-rate"
                                                         : nullptr;
    if (bad)
        throw std::invalid_argument(
            "HardwareModel '" + name_ + "': " + bad
            + " bandwidth must be positive");
}

IpId
HardwareModel::add_ip(IpSpec spec)
{
    if (spec.name.empty())
        throw std::invalid_argument(
            "HardwareModel '" + name_ + "': IP needs a name");
    if (spec.max_engines == 0)
        throw std::invalid_argument(
            "HardwareModel '" + name_ + "': IP '" + spec.name
            + "' needs at least one engine");
    if (find_ip(spec.name))
        throw std::invalid_argument(
            "HardwareModel '" + name_ + "': duplicate IP name '"
            + spec.name + "'");
    ips_.push_back(std::move(spec));
    return static_cast<IpId>(ips_.size() - 1);
}

const IpSpec&
HardwareModel::ip(IpId id) const
{
    if (id >= ips_.size())
        throw std::out_of_range(
            "HardwareModel '" + name_ + "': no IP with id "
            + std::to_string(id) + " (model has "
            + std::to_string(ips_.size()) + ")");
    return ips_[id];
}

IpSpec&
HardwareModel::ip(IpId id)
{
    return const_cast<IpSpec&>(std::as_const(*this).ip(id));
}

std::optional<IpId>
HardwareModel::find_ip(const std::string& name) const
{
    for (std::size_t i = 0; i < ips_.size(); ++i) {
        if (ips_[i].name == name)
            return static_cast<IpId>(i);
    }
    return std::nullopt;
}

void
HardwareModel::set_ip_bandwidth(IpId a, IpId b, Bandwidth bw)
{
    if (a >= ips_.size() || b >= ips_.size()) {
        const IpId missing = a >= ips_.size() ? a : b;
        throw std::out_of_range(
            "HardwareModel '" + name_ + "': link endpoint IP id "
            + std::to_string(missing) + " does not exist (model has "
            + std::to_string(ips_.size()) + " IPs)");
    }
    if (bw.bits_per_sec() <= 0.0)
        throw std::invalid_argument(
            "HardwareModel '" + name_ + "': link " + ips_[a].name + "<->"
            + ips_[b].name + " bandwidth must be positive");
    ip_links_.emplace_back(a, b, bw);
}

std::optional<Bandwidth>
HardwareModel::ip_bandwidth(IpId a, IpId b) const
{
    for (const auto& [m, n, bw] : ip_links_) {
        if ((m == a && n == b) || (m == b && n == a))
            return bw;
    }
    return std::nullopt;
}

} // namespace lognic::core
