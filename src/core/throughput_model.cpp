#include "lognic/core/throughput_model.hpp"

#include <algorithm>
#include <limits>

#include "lognic/core/solve_scratch.hpp"
#include "lognic/core/vertex_analysis.hpp"

namespace lognic::core {

const char*
to_string(TermKind kind)
{
    switch (kind) {
      case TermKind::kIpCompute:
        return "ip-compute";
      case TermKind::kEdge:
        return "edge";
      case TermKind::kInterface:
        return "interface";
      case TermKind::kMemory:
        return "memory";
      case TermKind::kLineRate:
        return "line-rate";
      case TermKind::kRateLimit:
        return "rate-limit";
    }
    return "unknown";
}

ThroughputEstimate
estimate_throughput(const ExecutionGraph& graph, const HardwareModel& hw,
                    const TrafficProfile& traffic, std::size_t class_index,
                    SolveScratch* scratch)
{
    // Always re-validate: a cached scratch must not mask a scenario delta
    // that the fresh path would reject (identical throw-vs-report
    // behavior is part of the bit-identity contract).
    graph.validate(hw);
    if (scratch != nullptr)
        scratch->ensure_topology(graph);

    ThroughputEstimate est;
    std::vector<ThroughputTerm>& terms = est.terms;

    // Ingress/egress engine rate caps the amount of data served per second.
    terms.push_back(
        {TermKind::kLineRate, "ingress/egress", hw.line_rate()});

    // Eq. 1 terms: P_vi / sum(delta_in) per IP (and rate-limiter) vertex.
    for (VertexId v = 0; v < graph.vertex_count(); ++v) {
        const Vertex& vx = graph.vertex(v);
        if (vx.kind == VertexKind::kIngress || vx.kind == VertexKind::kEgress)
            continue;
        const double delta_sum = scratch != nullptr
            ? scratch->in_delta_sum(v)
            : graph.in_delta_sum(v);
        if (delta_sum <= 0.0)
            continue; // sees no traffic; never binds
        const VertexAnalysis va = scratch != nullptr
            ? scratch->vertex_analysis(graph, hw, v, traffic, class_index)
            : analyze_vertex(graph, hw, v, traffic, class_index);
        const TermKind kind = vx.kind == VertexKind::kRateLimiter
            ? TermKind::kRateLimit
            : TermKind::kIpCompute;
        terms.push_back({kind, vx.name, va.attainable / delta_sum});
    }

    // Edge terms and shared-medium demand accumulation (Eq. 2).
    double alpha_sum = 0.0;
    double beta_sum = 0.0;
    for (EdgeId e = 0; e < graph.edge_count(); ++e) {
        const Edge& ed = graph.edge(e);
        const EdgeParams& p = ed.params;
        alpha_sum += p.alpha;
        beta_sum += p.beta;
        if (p.dedicated_bw && p.delta > 0.0) {
            const std::string name = graph.vertex(ed.from).name + "->"
                + graph.vertex(ed.to).name;
            terms.push_back(
                {TermKind::kEdge, name, *p.dedicated_bw / p.delta});
        }
    }
    if (alpha_sum > 0.0) {
        terms.push_back({TermKind::kInterface, "interface",
                         hw.interface_bandwidth() / alpha_sum});
    }
    if (beta_sum > 0.0) {
        terms.push_back({TermKind::kMemory, "memory",
                         hw.memory_bandwidth() / beta_sum});
    }

    std::sort(terms.begin(), terms.end(),
              [](const ThroughputTerm& a, const ThroughputTerm& b) {
                  return a.limit < b.limit;
              });

    est.capacity = terms.front().limit;
    est.bottleneck = terms.front();
    est.achieved = std::min(est.capacity, traffic.ingress_bandwidth());
    return est;
}

} // namespace lognic::core
