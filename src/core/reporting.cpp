#include "lognic/core/reporting.hpp"

#include <cstdio>
#include <sstream>

namespace lognic::core {

namespace {

std::string
format(const char* fmt, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
}

std::string
class_label(const TrafficProfile& traffic, std::size_t i)
{
    const auto& c = traffic.classes()[i];
    std::ostringstream os;
    os << static_cast<long long>(c.size.bytes()) << "B";
    if (traffic.classes().size() > 1)
        os << " (" << format("%.0f", 100.0 * c.weight) << "% of bytes)";
    return os.str();
}

} // namespace

std::string
render_throughput(const ThroughputReport& report,
                  const TrafficProfile& traffic)
{
    std::ostringstream os;
    os << "Throughput: capacity "
       << format("%.3f", report.capacity.gbps()) << " Gbps, achieved "
       << format("%.3f", report.achieved.gbps()) << " Gbps at "
       << format("%.3f", traffic.ingress_bandwidth().gbps())
       << " Gbps offered\n";
    for (std::size_t i = 0; i < report.per_class.size(); ++i) {
        const auto& est = report.per_class[i];
        os << "  class " << class_label(traffic, i) << ": capacity "
           << format("%.3f", est.capacity.gbps()) << " Gbps\n";
        for (const auto& term : est.terms) {
            const bool binding = term.name == est.bottleneck.name
                && term.kind == est.bottleneck.kind;
            os << "    " << (binding ? "-> " : "   ")
               << format("%10.3f", term.limit.gbps()) << " Gbps  "
               << to_string(term.kind) << "  " << term.name
               << (binding ? "  [bottleneck]" : "") << "\n";
        }
    }
    return os.str();
}

std::string
render_latency(const LatencyReport& report, const TrafficProfile& traffic)
{
    std::ostringstream os;
    os << "Latency: mean " << format("%.3f", report.mean.micros())
       << " us";
    if (report.max_drop_probability > 0.0)
        os << ", worst drop probability "
           << format("%.4f", report.max_drop_probability);
    os << "\n";
    for (std::size_t i = 0; i < report.per_class.size(); ++i) {
        const auto& est = report.per_class[i];
        os << "  class " << class_label(traffic, i) << ": "
           << format("%.3f", est.mean.micros()) << " us, goodput "
           << format("%.3f", est.goodput.gbps()) << " Gbps\n";
        for (const auto& path : est.paths) {
            os << "    path (weight " << format("%.2f", path.weight)
               << "): " << format("%.3f", path.total.micros()) << " us\n";
            for (const auto& hop : path.hops) {
                os << "      " << hop.vertex << ": Q="
                   << format("%.3f", hop.queueing.micros()) << " C="
                   << format("%.3f", hop.compute.micros()) << " O="
                   << format("%.3f", hop.overhead.micros()) << " xfer="
                   << format("%.3f", hop.transfer.micros()) << " us\n";
            }
        }
    }
    return os.str();
}

std::string
render_report(const Report& report, const TrafficProfile& traffic)
{
    return render_throughput(report.throughput, traffic)
        + render_latency(report.latency, traffic);
}

std::string
to_dot(const ExecutionGraph& graph, const HardwareModel& hw)
{
    std::ostringstream os;
    os << "digraph \"" << graph.name() << "\" {\n"
       << "  rankdir=LR;\n"
       << "  node [shape=box, fontname=\"monospace\"];\n";

    for (VertexId v = 0; v < graph.vertex_count(); ++v) {
        const Vertex& vx = graph.vertex(v);
        os << "  v" << v << " [label=\"" << vx.name;
        switch (vx.kind) {
          case VertexKind::kIngress:
          case VertexKind::kEgress:
            os << "\\n(" << to_string(vx.kind) << " @ "
               << format("%.0f", hw.line_rate().gbps()) << "G)\"";
            os << ", shape=ellipse";
            break;
          case VertexKind::kRateLimiter:
            os << "\\n(shaper @ " << format("%.1f", vx.rate_limit.gbps())
               << "G, N=" << vx.params.queue_capacity << ")\"";
            os << ", shape=hexagon";
            break;
          case VertexKind::kIp: {
            const IpSpec& spec = hw.ip(vx.ip);
            const std::uint32_t d = vx.params.parallelism > 0
                ? vx.params.parallelism
                : spec.max_engines;
            const std::uint32_t n = vx.params.queue_capacity > 0
                ? vx.params.queue_capacity
                : spec.default_queue_capacity;
            os << "\\n(" << to_string(spec.kind) << " " << spec.name
               << ", D=" << d << ", N=" << n;
            if (vx.params.partition < 1.0)
                os << ", g=" << format("%.2f", vx.params.partition);
            os << ")\"";
            break;
          }
        }
        os << "];\n";
    }

    for (EdgeId e = 0; e < graph.edge_count(); ++e) {
        const Edge& ed = graph.edge(e);
        const EdgeParams& p = ed.params;
        os << "  v" << ed.from << " -> v" << ed.to << " [label=\"d="
           << format("%.2f", p.delta);
        if (p.alpha > 0.0)
            os << " a=" << format("%.2f", p.alpha);
        if (p.beta > 0.0)
            os << " b=" << format("%.2f", p.beta);
        if (p.dedicated_bw)
            os << " bw=" << format("%.1f", p.dedicated_bw->gbps()) << "G";
        os << "\"];\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace lognic::core
