#include "lognic/core/extensions.hpp"

#include <algorithm>
#include <stdexcept>

#include "lognic/core/vertex_analysis.hpp"

namespace lognic::core {

ConsolidatedEstimate
consolidate(const HardwareModel& hw, const std::vector<TenantWorkload>& tenants)
{
    if (tenants.empty())
        throw std::invalid_argument("consolidate: no tenants");
    double weight_sum = 0.0;
    for (const auto& t : tenants) {
        if (t.graph == nullptr)
            throw std::invalid_argument("consolidate: null tenant graph");
        if (t.weight <= 0.0)
            throw std::invalid_argument(
                "consolidate: tenant weight must be positive");
        if (t.traffic.classes().size() != 1)
            throw std::invalid_argument(
                "consolidate: tenants must use single-class profiles "
                "(apply extension #2 per class first)");
        weight_sum += t.weight;
    }

    ConsolidatedEstimate out;
    std::vector<ThroughputTerm> terms;

    // Line rate is shared by everyone.
    terms.push_back({TermKind::kLineRate, "ingress/egress", hw.line_rate()});

    double alpha_sum = 0.0;
    double beta_sum = 0.0;
    const Model model(hw);

    for (const auto& t : tenants) {
        const double w = t.weight / weight_sum;
        t.graph->validate(hw);

        // Per-tenant IP and edge terms, scaled by the tenant's demand share:
        // this tenant only sends w * W through its graph, so the throughput
        // the entity allows for the *total* W is P / (w * sum(delta)).
        for (VertexId v = 0; v < t.graph->vertex_count(); ++v) {
            const Vertex& vx = t.graph->vertex(v);
            if (vx.kind == VertexKind::kIngress
                || vx.kind == VertexKind::kEgress)
                continue;
            const double delta_sum = t.graph->in_delta_sum(v);
            if (delta_sum <= 0.0)
                continue;
            const VertexAnalysis va =
                analyze_vertex(*t.graph, hw, v, t.traffic);
            terms.push_back({vx.kind == VertexKind::kRateLimiter
                                 ? TermKind::kRateLimit
                                 : TermKind::kIpCompute,
                             t.graph->name() + ":" + vx.name,
                             va.attainable / (w * delta_sum)});
        }
        for (EdgeId e = 0; e < t.graph->edge_count(); ++e) {
            const EdgeParams& p = t.graph->edge(e).params;
            // Weighted average of the data transfer percentages (S3.7).
            alpha_sum += w * p.alpha;
            beta_sum += w * p.beta;
            if (p.dedicated_bw && p.delta > 0.0) {
                terms.push_back({TermKind::kEdge,
                                 t.graph->name() + ":edge",
                                 *p.dedicated_bw / (w * p.delta)});
            }
        }
    }
    if (alpha_sum > 0.0) {
        terms.push_back({TermKind::kInterface, "interface",
                         hw.interface_bandwidth() / alpha_sum});
    }
    if (beta_sum > 0.0) {
        terms.push_back({TermKind::kMemory, "memory",
                         hw.memory_bandwidth() / beta_sum});
    }

    const auto bottleneck_it = std::min_element(
        terms.begin(), terms.end(),
        [](const ThroughputTerm& a, const ThroughputTerm& b) {
            return a.limit < b.limit;
        });
    out.total_capacity = bottleneck_it->limit;
    out.bottleneck = *bottleneck_it;

    // Per-tenant slices and the weighted latency.
    double mean_latency = 0.0;
    for (const auto& t : tenants) {
        const double w = t.weight / weight_sum;
        TenantEstimate te;
        te.capacity = out.total_capacity * w;
        const LatencyReport lat = model.latency(*t.graph, t.traffic);
        te.latency = lat.mean;
        mean_latency += w * te.latency.seconds();
        out.tenants.push_back(te);
    }
    out.mean_latency = Seconds{mean_latency};
    return out;
}

VertexId
insert_rate_limiter(ExecutionGraph& graph, VertexId target, Bandwidth limit,
                    std::uint32_t queue_capacity)
{
    const auto incoming = graph.in_edges(target);
    if (incoming.empty())
        throw std::invalid_argument(
            "insert_rate_limiter: target has no in-edges");

    const VertexId rl = graph.add_rate_limiter(
        graph.vertex(target).name + "-shaper", limit, queue_capacity);

    double delta_sum = 0.0;
    for (EdgeId e : incoming) {
        delta_sum += graph.edge(e).params.delta;
        graph.edge(e).to = rl; // re-route through the limiter
    }

    // The limiter forwards everything it admits; it adds no medium usage of
    // its own (it sits at the target's front door).
    EdgeParams forward;
    forward.delta = std::min(1.0, delta_sum);
    graph.add_edge(rl, target, forward);
    return rl;
}

std::vector<VertexId>
unroll_recirculation(ExecutionGraph& graph, VertexId target,
                     std::uint32_t extra_passes)
{
    if (extra_passes == 0)
        throw std::invalid_argument(
            "unroll_recirculation: need at least one extra pass");
    const Vertex original = graph.vertex(target);
    if (original.kind != VertexKind::kIp)
        throw std::invalid_argument(
            "unroll_recirculation: target must be an IP vertex");

    // Every pass (including the original) time-slices the physical IP.
    const double share = original.params.partition
        / static_cast<double>(extra_passes + 1);
    graph.vertex(target).params.partition = share;

    const double delta = graph.in_delta_sum(target);
    EdgeParams internal;
    internal.delta = std::min(1.0, delta);

    // Detach the original's out-edges; they will leave from the last pass.
    const auto outs = graph.out_edges(target);

    std::vector<VertexId> passes;
    VertexId prev = target;
    for (std::uint32_t pass = 0; pass < extra_passes; ++pass) {
        VertexParams params = original.params;
        params.partition = share;
        const VertexId clone = graph.add_ip_vertex(
            original.name + "-pass" + std::to_string(pass + 2),
            original.ip, params);
        graph.add_edge(prev, clone, internal);
        passes.push_back(clone);
        prev = clone;
    }
    for (EdgeId e : outs)
        graph.edge(e).from = prev;
    return passes;
}

ExecutionGraph
merge_tenant_graphs(const std::vector<TenantWorkload>& tenants)
{
    if (tenants.empty())
        throw std::invalid_argument("merge_tenant_graphs: no tenants");
    double weight_sum = 0.0;
    for (const auto& t : tenants) {
        if (t.graph == nullptr || t.weight <= 0.0)
            throw std::invalid_argument(
                "merge_tenant_graphs: null graph or non-positive weight");
        weight_sum += t.weight;
    }

    ExecutionGraph merged("merged");
    for (std::size_t ti = 0; ti < tenants.size(); ++ti) {
        const ExecutionGraph& g = *tenants[ti].graph;
        const double w = tenants[ti].weight / weight_sum;
        const std::string prefix = g.name().empty()
            ? "t" + std::to_string(ti) + ":"
            : g.name() + ":";

        std::vector<VertexId> remap(g.vertex_count());
        for (VertexId v = 0; v < g.vertex_count(); ++v) {
            const Vertex& vx = g.vertex(v);
            const std::string name = prefix + vx.name;
            switch (vx.kind) {
              case VertexKind::kIngress:
                remap[v] = merged.add_ingress(name);
                break;
              case VertexKind::kEgress:
                remap[v] = merged.add_egress(name);
                break;
              case VertexKind::kRateLimiter:
                remap[v] = merged.add_rate_limiter(
                    name, vx.rate_limit, vx.params.queue_capacity);
                break;
              case VertexKind::kIp:
                remap[v] = merged.add_ip_vertex(name, vx.ip, vx.params);
                break;
            }
        }
        for (EdgeId e = 0; e < g.edge_count(); ++e) {
            const Edge& ed = g.edge(e);
            EdgeParams p = ed.params;
            // Fractions become relative to the merged W.
            p.delta *= w;
            p.alpha *= w;
            p.beta *= w;
            merged.add_edge(remap[ed.from], remap[ed.to], p);
        }
    }
    return merged;
}

} // namespace lognic::core
