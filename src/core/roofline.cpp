#include "lognic/core/roofline.hpp"

#include <algorithm>

namespace lognic::core {

Bandwidth
ExtendedRoofline::attainable(Bytes size, std::uint32_t engines,
                             double share) const
{
    Bandwidth best = engine_.throughput(size) * static_cast<double>(engines)
        * share;
    for (const auto& c : ceilings_)
        best = std::min(best, c.bw * share);
    return best;
}

std::string
ExtendedRoofline::binding_factor(Bytes size, std::uint32_t engines,
                                 double share) const
{
    const Bandwidth compute =
        engine_.throughput(size) * static_cast<double>(engines) * share;
    std::string binding = "compute";
    Bandwidth best = compute;
    for (const auto& c : ceilings_) {
        const Bandwidth capped = c.bw * share;
        if (capped < best) {
            best = capped;
            binding = c.name;
        }
    }
    return binding;
}

} // namespace lognic::core
