#include "lognic/core/latency_model.hpp"

#include <algorithm>

#include "lognic/core/solve_scratch.hpp"
#include "lognic/core/vertex_analysis.hpp"
#include "lognic/queueing/mg1.hpp"
#include "lognic/solver/special.hpp"
#include "lognic/queueing/mm1n.hpp"

namespace lognic::core {

namespace {

/**
 * Queueing delay Q_i of a vertex at its operating point (Eq. 12), with the
 * per-engine arrival rate scaled by @p thinning (the fraction of the
 * vertex's nominal traffic that actually survives upstream drops).
 */
Seconds
queueing_delay(const VertexAnalysis& va, double thinning, double scv,
               double& drop_probability)
{
    drop_probability = 0.0;
    if (va.passthrough || va.lambda <= 0.0 || va.mu <= 0.0
        || thinning <= 0.0)
        return Seconds{0.0};
    const double lambda = va.lambda * thinning;
    const queueing::Mm1nQueue q(lambda, va.mu, va.queue_capacity);
    drop_probability = q.blocking_probability();
    // Low-variability engines (hardware pipelines) wait per the M/G/1
    // Pollaczek-Khinchine formula while stable; the finite-queue M/M/1/N
    // form (Eq. 12) covers the exponential and overloaded cases.
    if (scv < 1.0 && lambda < va.mu) {
        const queueing::Mg1Queue pk(lambda, 1.0 / va.mu, scv);
        return Seconds{pk.mean_queueing_delay()};
    }
    // The closed form can be a hair negative at very low load due to
    // floating point; clamp at zero.
    return Seconds{std::max(0.0, q.paper_closed_form_delay())};
}

/// Data movement time over one edge (Eq. 7).
Seconds
transfer_time(const Edge& e, const HardwareModel& hw, Bytes g_in)
{
    const EdgeParams& p = e.params;
    double t = g_in.bits() * p.alpha / hw.interface_bandwidth().bits_per_sec()
        + g_in.bits() * p.beta / hw.memory_bandwidth().bits_per_sec();
    if (p.dedicated_bw) {
        t += g_in.bits() * p.delta / p.dedicated_bw->bits_per_sec();
    }
    return Seconds{t};
}

} // namespace

LatencyEstimate
estimate_latency(const ExecutionGraph& graph, const HardwareModel& hw,
                 const TrafficProfile& traffic, std::size_t class_index,
                 SolveScratch* scratch)
{
    // Re-validated even with a warm scratch; see estimate_throughput.
    graph.validate(hw);
    if (scratch != nullptr)
        scratch->ensure_topology(graph);

    const Bytes g_in = traffic.granularity(class_index);
    const Bandwidth bw_in = traffic.ingress_bandwidth();

    // Analyze every vertex once (queueing state is per vertex, not per
    // path), walking in topological order so each vertex sees only the
    // traffic that *survived* upstream finite queues — a feed-forward loss
    // network. Without the thinning, chained overloaded vertices would
    // each be charged the full offered load and drops would be double
    // counted.
    std::vector<VertexAnalysis> analysis(graph.vertex_count());
    std::vector<Seconds> queue_delay(graph.vertex_count(), Seconds{0.0});
    std::vector<double> drop_prob(graph.vertex_count(), 0.0);
    // inflow[v]: fraction of W arriving at v; survived[v]: fraction of W
    // leaving v after its own drops.
    std::vector<double> inflow(graph.vertex_count(), 0.0);
    std::vector<double> survived(graph.vertex_count(), 0.0);
    // Vertices bound to an IP with an empirical sojourn curve (S4.7) get
    // their whole (queueing + service) time from the curve; the curve's
    // value replaces the compute term and Q is folded in.
    std::vector<Seconds> sojourn_override(graph.vertex_count(),
                                          Seconds{-1.0});

    const std::vector<VertexId> ingresses = scratch != nullptr
        ? scratch->ingresses()
        : graph.ingress_vertices();
    {
        double total = 0.0;
        std::vector<double> shares(ingresses.size(), 0.0);
        for (std::size_t i = 0; i < ingresses.size(); ++i) {
            for (EdgeId e : graph.out_edges(ingresses[i]))
                shares[i] += graph.edge(e).params.delta;
            total += shares[i];
        }
        for (std::size_t i = 0; i < ingresses.size(); ++i) {
            inflow[ingresses[i]] = total > 0.0
                ? shares[i] / total
                : 1.0 / static_cast<double>(ingresses.size());
        }
    }

    LatencyEstimate est;
    const std::vector<VertexId> topo_order = scratch != nullptr
        ? scratch->topological_order()
        : graph.topological_order();
    for (VertexId v : topo_order) {
        analysis[v] = scratch != nullptr
            ? scratch->vertex_analysis(graph, hw, v, traffic, class_index)
            : analyze_vertex(graph, hw, v, traffic, class_index);
        const Vertex& vx = graph.vertex(v);
        const double nominal = vx.kind == VertexKind::kIngress
            ? inflow[v]
            : (scratch != nullptr ? scratch->in_delta_sum(v)
                                  : graph.in_delta_sum(v));

        if (vx.kind == VertexKind::kIp
            && hw.ip(vx.ip).sojourn_curve != nullptr) {
            // Opaque IP: the curve covers queueing + service; treat it as
            // lossless (its internal shedding is part of the curve).
            const double lambda =
                bw_in.bits_per_sec() * inflow[v] / g_in.bits();
            sojourn_override[v] = hw.ip(vx.ip).sojourn_curve(lambda);
            survived[v] = inflow[v];
        } else {
            const double thinning =
                nominal > 0.0 ? inflow[v] / nominal : 0.0;
            const double scv = vx.kind == VertexKind::kIp
                ? hw.ip(vx.ip).service_scv
                : 1.0;
            queue_delay[v] = queueing_delay(analysis[v], thinning, scv,
                                            drop_prob[v]);
            est.max_drop_probability =
                std::max(est.max_drop_probability, drop_prob[v]);
            survived[v] = inflow[v] * (1.0 - drop_prob[v]);
        }

        // Propagate the surviving flow downstream by branch shares.
        const std::vector<EdgeId> outs = scratch != nullptr
            ? scratch->out_edge_lists()[v]
            : graph.out_edges(v);
        double delta_sum = 0.0;
        for (EdgeId e : outs)
            delta_sum += graph.edge(e).params.delta;
        for (EdgeId e : outs) {
            const double share = delta_sum > 0.0
                ? graph.edge(e).params.delta / delta_sum
                : 1.0 / static_cast<double>(outs.size());
            inflow[graph.edge(e).to] += survived[v] * share;
        }
    }

    // With explicit egress vertices, every IP on a path is the source of
    // exactly one path edge, so the Eq. 6 edge sum already covers the final
    // IP's Q + C/A term.
    const std::vector<ExecutionGraph::Path> paths = scratch != nullptr
        ? scratch->paths()
        : graph.enumerate_paths();
    double weight_sum = 0.0;
    double mean = 0.0;
    // Per-path tail parameters: deterministic shift + gamma moment match
    // of the stochastic sojourn sum.
    struct PathTail {
        double weight;
        double shift;   ///< deterministic seconds (overheads + transfers)
        double k;       ///< gamma shape (0 = fully deterministic)
        double theta;   ///< gamma scale
    };
    std::vector<PathTail> tails;
    for (const auto& path : paths) {
        PathLatency pl;
        pl.weight = path.weight;
        double det = 0.0;
        double var_mean = 0.0;
        double var_var = 0.0;
        for (EdgeId eid : path.edges) {
            const Edge& e = graph.edge(eid);
            const Vertex& src = graph.vertex(e.from);
            const VertexAnalysis& va = analysis[e.from];
            HopLatency hop;
            hop.vertex = src.name;
            if (sojourn_override[e.from].seconds() >= 0.0) {
                hop.queueing = Seconds{0.0};
                hop.compute = sojourn_override[e.from];
            } else {
                hop.queueing = queue_delay[e.from];
                hop.compute = va.passthrough
                    ? Seconds{0.0}
                    : va.compute_time / src.params.acceleration;
            }
            hop.overhead = src.params.overhead;
            hop.transfer = transfer_time(e, hw, g_in);
            // Tail accounting: Q + C is stochastic (variance per the IP's
            // service model), O and transfers are deterministic.
            const double sojourn =
                hop.queueing.seconds() + hop.compute.seconds();
            const double scv_v =
                src.kind == VertexKind::kIp ? hw.ip(src.ip).service_scv
                                            : 1.0;
            var_mean += sojourn;
            var_var += std::max(scv_v, 1e-6) * sojourn * sojourn;
            det += hop.overhead.seconds() + hop.transfer.seconds();
            pl.total += hop.total();
            pl.hops.push_back(std::move(hop));
        }
        if (var_var > 0.0 && var_mean > 0.0) {
            tails.push_back(PathTail{path.weight, det,
                                     var_mean * var_mean / var_var,
                                     var_var / var_mean});
        } else {
            tails.push_back(PathTail{path.weight, det + var_mean, 0.0, 0.0});
        }
        mean += pl.weight * pl.total.seconds();
        weight_sum += pl.weight;
        est.paths.push_back(std::move(pl));
    }
    if (weight_sum > 0.0)
        mean /= weight_sum;
    est.mean = Seconds{mean};

    // p99: solve the path mixture's 1% survival by bisection.
    if (!tails.empty() && weight_sum > 0.0) {
        auto survival = [&](double t) {
            double s = 0.0;
            for (const auto& tail : tails) {
                double sp = 0.0;
                if (tail.k <= 0.0) {
                    sp = t < tail.shift ? 1.0 : 0.0;
                } else if (t <= tail.shift) {
                    sp = 1.0;
                } else {
                    sp = solver::regularized_gamma_q(
                        tail.k, (t - tail.shift) / tail.theta);
                }
                s += tail.weight / weight_sum * sp;
            }
            return s;
        };
        double hi = 0.0;
        for (const auto& tail : tails) {
            hi = std::max(hi, tail.shift + (tail.k > 0.0
                                                ? 2.0 * tail.k * tail.theta
                                                : 0.0));
        }
        hi = std::max(hi, 1e-9);
        while (survival(hi) > 0.01 && hi < 1e3)
            hi *= 2.0;
        double lo = 0.0;
        for (int i = 0; i < 100; ++i) {
            const double mid = 0.5 * (lo + hi);
            if (survival(mid) > 0.01)
                lo = mid;
            else
                hi = mid;
        }
        est.p99 = Seconds{0.5 * (lo + hi)};
    }

    // Goodput: the flow that reaches the egress engines.
    double egress_flow = 0.0;
    const std::vector<VertexId> egresses = scratch != nullptr
        ? scratch->egresses()
        : graph.egress_vertices();
    for (VertexId v : egresses)
        egress_flow += inflow[v];
    est.goodput =
        std::min(bw_in, hw.line_rate()) * std::min(1.0, egress_flow);
    return est;
}

} // namespace lognic::core
