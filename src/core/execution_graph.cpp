#include "lognic/core/execution_graph.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <stdexcept>
#include <string>

namespace lognic::core {

const char*
to_string(VertexKind kind)
{
    switch (kind) {
      case VertexKind::kIngress:
        return "ingress";
      case VertexKind::kEgress:
        return "egress";
      case VertexKind::kIp:
        return "ip";
      case VertexKind::kRateLimiter:
        return "rate-limiter";
    }
    return "unknown";
}

VertexId
ExecutionGraph::add_vertex(Vertex v)
{
    if (v.name.empty())
        throw std::invalid_argument("ExecutionGraph: vertex needs a name");
    if (find_vertex(v.name))
        throw std::invalid_argument(
            "ExecutionGraph: duplicate vertex name '" + v.name + "'");
    vertices_.push_back(std::move(v));
    return static_cast<VertexId>(vertices_.size() - 1);
}

VertexId
ExecutionGraph::add_ingress(const std::string& name)
{
    Vertex v;
    v.name = name;
    v.kind = VertexKind::kIngress;
    return add_vertex(std::move(v));
}

VertexId
ExecutionGraph::add_egress(const std::string& name)
{
    Vertex v;
    v.name = name;
    v.kind = VertexKind::kEgress;
    return add_vertex(std::move(v));
}

VertexId
ExecutionGraph::add_ip_vertex(const std::string& name, IpId ip,
                              VertexParams params)
{
    Vertex v;
    v.name = name;
    v.kind = VertexKind::kIp;
    v.ip = ip;
    v.params = params;
    return add_vertex(std::move(v));
}

VertexId
ExecutionGraph::add_rate_limiter(const std::string& name, Bandwidth limit,
                                 std::uint32_t queue_capacity)
{
    if (limit.bits_per_sec() <= 0.0)
        throw std::invalid_argument(
            "ExecutionGraph: rate limit must be positive");
    Vertex v;
    v.name = name;
    v.kind = VertexKind::kRateLimiter;
    v.rate_limit = limit;
    v.params.queue_capacity = queue_capacity;
    return add_vertex(std::move(v));
}

EdgeId
ExecutionGraph::add_edge(VertexId from, VertexId to, EdgeParams params)
{
    if (from >= vertices_.size() || to >= vertices_.size()) {
        const VertexId bad = from >= vertices_.size() ? from : to;
        throw std::out_of_range(
            "ExecutionGraph '" + name_ + "': edge endpoint id "
            + std::to_string(bad) + " does not exist (graph has "
            + std::to_string(vertices_.size()) + " vertices)");
    }
    if (from == to)
        throw std::invalid_argument(
            "ExecutionGraph '" + name_ + "': self-loop on vertex '"
            + vertices_[from].name + "' not allowed");
    edges_.push_back(Edge{from, to, params});
    return static_cast<EdgeId>(edges_.size() - 1);
}

const Vertex&
ExecutionGraph::vertex(VertexId v) const
{
    if (v >= vertices_.size())
        throw std::out_of_range(
            "ExecutionGraph '" + name_ + "': no vertex with id "
            + std::to_string(v) + " (graph has "
            + std::to_string(vertices_.size()) + ")");
    return vertices_[v];
}

Vertex&
ExecutionGraph::vertex(VertexId v)
{
    if (v >= vertices_.size())
        throw std::out_of_range(
            "ExecutionGraph '" + name_ + "': no vertex with id "
            + std::to_string(v) + " (graph has "
            + std::to_string(vertices_.size()) + ")");
    return vertices_[v];
}

const Edge&
ExecutionGraph::edge(EdgeId e) const
{
    if (e >= edges_.size())
        throw std::out_of_range(
            "ExecutionGraph '" + name_ + "': no edge with id "
            + std::to_string(e) + " (graph has "
            + std::to_string(edges_.size()) + ")");
    return edges_[e];
}

Edge&
ExecutionGraph::edge(EdgeId e)
{
    if (e >= edges_.size())
        throw std::out_of_range(
            "ExecutionGraph '" + name_ + "': no edge with id "
            + std::to_string(e) + " (graph has "
            + std::to_string(edges_.size()) + ")");
    return edges_[e];
}

std::vector<EdgeId>
ExecutionGraph::out_edges(VertexId v) const
{
    std::vector<EdgeId> out;
    for (std::size_t e = 0; e < edges_.size(); ++e) {
        if (edges_[e].from == v)
            out.push_back(static_cast<EdgeId>(e));
    }
    return out;
}

std::vector<EdgeId>
ExecutionGraph::in_edges(VertexId v) const
{
    std::vector<EdgeId> in;
    for (std::size_t e = 0; e < edges_.size(); ++e) {
        if (edges_[e].to == v)
            in.push_back(static_cast<EdgeId>(e));
    }
    return in;
}

std::optional<VertexId>
ExecutionGraph::find_vertex(const std::string& name) const
{
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
        if (vertices_[i].name == name)
            return static_cast<VertexId>(i);
    }
    return std::nullopt;
}

std::vector<VertexId>
ExecutionGraph::ingress_vertices() const
{
    std::vector<VertexId> out;
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
        if (vertices_[i].kind == VertexKind::kIngress)
            out.push_back(static_cast<VertexId>(i));
    }
    return out;
}

std::vector<VertexId>
ExecutionGraph::egress_vertices() const
{
    std::vector<VertexId> out;
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
        if (vertices_[i].kind == VertexKind::kEgress)
            out.push_back(static_cast<VertexId>(i));
    }
    return out;
}

double
ExecutionGraph::in_delta_sum(VertexId v) const
{
    double sum = 0.0;
    for (EdgeId e : in_edges(v))
        sum += edges_[e].params.delta;
    return sum;
}

std::vector<VertexId>
ExecutionGraph::topological_order() const
{
    std::vector<std::size_t> in_count(vertices_.size(), 0);
    for (const auto& e : edges_)
        ++in_count[e.to];

    std::queue<VertexId> ready;
    for (std::size_t v = 0; v < vertices_.size(); ++v) {
        if (in_count[v] == 0)
            ready.push(static_cast<VertexId>(v));
    }

    std::vector<VertexId> order;
    order.reserve(vertices_.size());
    while (!ready.empty()) {
        const VertexId v = ready.front();
        ready.pop();
        order.push_back(v);
        for (EdgeId e : out_edges(v)) {
            if (--in_count[edges_[e].to] == 0)
                ready.push(edges_[e].to);
        }
    }
    if (order.size() != vertices_.size())
        throw std::invalid_argument(
            "ExecutionGraph '" + name_ + "': graph contains a cycle");
    return order;
}

void
ExecutionGraph::validate(const HardwareModel& hw) const
{
    if (ingress_vertices().empty())
        throw std::invalid_argument(
            "ExecutionGraph '" + name_ + "': no ingress vertex");
    if (egress_vertices().empty())
        throw std::invalid_argument(
            "ExecutionGraph '" + name_ + "': no egress vertex");

    (void)topological_order(); // throws on cycles

    for (std::size_t i = 0; i < vertices_.size(); ++i) {
        const auto& v = vertices_[i];
        const std::string where =
            "ExecutionGraph '" + name_ + "' vertex '" + v.name + "': ";
        if (v.kind == VertexKind::kIp) {
            if (v.ip >= hw.ip_count())
                throw std::invalid_argument(
                    where + "references IP id " + std::to_string(v.ip)
                    + ", but hardware model '" + hw.name() + "' has only "
                    + std::to_string(hw.ip_count()) + " IPs");
            const auto& spec = hw.ip(v.ip);
            if (v.params.parallelism > spec.max_engines)
                throw std::invalid_argument(
                    where + "parallelism "
                    + std::to_string(v.params.parallelism)
                    + " exceeds IP '" + spec.name + "' max_engines "
                    + std::to_string(spec.max_engines));
            if (!(v.params.partition > 0.0) || v.params.partition > 1.0)
                throw std::invalid_argument(
                    where + "partition must be in (0, 1]");
            if (!(v.params.acceleration > 0.0))
                throw std::invalid_argument(
                    where + "acceleration must be positive");
            if (v.params.overhead.seconds() < 0.0)
                throw std::invalid_argument(where + "negative overhead");
        }
        const bool needs_input = v.kind != VertexKind::kIngress;
        const bool needs_output = v.kind != VertexKind::kEgress;
        if (needs_input && in_edges(static_cast<VertexId>(i)).empty())
            throw std::invalid_argument(where + "unreachable (no in-edges)");
        if (needs_output && out_edges(static_cast<VertexId>(i)).empty())
            throw std::invalid_argument(where + "dead end (no out-edges)");
        if (v.kind == VertexKind::kIngress
            && !in_edges(static_cast<VertexId>(i)).empty())
            throw std::invalid_argument(where + "ingress cannot have inputs");
        if (v.kind == VertexKind::kEgress
            && !out_edges(static_cast<VertexId>(i)).empty())
            throw std::invalid_argument(where + "egress cannot have outputs");
    }

    for (const auto& e : edges_) {
        const std::string where = "ExecutionGraph '" + name_ + "' edge "
            + vertices_[e.from].name + "->" + vertices_[e.to].name + ": ";
        const auto& p = e.params;
        if (p.delta < 0.0 || p.delta > 1.0 || !std::isfinite(p.delta))
            throw std::invalid_argument(where + "delta must be in [0, 1]");
        if (p.alpha < 0.0 || !std::isfinite(p.alpha))
            throw std::invalid_argument(where + "alpha must be >= 0");
        if (p.beta < 0.0 || !std::isfinite(p.beta))
            throw std::invalid_argument(where + "beta must be >= 0");
        if (p.dedicated_bw && p.dedicated_bw->bits_per_sec() <= 0.0)
            throw std::invalid_argument(
                where + "dedicated bandwidth must be positive");
    }
}

std::vector<ExecutionGraph::Path>
ExecutionGraph::enumerate_paths(std::size_t max_paths) const
{
    std::vector<Path> paths;
    std::vector<EdgeId> stack;

    std::function<void(VertexId, double)> dfs = [&](VertexId v, double weight) {
        if (vertices_[v].kind == VertexKind::kEgress) {
            if (paths.size() >= max_paths)
                throw std::invalid_argument(
                    "ExecutionGraph: path explosion (raise max_paths?)");
            paths.push_back(Path{stack, weight});
            return;
        }
        const auto outs = out_edges(v);
        double delta_sum = 0.0;
        for (EdgeId e : outs)
            delta_sum += edges_[e].params.delta;
        for (EdgeId e : outs) {
            const double branch = delta_sum > 0.0
                ? edges_[e].params.delta / delta_sum
                : 1.0 / static_cast<double>(outs.size());
            stack.push_back(e);
            dfs(edges_[e].to, weight * branch);
            stack.pop_back();
        }
    };

    // Multiple ingress engines split the traffic by their outgoing delta
    // sums (equal split when no deltas are set).
    const auto ingresses = ingress_vertices();
    double total = 0.0;
    std::vector<double> shares(ingresses.size(), 0.0);
    for (std::size_t i = 0; i < ingresses.size(); ++i) {
        for (EdgeId e : out_edges(ingresses[i]))
            shares[i] += edges_[e].params.delta;
        total += shares[i];
    }
    for (std::size_t i = 0; i < ingresses.size(); ++i) {
        const double w = total > 0.0
            ? shares[i] / total
            : 1.0 / static_cast<double>(ingresses.size());
        dfs(ingresses[i], w);
    }
    return paths;
}

} // namespace lognic::core
