#include "lognic/core/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace lognic::core {

namespace {

struct Outputs {
    double capacity;
    double latency;
};

Outputs
evaluate(const Model& model, const ExecutionGraph& g,
         const TrafficProfile& t)
{
    const Report rep = model.estimate(g, t);
    return Outputs{rep.throughput.capacity.bits_per_sec(),
                   rep.latency.mean.seconds()};
}

/// Log-log elasticity between the outputs at parameter factors f_lo/f_hi.
double
elasticity(double y_lo, double y_hi, double f_lo, double f_hi)
{
    if (y_lo <= 0.0 || y_hi <= 0.0 || f_lo <= 0.0 || f_hi <= f_lo)
        return 0.0;
    return std::log(y_hi / y_lo) / std::log(f_hi / f_lo);
}

} // namespace

std::vector<Sensitivity>
analyze_sensitivity(const ExecutionGraph& graph, const HardwareModel& hw,
                    const TrafficProfile& traffic,
                    const SensitivityOptions& opts)
{
    graph.validate(hw);
    const double h = opts.perturbation;
    std::vector<Sensitivity> out;

    // A parameter is probed by evaluating two perturbed copies of the
    // scenario produced by the mutator.
    const auto probe =
        [&](const std::string& name,
            const std::function<void(ExecutionGraph&, HardwareModel&,
                                     TrafficProfile&, double)>& mutate,
            double down = -1.0, double up = -1.0) {
            const double f_lo = down >= 0.0 ? down : 1.0 - h;
            const double f_hi = up >= 0.0 ? up : 1.0 + h;
            ExecutionGraph g_lo = graph;
            HardwareModel hw_lo = hw;
            TrafficProfile t_lo = traffic;
            mutate(g_lo, hw_lo, t_lo, f_lo);
            ExecutionGraph g_hi = graph;
            HardwareModel hw_hi = hw;
            TrafficProfile t_hi = traffic;
            mutate(g_hi, hw_hi, t_hi, f_hi);
            const Outputs lo = evaluate(Model(hw_lo), g_lo, t_lo);
            const Outputs hi = evaluate(Model(hw_hi), g_hi, t_hi);
            Sensitivity s;
            s.parameter = name;
            s.capacity_elasticity =
                elasticity(lo.capacity, hi.capacity, f_lo, f_hi);
            s.latency_elasticity =
                elasticity(lo.latency, hi.latency, f_lo, f_hi);
            out.push_back(std::move(s));
        };

    // Shared hardware bandwidths. HardwareModel is immutable for these,
    // so perturbed models are rebuilt.
    const auto rebuild_hw = [&](double intf_f, double mem_f,
                                double line_f) {
        HardwareModel copy(hw.name(), hw.interface_bandwidth() * intf_f,
                           hw.memory_bandwidth() * mem_f,
                           hw.line_rate() * line_f);
        for (IpId i = 0; i < hw.ip_count(); ++i)
            copy.add_ip(hw.ip(i));
        return copy;
    };
    probe("hw:interface-bandwidth",
          [&](ExecutionGraph&, HardwareModel& h2, TrafficProfile&,
              double f) { h2 = rebuild_hw(f, 1.0, 1.0); });
    probe("hw:memory-bandwidth",
          [&](ExecutionGraph&, HardwareModel& h2, TrafficProfile&,
              double f) { h2 = rebuild_hw(1.0, f, 1.0); });
    probe("hw:line-rate",
          [&](ExecutionGraph&, HardwareModel& h2, TrafficProfile&,
              double f) { h2 = rebuild_hw(1.0, 1.0, f); });
    probe("traffic:offered-load",
          [&](ExecutionGraph&, HardwareModel&, TrafficProfile& t2,
              double f) {
              t2.set_ingress_bandwidth(traffic.ingress_bandwidth() * f);
          });

    // Per-vertex knobs.
    for (VertexId v = 0; v < graph.vertex_count(); ++v) {
        const Vertex& vx = graph.vertex(v);
        if (vx.kind != VertexKind::kIp)
            continue;
        const std::string base = "vertex:" + vx.name;

        // Partition (gamma) scales multiplicatively but must stay <= 1.
        if (vx.params.partition * (1.0 + h) <= 1.0) {
            probe(base + ":partition",
                  [&, v](ExecutionGraph& g2, HardwareModel&,
                         TrafficProfile&, double f) {
                      g2.vertex(v).params.partition *= f;
                  });
        }

        if (opts.include_parallelism) {
            const IpSpec& spec = hw.ip(vx.ip);
            const std::uint32_t d = vx.params.parallelism > 0
                ? vx.params.parallelism
                : spec.max_engines;
            if (d > 1) {
                // +/- one engine as a log step; one-sided (downward) when
                // the vertex already owns every engine.
                const std::uint32_t hi_engines =
                    std::min<std::uint32_t>(d + 1, spec.max_engines);
                const double f_lo = static_cast<double>(d - 1) / d;
                const double f_hi = static_cast<double>(hi_engines) / d;
                const auto set_engines =
                    [&, v, d](ExecutionGraph& g2, HardwareModel&,
                              TrafficProfile&, double f) {
                        g2.vertex(v).params.parallelism =
                            static_cast<std::uint32_t>(
                                std::lround(d * f));
                    };
                probe(base + ":parallelism", set_engines, f_lo, f_hi);
            }
        }
    }

    // Per-edge delta (only meaningful on fan-outs; a chain's delta = 1
    // rescales everything equally, so skip full-traffic edges).
    for (EdgeId e = 0; e < graph.edge_count(); ++e) {
        const Edge& ed = graph.edge(e);
        if (ed.params.delta <= 0.0 || ed.params.delta >= 1.0)
            continue;
        probe("edge:" + graph.vertex(ed.from).name + "->"
                  + graph.vertex(ed.to).name + ":delta",
              [&, e](ExecutionGraph& g2, HardwareModel&, TrafficProfile&,
                     double f) { g2.edge(e).params.delta *= f; });
    }

    std::sort(out.begin(), out.end(),
              [](const Sensitivity& a, const Sensitivity& b) {
                  const double ca = std::abs(a.capacity_elasticity);
                  const double cb = std::abs(b.capacity_elasticity);
                  if (ca != cb)
                      return ca > cb;
                  return std::abs(a.latency_elasticity)
                      > std::abs(b.latency_elasticity);
              });
    return out;
}

} // namespace lognic::core
