#include "lognic/core/vertex_analysis.hpp"

#include <algorithm>

namespace lognic::core {

VertexAnalysis
analyze_vertex(const ExecutionGraph& graph, const HardwareModel& hw,
               VertexId v, const TrafficProfile& traffic,
               std::size_t class_index)
{
    VertexAnalysis out;
    const Vertex& vx = graph.vertex(v);
    const Bytes g_in = traffic.granularity(class_index);
    const Bandwidth bw_in = traffic.ingress_bandwidth();

    if (vx.kind == VertexKind::kIngress || vx.kind == VertexKind::kEgress) {
        out.passthrough = true;
        out.request_size = g_in;
        out.attainable = hw.line_rate();
        return out;
    }

    const double delta_sum = graph.in_delta_sum(v);
    // Requests keep the ingress granularity: delta is the *fraction of
    // traffic* steered onto an edge, not a per-packet payload scaling, so a
    // vertex receiving 65% of the packets still serves g_in-sized requests.
    // (The paper's Eq. 7 writes the granularity as g_in * sum(delta) /
    // indegree, which coincides with g_in on the single-predecessor,
    // delta = 1 chains it derives; for fan-in vertices the physical
    // request size is g_in, and the resulting utilization rho =
    // BW_in * sum(delta) / P_vi matches Eq. 11 either way.)
    out.request_size = g_in;

    if (vx.kind == VertexKind::kRateLimiter) {
        // Extension #3 (S3.7): a pure enqueue/dequeue block whose "compute"
        // capacity is the shaping rate; the queue captures resource idleness.
        out.parallelism = 1;
        out.queue_capacity = std::max<std::uint32_t>(
            vx.params.queue_capacity, 1);
        out.attainable = vx.rate_limit;
    } else {
        const IpSpec& spec = hw.ip(vx.ip);
        out.parallelism = vx.params.parallelism > 0
            ? vx.params.parallelism
            : spec.max_engines;
        out.queue_capacity = vx.params.queue_capacity > 0
            ? vx.params.queue_capacity
            : spec.default_queue_capacity;
        out.attainable = spec.roofline.attainable(
            out.request_size, out.parallelism, vx.params.partition);
    }

    if (delta_sum <= 0.0 || out.request_size.bytes() <= 0.0) {
        // The vertex sees no traffic: infinitely fast from the flow's view.
        out.compute_time = Seconds{0.0};
        out.lambda = 0.0;
        out.mu = 0.0;
        out.rho = 0.0;
        return out;
    }

    // Eq. 7 (with the physical request granularity): one engine serves a
    // g_in-sized request at the vertex's per-engine rate P_vi / D_vi.
    const double d = static_cast<double>(out.parallelism);
    out.compute_time = Seconds{
        d * out.request_size.bits() / out.attainable.bits_per_sec()};

    // Eq. 11: per-engine arrival rate of the vertex's traffic share.
    out.lambda = bw_in.bits_per_sec() * delta_sum / (d * g_in.bits());
    out.mu = 1.0 / out.compute_time.seconds();
    out.rho = bw_in.bits_per_sec() * delta_sum / out.attainable.bits_per_sec();
    return out;
}

} // namespace lognic::core
