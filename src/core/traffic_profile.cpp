#include "lognic/core/traffic_profile.hpp"

#include <stdexcept>

namespace lognic::core {

TrafficProfile::TrafficProfile() : classes_{PacketClass{}} {}

TrafficProfile
TrafficProfile::fixed(Bytes packet_size, Bandwidth ingress_bw)
{
    return mixed({PacketClass{packet_size, 1.0}}, ingress_bw);
}

TrafficProfile
TrafficProfile::mixed(std::vector<PacketClass> classes, Bandwidth ingress_bw)
{
    if (classes.empty())
        throw std::invalid_argument("TrafficProfile: no packet classes");
    double total = 0.0;
    for (const auto& c : classes) {
        if (c.size.bytes() <= 0.0)
            throw std::invalid_argument(
                "TrafficProfile: packet size must be positive");
        if (c.weight <= 0.0)
            throw std::invalid_argument(
                "TrafficProfile: class weight must be positive");
        total += c.weight;
    }
    if (ingress_bw.bits_per_sec() <= 0.0)
        throw std::invalid_argument(
            "TrafficProfile: ingress bandwidth must be positive");

    TrafficProfile p;
    p.ingress_bw_ = ingress_bw;
    p.classes_ = std::move(classes);
    for (auto& c : p.classes_)
        c.weight /= total;
    return p;
}

Bytes
TrafficProfile::mean_packet_size() const
{
    double mean = 0.0;
    for (const auto& c : classes_)
        mean += c.weight * c.size.bytes();
    return Bytes{mean};
}

Bytes
TrafficProfile::granularity(std::size_t class_index) const
{
    if (class_index >= classes_.size())
        throw std::out_of_range("TrafficProfile: bad class index");
    if (granularity_override_)
        return *granularity_override_;
    return classes_[class_index].size;
}

TrafficProfile
TrafficProfile::class_profile(std::size_t class_index) const
{
    if (class_index >= classes_.size())
        throw std::out_of_range("TrafficProfile: bad class index");
    TrafficProfile p;
    p.ingress_bw_ = ingress_bw_;
    p.classes_ = {PacketClass{classes_[class_index].size, 1.0}};
    p.granularity_override_ = granularity_override_;
    return p;
}

} // namespace lognic::core
