#include "lognic/core/model.hpp"

#include "lognic/core/solve_scratch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

namespace lognic::core {

namespace {

/**
 * Build the operating profile for one class of a mixed profile: the class
 * keeps its own packet size and receives its byte share of the offered load.
 */
TrafficProfile
class_operating_profile(const TrafficProfile& traffic, std::size_t i)
{
    TrafficProfile p = traffic.class_profile(i);
    p.set_ingress_bandwidth(
        traffic.ingress_bandwidth() * traffic.classes()[i].weight);
    return p;
}

/**
 * Extension #2: when several classes share an IP, each class owns a share
 * of the queue capacity proportional to its traffic weight (min 1 entry).
 */
ExecutionGraph
queue_partitioned_copy(const ExecutionGraph& graph, const HardwareModel& hw,
                       double weight)
{
    ExecutionGraph copy = graph;
    for (VertexId v = 0; v < copy.vertex_count(); ++v) {
        Vertex& vx = copy.vertex(v);
        if (vx.kind == VertexKind::kIngress || vx.kind == VertexKind::kEgress)
            continue;
        std::uint32_t base = vx.params.queue_capacity;
        if (base == 0 && vx.kind == VertexKind::kIp)
            base = hw.ip(vx.ip).default_queue_capacity;
        if (base == 0)
            base = 1;
        vx.params.queue_capacity = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(
                   std::floor(static_cast<double>(base) * weight + 0.5)));
    }
    return copy;
}

/**
 * Combine per-class capacities into the mixed-traffic capacity.
 *
 * Every resource is shared by all classes at once, so one ingress byte of
 * class i consumes 1 / limit_i of the resource per second; the mix
 * saturates the resource at 1 / sum(w_i / limit_i) — the weighted
 * *harmonic* mean of the per-class limits, taken per resource and then
 * minimised across resources. (A weighted arithmetic mean of the
 * per-class capacities overestimates: it describes classes that each get
 * a dedicated slice of every resource, not classes interleaving on the
 * same engines.)
 */
Bandwidth
mixed_capacity(const std::vector<ThroughputEstimate>& per_class,
               const std::vector<PacketClass>& classes)
{
    std::map<std::pair<TermKind, std::string>, double> inverse;
    for (std::size_t i = 0; i < per_class.size(); ++i)
        for (const ThroughputTerm& term : per_class[i].terms)
            inverse[{term.kind, term.name}] +=
                classes[i].weight / term.limit.bits_per_sec();
    double min_limit = std::numeric_limits<double>::infinity();
    for (const auto& [key, inv] : inverse)
        if (inv > 0.0)
            min_limit = std::min(min_limit, 1.0 / inv);
    if (!std::isfinite(min_limit))
        min_limit = 0.0;
    return Bandwidth{min_limit};
}

} // namespace

const ThroughputTerm&
ThroughputReport::bottleneck() const
{
    if (per_class.empty())
        throw std::logic_error("ThroughputReport: empty report");
    const auto it = std::min_element(
        per_class.begin(), per_class.end(),
        [](const ThroughputEstimate& a, const ThroughputEstimate& b) {
            return a.capacity < b.capacity;
        });
    return it->bottleneck;
}

ThroughputReport
Model::throughput(const ExecutionGraph& graph, const TrafficProfile& traffic,
                  SolveScratch* scratch) const
{
    ThroughputReport report;
    const auto& classes = traffic.classes();
    const bool mixed = classes.size() > 1;
    for (std::size_t i = 0; i < classes.size(); ++i) {
        const TrafficProfile cp = mixed
            ? class_operating_profile(traffic, i)
            : traffic;
        // The scratch is keyed to the caller's graph; the per-class
        // queue-partitioned copies of a mixed profile must not use it.
        const ThroughputEstimate est = mixed
            ? estimate_throughput(
                  queue_partitioned_copy(graph, hw_, classes[i].weight), hw_,
                  cp)
            : estimate_throughput(graph, hw_, cp, 0, scratch);
        report.achieved += mixed
            ? est.achieved // per-class achieved already uses the BW share
            : est.achieved * classes[i].weight;
        report.per_class.push_back(est);
    }
    if (mixed) {
        report.capacity = mixed_capacity(report.per_class, classes);
        // The summed per-class goodputs each assumed the rest of the mix
        // was absent; the shared resources cap the total at the mixed
        // capacity.
        report.achieved = std::min(report.achieved, report.capacity);
    } else {
        report.capacity = report.per_class[0].capacity;
    }
    return report;
}

LatencyReport
Model::latency(const ExecutionGraph& graph, const TrafficProfile& traffic,
               SolveScratch* scratch) const
{
    LatencyReport report;
    const auto& classes = traffic.classes();
    const bool mixed = classes.size() > 1;
    double mean = 0.0;
    for (std::size_t i = 0; i < classes.size(); ++i) {
        const TrafficProfile cp = mixed
            ? class_operating_profile(traffic, i)
            : traffic;
        const LatencyEstimate est = mixed
            ? estimate_latency(
                  queue_partitioned_copy(graph, hw_, classes[i].weight), hw_,
                  cp)
            : estimate_latency(graph, hw_, cp, 0, scratch);
        mean += classes[i].weight * est.mean.seconds();
        report.max_drop_probability =
            std::max(report.max_drop_probability, est.max_drop_probability);
        report.per_class.push_back(est);
    }
    report.mean = Seconds{mean};
    return report;
}

Report
Model::estimate(const ExecutionGraph& graph, const TrafficProfile& traffic,
                SolveScratch* scratch) const
{
    return Report{throughput(graph, traffic, scratch),
                  latency(graph, traffic, scratch)};
}

} // namespace lognic::core
