#include "lognic/core/optimizer.hpp"

#include <limits>
#include <stdexcept>

#include "lognic/solver/nelder_mead.hpp"

namespace lognic::core {

namespace {

/// Scale objectives so the solvers see O(1)..O(100) magnitudes.
constexpr double kGbps = 1e9;
constexpr double kMicros = 1e-6;

} // namespace

double
Optimizer::objective_value(const Report& report, Objective obj) const
{
    switch (obj) {
      case Objective::kMaximizeThroughput:
        return -report.throughput.capacity.bits_per_sec() / kGbps;
      case Objective::kMinimizeLatency:
        return report.latency.mean.seconds() / kMicros;
    }
    throw std::logic_error("Optimizer: unknown objective");
}

OptimizationResult
Optimizer::optimize(const ContinuousProblem& problem) const
{
    if (!problem.apply)
        throw std::invalid_argument("Optimizer: missing apply callback");
    if (problem.x0.empty())
        throw std::invalid_argument("Optimizer: missing initial point");

    std::size_t evaluations = 0;
    auto evaluate = [&](const solver::Vector& x) -> Report {
        ++evaluations;
        ExecutionGraph g = problem.graph;
        TrafficProfile t = problem.traffic;
        problem.apply(g, t, x);
        return model_.estimate(g, t);
    };

    auto objective = [&](const solver::Vector& x) -> double {
        const Report r = evaluate(x);
        return problem.custom_objective
            ? problem.custom_objective(r)
            : objective_value(r, problem.objective);
    };

    OptimizationResult out;
    if (problem.constraints.empty()) {
        solver::NelderMeadOptions opts;
        opts.bounds = problem.bounds;
        const auto res = solver::nelder_mead(objective, problem.x0, opts);
        out.x = res.x;
        out.objective_value = res.value;
        out.feasible = true;
    } else {
        std::vector<solver::Constraint> cons;
        cons.reserve(problem.constraints.size());
        for (const auto& rc : problem.constraints) {
            cons.push_back(solver::Constraint{
                solver::Constraint::Type::kInequality,
                [&, rc](const solver::Vector& x) { return rc(evaluate(x)); }});
        }
        solver::ConstrainedOptions opts;
        opts.bounds = problem.bounds;
        const auto res =
            solver::minimize_constrained(objective, problem.x0, cons, opts);
        out.x = res.x;
        out.objective_value = res.value;
        out.feasible = res.feasible;
    }
    out.report = evaluate(out.x);
    out.evaluations = evaluations;
    return out;
}

OptimizationResult
Optimizer::optimize(const DiscreteProblem& problem) const
{
    if (!problem.apply)
        throw std::invalid_argument("Optimizer: missing apply callback");
    if (problem.ranges.empty())
        throw std::invalid_argument("Optimizer: missing ranges");

    std::size_t evaluations = 0;
    auto evaluate = [&](const solver::IntVector& x) -> Report {
        ++evaluations;
        ExecutionGraph g = problem.graph;
        TrafficProfile t = problem.traffic;
        problem.apply(g, t, x);
        return model_.estimate(g, t);
    };

    // Infeasible candidates get +inf so any feasible point beats them.
    auto objective = [&](const solver::IntVector& x) -> double {
        Report r;
        try {
            r = evaluate(x);
        } catch (const std::invalid_argument&) {
            return std::numeric_limits<double>::infinity();
        }
        for (const auto& rc : problem.constraints) {
            if (rc(r) > 0.0)
                return std::numeric_limits<double>::infinity();
        }
        return problem.custom_objective
            ? problem.custom_objective(r)
            : objective_value(r, problem.objective);
    };

    solver::IntSearchResult res;
    if (problem.exhaustive) {
        res = solver::exhaustive_search(objective, problem.ranges);
    } else {
        solver::IntVector x0 = problem.x0;
        if (x0.empty()) {
            x0.resize(problem.ranges.size());
            for (std::size_t i = 0; i < x0.size(); ++i)
                x0[i] = problem.ranges[i].lo;
        }
        res = solver::coordinate_descent(objective, std::move(x0),
                                         problem.ranges);
    }

    OptimizationResult out;
    out.xi = res.x;
    out.objective_value = res.value;
    out.feasible = std::isfinite(res.value);
    if (out.feasible)
        out.report = evaluate(res.x);
    out.evaluations = evaluations;
    return out;
}

SatisficeResult
Optimizer::satisfice(const SatisficeProblem& problem) const
{
    if (!problem.apply)
        throw std::invalid_argument("Optimizer: missing apply callback");
    if (problem.ranges.empty())
        throw std::invalid_argument("Optimizer: missing ranges");
    if (problem.goals.empty())
        throw std::invalid_argument("Optimizer: missing goals");

    SatisficeResult out;
    out.slack.assign(problem.goals.size(), 0.0);

    for (std::size_t round = 0; round <= problem.max_relax_rounds;
         ++round) {
        // One discrete optimization pass with the (possibly relaxed)
        // goals encoded as hard constraints.
        DiscreteProblem pass;
        pass.graph = problem.graph;
        pass.traffic = problem.traffic;
        pass.apply = problem.apply;
        pass.objective = problem.objective;
        pass.ranges = problem.ranges;
        for (std::size_t g = 0; g < problem.goals.size(); ++g) {
            const double slack = out.slack[g];
            const auto& goal = problem.goals[g];
            pass.constraints.push_back(
                [&goal, slack](const Report& r) {
                    return goal.requirement(r) - slack;
                });
        }

        const OptimizationResult res = optimize(pass);
        out.evaluations += res.evaluations;
        if (res.feasible) {
            out.xi = res.xi;
            out.report = res.report;
            out.satisfied = true;
            out.relax_rounds_used = round;
            return out;
        }

        // Relax every goal that allows it; if nothing can relax, stop.
        bool relaxed_any = false;
        for (std::size_t g = 0; g < problem.goals.size(); ++g) {
            if (problem.goals[g].relax_step > 0.0) {
                out.slack[g] += problem.goals[g].relax_step;
                relaxed_any = true;
            }
        }
        if (!relaxed_any)
            break;
    }
    return out;
}

} // namespace lognic::core
