#include "lognic/ssd/ssd_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "lognic/queueing/mm1n.hpp"

namespace lognic::ssd {

SsdGroundTruth::SsdGroundTruth(SsdSpec spec) : spec_(spec)
{
    if (spec_.parallelism == 0)
        throw std::invalid_argument("SsdGroundTruth: need >= 1 channel");
    if (spec_.fragmented_waf < 1.0)
        throw std::invalid_argument("SsdGroundTruth: WAF must be >= 1");
}

Seconds
SsdGroundTruth::pure_occupancy(const traffic::IoWorkload& w, bool read) const
{
    const Bandwidth bw =
        read ? spec_.channel_read_bw : spec_.channel_write_bw;
    Seconds t = (read ? spec_.read_fixed : spec_.write_fixed)
        + w.block_size / bw;
    if (w.random)
        t += spec_.random_penalty;
    return t;
}

Seconds
SsdGroundTruth::mean_occupancy(const traffic::IoWorkload& w) const
{
    const double r = w.read_fraction;
    const double write_share = 1.0 - r;

    // Effective write amplification: a fragmented drive pays the full WAF
    // on a pure random-write workload, but when reads are interleaved the
    // GC engine overlaps relocation with read-induced channel idle gaps.
    // The overlap benefit peaks in balanced mixes (4*r*(1-r) is 1 at
    // r = 0.5 and 0 at both endpoints, so pure-workload calibration
    // points are unaffected).
    double waf = w.random ? spec_.fragmented_waf : 1.0;
    if (waf > 1.0 && write_share > 0.0 && r > 0.0) {
        const double overlap =
            spec_.gc_overlap_gain * 4.0 * r * write_share;
        waf = 1.0 + (waf - 1.0) / (1.0 + overlap);
    }

    const double read_cost = pure_occupancy(w, true).seconds();
    const double write_cost = pure_occupancy(w, false).seconds() * waf;
    return Seconds{r * read_cost + write_share * write_cost};
}

Seconds
SsdGroundTruth::base_latency(const traffic::IoWorkload& w) const
{
    const double read_lat = spec_.read_latency_fixed.seconds()
        + (w.block_size / spec_.channel_read_bw).seconds();
    const double write_lat = spec_.write_latency_fixed.seconds()
        + (w.block_size / spec_.channel_write_bw).seconds();
    const double pipeline = w.read_fraction * read_lat
        + (1.0 - w.read_fraction) * write_lat;
    // A command cannot complete before its data has streamed through a
    // channel (including the GC share it queues behind).
    return Seconds{std::max(pipeline, mean_occupancy(w).seconds())};
}

Bandwidth
SsdGroundTruth::capacity(const traffic::IoWorkload& w) const
{
    const Seconds per_io = mean_occupancy(w);
    const double iops =
        static_cast<double>(spec_.parallelism) / per_io.seconds();
    return Bandwidth::from_bytes_per_sec(iops * w.block_size.bytes());
}

std::vector<SsdGroundTruth::Sample>
SsdGroundTruth::characterize(const traffic::IoWorkload& workload,
                             std::size_t points,
                             double max_load_fraction) const
{
    if (points < 2)
        throw std::invalid_argument("characterize: need >= 2 points");
    if (max_load_fraction <= 0.0 || max_load_fraction >= 1.0)
        throw std::invalid_argument(
            "characterize: load fraction must be in (0, 1)");

    const Seconds occupancy = mean_occupancy(workload);
    const Seconds base = base_latency(workload);
    const double mu = 1.0 / occupancy.seconds();
    const double c = static_cast<double>(spec_.parallelism);

    std::vector<Sample> samples;
    samples.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double frac = 0.05
            + (max_load_fraction - 0.05) * static_cast<double>(i)
                / static_cast<double>(points - 1);
        const double lambda = frac * c * mu;
        Sample sample;
        sample.offered = OpsRate{lambda};
        sample.achieved = OpsRate{std::min(lambda, max_load_fraction * c * mu)};
        const queueing::MmcQueue q(std::min(lambda, 0.999 * c * mu), mu,
                                   spec_.parallelism);
        sample.latency = Seconds{base.seconds() + q.mean_queueing_delay()};
        samples.push_back(sample);
    }
    return samples;
}

} // namespace lognic::ssd
