#include "lognic/ssd/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lognic/calib/calibrator.hpp"
#include "lognic/queueing/mm1n.hpp"

namespace lognic::ssd {

namespace {

/**
 * Predicted mean latency for occupancy @p s, parallelism @p c (treated as
 * continuous during fitting by interpolating the two neighbouring integer
 * channel counts), base latency @p base, and offered rate @p lambda.
 */
double
predict(double s, double c, double base, double lambda)
{
    const double mu = 1.0 / s;
    auto wait_at = [&](std::uint32_t ci) {
        const double cap = 0.999 * static_cast<double>(ci) * mu;
        const queueing::MmcQueue q(std::min(lambda, cap), mu, ci);
        return q.mean_queueing_delay();
    };
    const double lo = std::max(1.0, std::floor(c));
    const double hi = lo + 1.0;
    const double frac = std::clamp(c - lo, 0.0, 1.0);
    const double wq = (1.0 - frac) * wait_at(static_cast<std::uint32_t>(lo))
        + frac * wait_at(static_cast<std::uint32_t>(hi));
    return base + wq;
}

} // namespace

Seconds
CalibratedSsd::predict_latency(OpsRate offered) const
{
    return Seconds{predict(service_time.seconds(),
                           static_cast<double>(parallelism),
                           base_latency.seconds(), offered.per_sec())};
}

Seconds
CalibratedSsd::extra_latency() const
{
    return Seconds{
        std::max(0.0, base_latency.seconds() - service_time.seconds())};
}

core::IpSpec
CalibratedSsd::to_ip_spec(const std::string& name, Bytes block,
                          std::uint32_t queue_capacity) const
{
    // One engine's per-request time must equal the fitted occupancy at the
    // workload's block size; express it as pure byte-rate service.
    core::ServiceModel engine;
    engine.fixed_cost = Seconds{0.0};
    engine.byte_rate = block / service_time;

    core::IpSpec spec;
    spec.name = name;
    spec.kind = core::IpKind::kStorage;
    spec.roofline = core::ExtendedRoofline(engine, {});
    spec.max_engines = parallelism;
    spec.default_queue_capacity = queue_capacity;
    // The S4.7 curve-fitting escape hatch: the latency model uses the
    // fitted sojourn curve instead of Eq. 9-12 for this opaque IP.
    const CalibratedSsd snapshot = *this;
    spec.sojourn_curve = [snapshot](double lambda) {
        return snapshot.predict_latency(OpsRate{lambda});
    };
    return spec;
}

CalibratedSsd
calibrate(const std::vector<SsdGroundTruth::Sample>& samples, Bytes block)
{
    if (samples.size() < 3)
        throw std::invalid_argument("calibrate: need >= 3 samples");

    // Initial guesses: base latency from the lowest-load sample;
    // occupancy from the knee (capacity) at the highest achieved rate,
    // assuming a moderate channel count to start.
    const double base0 = samples.front().latency.seconds();
    double max_rate = 0.0;
    for (const auto& sm : samples)
        max_rate = std::max(max_rate, sm.achieved.per_sec());
    const double c0 = 8.0;
    const double s0 = std::max(1e-7, c0 / (max_rate / 0.95));

    // Stage 1 delegates to the generic calib engine: same LM backend as
    // before, plus bounded multi-start (guards against the occasional bad
    // knee-derived initial guess) and eval memoization. The channel count
    // is continuous here.
    calib::FitProblem problem;
    problem.residuals = [samples](const solver::Vector& x) {
        const double s = x[0];
        const double c = x[1];
        const double base = x[2];
        solver::Vector r(samples.size());
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const double pred =
                predict(s, c, base, samples[i].offered.per_sec());
            // Relative residuals weight the low-latency knee region fairly.
            r[i] = (pred - samples[i].latency.seconds())
                / samples[i].latency.seconds();
        }
        return r;
    };
    problem.x0 = {s0, c0, base0};
    problem.bounds.lower = {1e-7, 1.0, 0.0};
    problem.bounds.upper = {1.0, 64.0, 1.0};

    calib::FitOptions options;
    options.backend = calib::Backend::kLeastSquares;
    options.starts = 3;
    const calib::FitOutcome fit = calib::fit_residuals(problem, options);

    // Stage 2: predict_latency runs at an *integer* channel count, so
    // refit (s, base) with c pinned at the rounded value — rounding c
    // alone would corrupt the knee, since (c, s) are only identified
    // jointly through c / s.
    const double c_int = std::max(1.0, std::floor(fit.x[1] + 0.5));
    calib::FitProblem restricted;
    restricted.residuals = [samples, c_int](const solver::Vector& x) {
        solver::Vector r(samples.size());
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const double pred =
                predict(x[0], c_int, x[1], samples[i].offered.per_sec());
            r[i] = (pred - samples[i].latency.seconds())
                / samples[i].latency.seconds();
        }
        return r;
    };
    // Preserve the well-determined knee c / s across the rounding.
    restricted.x0 = {fit.x[0] * c_int / fit.x[1], fit.x[2]};
    restricted.bounds.lower = {1e-7, 0.0};
    restricted.bounds.upper = {1.0, 1.0};
    calib::FitOptions polish = options;
    polish.starts = 1;
    const calib::FitOutcome refit =
        calib::fit_residuals(restricted, polish);

    CalibratedSsd out;
    out.service_time = Seconds{refit.x[0]};
    out.parallelism = static_cast<std::uint32_t>(c_int);
    out.base_latency = Seconds{refit.x[1]};

    double sse = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double pred = predict(refit.x[0], c_int, refit.x[1],
                                    samples[i].offered.per_sec());
        const double err = pred - samples[i].latency.seconds();
        sse += err * err;
    }
    out.fit_rmse = std::sqrt(sse / static_cast<double>(samples.size()));
    // Capacity uses stage 1's *continuous* channel-count estimate: c / s
    // is the best-determined quantity of the fit, and rounding would
    // perturb it.
    out.capacity = Bandwidth::from_bytes_per_sec(
        fit.x[1] * block.bytes() / fit.x[0]);
    return out;
}

} // namespace lognic::ssd
