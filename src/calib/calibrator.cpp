#include "lognic/calib/calibrator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "lognic/io/serialize.hpp"
#include "lognic/runner/seed.hpp"
#include "lognic/runner/thread_pool.hpp"
#include "lognic/solver/annealing.hpp"
#include "lognic/solver/least_squares.hpp"
#include "lognic/solver/nelder_mead.hpp"

namespace lognic::calib {

const char*
to_string(Backend backend)
{
    switch (backend) {
    case Backend::kLeastSquares:
        return "least_squares";
    case Backend::kNelderMead:
        return "nelder_mead";
    case Backend::kAnnealing:
        return "annealing";
    }
    return "unknown";
}

Backend
backend_from_string(const std::string& name)
{
    if (name == "least_squares")
        return Backend::kLeastSquares;
    if (name == "nelder_mead")
        return Backend::kNelderMead;
    if (name == "annealing")
        return Backend::kAnnealing;
    throw std::invalid_argument("calib: unknown backend '" + name + "'");
}

std::uint64_t
FitOutcome::cache_hits() const
{
    std::uint64_t n = 0;
    for (const auto& s : starts)
        n += s.cache_hits;
    return n;
}

std::uint64_t
FitOutcome::cache_misses() const
{
    std::uint64_t n = 0;
    for (const auto& s : starts)
        n += s.cache_misses;
    return n;
}

std::uint64_t
FitOutcome::model_solves() const
{
    std::uint64_t n = 0;
    for (const auto& s : starts)
        n += s.model_solves;
    return n;
}

namespace {

/// Uniform double in [0, 1) from (seed, index), platform-stable.
double
uniform01(std::uint64_t seed, std::uint64_t index)
{
    // 53 mantissa bits of a derived 64-bit value.
    return static_cast<double>(runner::derive_seed(seed, index) >> 11)
        * (1.0 / 9007199254740992.0); // 2^53
}

/// Per-dimension magnitude floor for FD steps and random-start spreads.
solver::Vector
effective_scales(const FitProblem& problem)
{
    const std::size_t n = problem.x0.size();
    if (!problem.scales.empty()) {
        if (problem.scales.size() != n)
            throw std::invalid_argument(
                "fit_residuals: scales/x0 size mismatch");
        return problem.scales;
    }
    solver::Vector s(n);
    for (std::size_t i = 0; i < n; ++i) {
        double span = 0.0;
        if (problem.bounds.lower.size() == n
            && problem.bounds.upper.size() == n
            && std::isfinite(problem.bounds.lower[i])
            && std::isfinite(problem.bounds.upper[i]))
            span = (problem.bounds.upper[i] - problem.bounds.lower[i])
                / 1000.0;
        s[i] = std::max({std::abs(problem.x0[i]), span, 1e-8});
    }
    return s;
}

/// Starting point for multi-start index @p k (0 = the caller's x0).
solver::Vector
start_point(const FitProblem& problem, const solver::Vector& scales,
            std::size_t k, std::uint64_t start_seed)
{
    if (k == 0)
        return problem.x0;
    const std::size_t n = problem.x0.size();
    solver::Vector x(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double u = uniform01(start_seed, i);
        const bool boxed = problem.bounds.lower.size() == n
            && problem.bounds.upper.size() == n
            && std::isfinite(problem.bounds.lower[i])
            && std::isfinite(problem.bounds.upper[i]);
        if (boxed) {
            x[i] = problem.bounds.lower[i]
                + u * (problem.bounds.upper[i] - problem.bounds.lower[i]);
        } else {
            // Unbounded dimension: spread around x0 by its scale.
            x[i] = problem.x0[i] + (2.0 * u - 1.0) * 2.0 * scales[i];
        }
    }
    return problem.bounds.clamp(std::move(x));
}

/// Run one multi-start attempt (owns its cache; pure in its index).
StartRecord
run_start(const FitProblem& problem, const FitOptions& options,
          const solver::Vector& scales, std::size_t k)
{
    StartRecord out;
    out.outcome.index = k;
    out.outcome.seed = runner::derive_seed(options.seed, k);

    CachedResiduals cached(problem.residuals, options.cache_capacity);
    const auto eval = [&cached](const solver::Vector& x) {
        return cached(x);
    };
    const auto objective = [&cached](const solver::Vector& x) {
        return total_loss(cached(x));
    };

    try {
        const solver::Vector x0 =
            start_point(problem, scales, k, out.outcome.seed);
        // Prime the cache with the starting point: the solver's own first
        // evaluation of x0 is then a guaranteed hit, and initial_loss is
        // recorded even if the solve later throws.
        out.outcome.initial_loss = total_loss(cached(x0));

        solver::Vector best;
        switch (options.backend) {
        case Backend::kLeastSquares: {
            solver::LeastSquaresOptions ls;
            ls.max_iterations = options.max_iterations;
            ls.bounds = problem.bounds;
            ls.scales = scales;
            const auto fit = solver::levenberg_marquardt(eval, x0, ls);
            best = fit.x;
            out.outcome.converged = fit.converged;
            out.outcome.message = fit.message;
            out.outcome.iterations = fit.iterations;
            break;
        }
        case Backend::kNelderMead: {
            solver::NelderMeadOptions nm;
            // Simplex iterations are one or two evaluations each, far
            // cheaper than an LM iteration (n FD probes): give it room.
            nm.max_iterations = options.max_iterations * 10;
            nm.bounds = problem.bounds;
            const auto fit = solver::nelder_mead(objective, x0, nm);
            best = fit.x;
            out.outcome.converged = fit.converged;
            out.outcome.message = fit.message;
            out.outcome.iterations = fit.iterations;
            break;
        }
        case Backend::kAnnealing: {
            const std::size_t n = x0.size();
            if (problem.bounds.lower.size() != n
                || problem.bounds.upper.size() != n)
                throw std::invalid_argument(
                    "annealing backend needs finite bounds on every "
                    "dimension");
            // Discretize the box to a 1000-step grid per dimension,
            // anneal over the grid, then polish the best cell's center
            // with Nelder-Mead.
            constexpr std::int64_t kGrid = 1000;
            const auto to_x = [&](const solver::IntVector& g) {
                solver::Vector x(n);
                for (std::size_t i = 0; i < n; ++i) {
                    const double t =
                        static_cast<double>(g[i]) / kGrid;
                    x[i] = problem.bounds.lower[i]
                        + t
                            * (problem.bounds.upper[i]
                               - problem.bounds.lower[i]);
                }
                return x;
            };
            std::vector<solver::IntRange> ranges(
                n, solver::IntRange{0, kGrid, 1});
            solver::IntVector g0(n);
            for (std::size_t i = 0; i < n; ++i) {
                const double span = problem.bounds.upper[i]
                    - problem.bounds.lower[i];
                const double t = span > 0.0
                    ? (x0[i] - problem.bounds.lower[i]) / span
                    : 0.0;
                g0[i] = std::clamp<std::int64_t>(
                    std::llround(t * kGrid), 0, kGrid);
            }
            solver::AnnealingOptions an;
            an.iterations = options.max_iterations * 10;
            an.seed = runner::derive_seed(out.outcome.seed, 1);
            const auto coarse = solver::simulated_annealing(
                [&](const solver::IntVector& g) {
                    return objective(to_x(g));
                },
                std::move(g0), ranges, an);
            solver::NelderMeadOptions nm;
            nm.max_iterations = options.max_iterations * 10;
            nm.bounds = problem.bounds;
            const auto polish =
                solver::nelder_mead(objective, to_x(coarse.x), nm);
            best = polish.x;
            out.outcome.converged = polish.converged;
            out.outcome.message = "annealed (" + std::to_string(an.iterations)
                + " moves), then " + polish.message;
            out.outcome.iterations = polish.iterations;
            break;
        }
        }

        // Re-read the incumbent through the cache: a hit (the solver
        // evaluated it), and it pins the reported loss to the reported x.
        out.residuals = cached(best);
        out.outcome.final_loss = total_loss(out.residuals);
        out.x = std::move(best);
    } catch (const std::exception& e) {
        out.outcome.failed = true;
        out.outcome.message = e.what();
        out.outcome.final_loss =
            std::numeric_limits<double>::infinity();
    }
    out.outcome.model_solves = cached.underlying_evaluations();
    out.outcome.cache_hits = cached.stats().hits;
    out.outcome.cache_misses = cached.stats().misses;
    out.convergence = cached.convergence();
    return out;
}

} // namespace

FitOutcome
fit_residuals(const FitProblem& problem, const FitOptions& options)
{
    if (!problem.residuals)
        throw std::invalid_argument("fit_residuals: missing residual fn");
    if (problem.x0.empty())
        throw std::invalid_argument("fit_residuals: empty x0");
    if (options.starts == 0)
        throw std::invalid_argument("fit_residuals: zero starts");
    // Fail fast on a structurally unusable problem instead of letting
    // every start die on the same error inside run_guarded.
    if (options.backend == Backend::kAnnealing
        && (problem.bounds.lower.size() != problem.x0.size()
            || problem.bounds.upper.size() != problem.x0.size()))
        throw std::invalid_argument(
            "fit_residuals: the annealing backend needs finite bounds on "
            "every dimension");

    const solver::Vector scales = effective_scales(problem);

    // Fan the starts across the runner. Results land keyed by index and
    // every start owns its state, so the outcome is independent of the
    // thread count (run_guarded semantics: a throwing start becomes a
    // failed record, not a lost calibration).
    std::vector<StartRecord> results(options.starts);
    runner::parallel_for(options.starts, options.threads,
                         [&](std::size_t k) {
                             if (options.resume_lookup
                                 && options.resume_lookup(k, results[k]))
                                 return; // journaled: replay verbatim
                             results[k] =
                                 run_start(problem, options, scales, k);
                             if (options.on_start_complete)
                                 options.on_start_complete(k, results[k]);
                         });

    FitOutcome outcome;
    outcome.starts.reserve(results.size());
    for (auto& r : results)
        outcome.starts.push_back(r.outcome);

    // Winner: lowest loss among non-failed starts, ties to the lower
    // index (the std::min_element scan is left-biased).
    const StartRecord* best = nullptr;
    for (const auto& r : results) {
        if (r.outcome.failed)
            continue;
        if (best == nullptr
            || r.outcome.final_loss < best->outcome.final_loss)
            best = &r;
    }
    if (best == nullptr) {
        throw std::runtime_error(
            "fit_residuals: every start failed; first error: "
            + results.front().outcome.message);
    }

    outcome.x = best->x;
    outcome.loss = best->outcome.final_loss;
    outcome.converged = best->outcome.converged;
    outcome.message = best->outcome.message;
    outcome.convergence = best->convergence;
    outcome.residuals = best->residuals;
    return outcome;
}

// --- the model-aware calibrator -----------------------------------------------

namespace {

/// Observed-vs-predicted records for every observation in @p data.
std::vector<ResidualRecord>
residual_records(const Candidate& fitted, const Dataset& data,
                 bool holdout)
{
    std::vector<ResidualRecord> records;
    records.reserve(data.size());
    for (const auto& obs : data.observations()) {
        const Prediction pred = predict(fitted, obs);
        ResidualRecord rec;
        rec.label = obs.label;
        rec.holdout = holdout;
        rec.observed_throughput_gbps = obs.throughput.gbps();
        rec.predicted_throughput_gbps = pred.throughput.gbps();
        rec.throughput_rel_error = obs.throughput.gbps() != 0.0
            ? (pred.throughput.gbps() - obs.throughput.gbps())
                / obs.throughput.gbps()
            : 0.0;
        rec.observed_latency_us = obs.mean_latency.micros();
        rec.predicted_latency_us = pred.mean_latency.micros();
        rec.latency_rel_error = obs.mean_latency.micros() != 0.0
            ? (pred.mean_latency.micros() - obs.mean_latency.micros())
                / obs.mean_latency.micros()
            : 0.0;
        records.push_back(rec);
    }
    return records;
}

FitError
fit_error(const std::vector<ResidualRecord>& records)
{
    FitError err;
    err.observations = records.size();
    if (records.empty())
        return err;
    for (const auto& rec : records) {
        const double t = std::abs(rec.throughput_rel_error);
        err.throughput += t;
        err.latency += std::abs(rec.latency_rel_error);
        err.worst_throughput = std::max(err.worst_throughput, t);
    }
    err.throughput /= static_cast<double>(records.size());
    err.latency /= static_cast<double>(records.size());
    return err;
}

/// Mean absolute relative throughput error of @p fitted on @p data.
double
mean_throughput_error(const Candidate& fitted, const Dataset& data)
{
    return fit_error(residual_records(fitted, data, false)).throughput;
}

/**
 * Identifiability analysis at the fitted point: a scale-aware FD Jacobian
 * of the training residuals, then flag (a) columns with negligible norm
 * (the data does not move with the parameter), (b) column pairs that are
 * nearly parallel (only their combination is constrained), and (c)
 * parameters the fit pushed onto a bound face.
 */
std::vector<IdentifiabilityWarning>
identifiability(const ParameterSpace& space, const solver::VectorFn& fn,
                const solver::Vector& x, const solver::Vector& residuals)
{
    std::vector<IdentifiabilityWarning> warnings;
    const std::size_t n = x.size();
    const std::size_t m = residuals.size();
    const solver::Vector scales = space.scales();
    const solver::Bounds bounds = space.bounds();

    // Jacobian columns, one forward-difference probe per parameter.
    std::vector<solver::Vector> cols(n);
    std::vector<double> norms(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
        const double h =
            1e-6 * std::max(std::abs(x[j]), scales[j]);
        solver::Vector xp = x;
        xp[j] += h;
        const solver::Vector rp = fn(xp);
        cols[j].resize(m);
        for (std::size_t i = 0; i < m; ++i) {
            cols[j][i] = (rp[i] - residuals[i]) / h;
            norms[j] += cols[j][i] * cols[j][i];
        }
        norms[j] = std::sqrt(norms[j]);
    }
    const double max_norm =
        *std::max_element(norms.begin(), norms.end());

    for (std::size_t j = 0; j < n; ++j) {
        const auto& p = space.parameter(j);
        // Sensitivity is scale-free already (the probe is relative), so
        // compare columns against the strongest one.
        if (max_norm > 0.0 && norms[j] < 1e-4 * max_norm) {
            IdentifiabilityWarning w;
            w.parameter = p.name;
            w.kind = "insensitive";
            w.metric = max_norm > 0.0 ? norms[j] / max_norm : 0.0;
            w.detail = "residuals barely respond to this parameter "
                       "(sensitivity "
                + std::to_string(w.metric)
                + " of the strongest column); the data cannot pin it "
                  "down";
            warnings.push_back(std::move(w));
        }
        const double span = bounds.upper[j] - bounds.lower[j];
        const double slack = std::min(x[j] - bounds.lower[j],
                                      bounds.upper[j] - x[j]);
        if (span > 0.0 && slack < 1e-6 * span) {
            IdentifiabilityWarning w;
            w.parameter = p.name;
            w.kind = "at_bound";
            w.metric = x[j];
            w.detail =
                "fit pushed the parameter onto a bound face; widen the "
                "box or drop the parameter";
            warnings.push_back(std::move(w));
        }
    }

    // Pairwise near-collinearity among the informative columns.
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            if (norms[a] <= 0.0 || norms[b] <= 0.0)
                continue;
            if (max_norm > 0.0
                && (norms[a] < 1e-4 * max_norm
                    || norms[b] < 1e-4 * max_norm))
                continue; // already flagged insensitive
            double dot = 0.0;
            for (std::size_t i = 0; i < m; ++i)
                dot += cols[a][i] * cols[b][i];
            const double cosine =
                std::abs(dot) / (norms[a] * norms[b]);
            if (cosine > 0.999) {
                IdentifiabilityWarning w;
                w.parameter = space.parameter(a).name;
                w.kind = "collinear";
                w.metric = cosine;
                w.detail = "nearly indistinguishable from '"
                    + space.parameter(b).name + "' (|cosine| "
                    + std::to_string(cosine)
                    + "); only their combination is constrained";
                warnings.push_back(std::move(w));
            }
        }
    }
    return warnings;
}

} // namespace

Calibrator::Calibrator(ParameterSpace space, Dataset data,
                       CalibratorOptions opts)
    : space_(std::move(space)), data_(std::move(data)),
      opts_(std::move(opts))
{
    if (space_.size() == 0)
        throw std::invalid_argument("Calibrator: empty parameter space");
    if (data_.empty())
        throw std::invalid_argument("Calibrator: empty dataset");
    for (const auto& obs : data_.observations()) {
        if (obs.graph_index >= space_.base().graphs.size())
            throw std::invalid_argument(
                "Calibrator: observation '" + obs.label
                + "' references graph "
                + std::to_string(obs.graph_index) + " but the candidate "
                + "has " + std::to_string(space_.base().graphs.size()));
    }
    if (opts_.k_folds == 1)
        throw std::invalid_argument(
            "Calibrator: k_folds must be 0 (off) or >= 2");
}

CalibrationReport
Calibrator::fit(obs::MetricsRegistry* metrics) const
{
    auto [train, holdout] =
        data_.split(opts_.holdout_fraction, opts_.fit.seed);

    FitProblem problem;
    problem.residuals = make_residual_fn(space_, train, opts_.loss);
    problem.x0 = space_.initial();
    problem.bounds = space_.bounds();
    problem.scales = space_.scales();

    const FitOutcome outcome = fit_residuals(problem, opts_.fit);
    const Candidate fitted = space_.apply(outcome.x);

    CalibrationReport report;
    report.device = space_.base().hw.name();
    report.backend = to_string(opts_.fit.backend);
    report.seed = opts_.fit.seed;
    report.starts = opts_.fit.starts;
    report.parameter_names.reserve(space_.size());
    for (std::size_t i = 0; i < space_.size(); ++i)
        report.parameter_names.push_back(space_.parameter(i).name);
    report.initial = problem.x0;
    report.fitted = outcome.x;
    report.lower = problem.bounds.lower;
    report.upper = problem.bounds.upper;
    report.initial_loss = outcome.starts.front().initial_loss;
    report.best_loss = outcome.loss;
    report.converged = outcome.converged;
    report.message = outcome.message;
    report.start_outcomes = outcome.starts;
    report.cache_hits = outcome.cache_hits();
    report.cache_misses = outcome.cache_misses();
    report.model_solves = outcome.model_solves();
    report.convergence = outcome.convergence;

    report.residuals = residual_records(fitted, train, false);
    report.train_error = fit_error(report.residuals);
    const auto holdout_records =
        residual_records(fitted, holdout, true);
    report.holdout_error = fit_error(holdout_records);
    report.residuals.insert(report.residuals.end(),
                            holdout_records.begin(),
                            holdout_records.end());

    report.warnings = identifiability(space_, problem.residuals,
                                      outcome.x, outcome.residuals);

    // k-fold cross-validation over the training set, fanned across the
    // runner: fold f refits on train-minus-fold and validates on the
    // fold. Each fold derives its own seed, so results are
    // thread-count-independent.
    if (opts_.k_folds >= 2) {
        const auto folds =
            train.k_folds(opts_.k_folds,
                          runner::derive_seed(opts_.fit.seed, 7777));
        std::vector<FoldOutcome> fold_outcomes(folds.size());
        runner::parallel_for(
            folds.size(), opts_.fit.threads, [&](std::size_t f) {
                FoldOutcome fo;
                fo.fold = f;
                try {
                    FitProblem fp;
                    fp.residuals = make_residual_fn(
                        space_, folds[f].first, opts_.loss);
                    fp.x0 = problem.x0;
                    fp.bounds = problem.bounds;
                    fp.scales = problem.scales;
                    FitOptions fopt = opts_.fit;
                    // The fold fit runs inside this parallel_for; its own
                    // fan-out must stay serial. Checkpoint hooks apply to
                    // top-level starts only — a fold's inner starts must
                    // never read or write the top-level journal.
                    fopt.threads = 1;
                    fopt.seed = runner::derive_seed(opts_.fit.seed,
                                                    10'000 + f);
                    fopt.resume_lookup = {};
                    fopt.on_start_complete = {};
                    const FitOutcome fold_fit =
                        fit_residuals(fp, fopt);
                    const Candidate fold_candidate =
                        space_.apply(fold_fit.x);
                    fo.train_error = mean_throughput_error(
                        fold_candidate, folds[f].first);
                    fo.validation_error = mean_throughput_error(
                        fold_candidate, folds[f].second);
                } catch (const std::exception& e) {
                    fo.failed = true;
                    fo.message = e.what();
                }
                fold_outcomes[f] = std::move(fo);
            });
        report.folds = std::move(fold_outcomes);
    }

    report.fitted_hardware = io::to_json(fitted.hw);

    if (metrics != nullptr) {
        metrics->counter("calib.model_solves").add(report.model_solves);
        metrics->counter("calib.cache.hits").add(report.cache_hits);
        metrics->counter("calib.cache.misses").add(report.cache_misses);
        metrics->counter("calib.starts").add(report.starts);
        metrics->counter("calib.warnings")
            .add(report.warnings.size());
        metrics->gauge("calib.loss.initial").set(report.initial_loss);
        metrics->gauge("calib.loss.best").set(report.best_loss);
        metrics->gauge("calib.error.train.throughput")
            .set(report.train_error.throughput);
        metrics->gauge("calib.error.holdout.throughput")
            .set(report.holdout_error.throughput);
        auto& hist = metrics->histogram(
            "calib.residual.abs_rel_throughput_error",
            {0.01, 0.02, 0.05, 0.1, 0.2, 0.5});
        for (const auto& rec : report.residuals)
            hist.record(std::abs(rec.throughput_rel_error));
        // The convergence trace, as a monotone gauge series.
        metrics->gauge("calib.convergence.evaluations")
            .set(static_cast<double>(report.convergence.size()));
        if (!report.convergence.empty())
            metrics->gauge("calib.convergence.final")
                .set(report.convergence.back());
    }

    return report;
}

} // namespace lognic::calib
