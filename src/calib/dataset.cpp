#include "lognic/calib/dataset.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "lognic/io/serialize.hpp"
#include "lognic/runner/replicator.hpp"
#include "lognic/runner/seed.hpp"
#include "lognic/runner/thread_pool.hpp"

namespace lognic::calib {

io::Json
to_json(const Observation& obs)
{
    io::Json j;
    j.set("label", obs.label);
    j.set("graph_index", static_cast<double>(obs.graph_index));
    j.set("traffic", io::to_json(obs.traffic));
    j.set("throughput_gbps", obs.throughput.gbps());
    j.set("mean_latency_us", obs.mean_latency.micros());
    j.set("p99_latency_us", obs.p99_latency.micros());
    j.set("weight", obs.weight);
    return j;
}

Observation
observation_from_json(const io::Json& j)
{
    Observation obs;
    if (j.contains("label"))
        obs.label = j.at("label").as_string();
    obs.graph_index =
        static_cast<std::size_t>(j.number_or("graph_index", 0.0));
    obs.traffic = io::traffic_from_json(j.at("traffic"));
    obs.throughput =
        Bandwidth::from_gbps(j.at("throughput_gbps").as_number());
    obs.mean_latency =
        Seconds::from_micros(j.number_or("mean_latency_us", 0.0));
    obs.p99_latency =
        Seconds::from_micros(j.number_or("p99_latency_us", 0.0));
    obs.weight = j.number_or("weight", 1.0);
    if (obs.throughput.bits_per_sec() < 0.0
        || obs.mean_latency.seconds() < 0.0 || obs.weight <= 0.0)
        throw std::runtime_error(
            "observation: negative measurement or non-positive weight");
    return obs;
}

std::size_t
Dataset::add(Observation obs)
{
    observations_.push_back(std::move(obs));
    return observations_.size() - 1;
}

std::pair<Dataset, Dataset>
Dataset::split(double holdout_fraction, std::uint64_t seed) const
{
    if (holdout_fraction < 0.0 || holdout_fraction >= 1.0)
        throw std::invalid_argument(
            "Dataset::split: holdout fraction must be in [0, 1)");
    Dataset train;
    Dataset holdout;
    // Threshold on a per-index hash: membership depends only on
    // (seed, index), so adding observations never reshuffles earlier
    // assignments.
    const auto threshold = static_cast<std::uint64_t>(
        holdout_fraction * 18446744073709551615.0); // 2^64 - 1
    for (std::size_t i = 0; i < observations_.size(); ++i) {
        if (runner::derive_seed(seed, i) < threshold)
            holdout.add(observations_[i]);
        else
            train.add(observations_[i]);
    }
    if (train.empty() && !holdout.empty()) {
        // Degenerate draw: keep at least one training point.
        train.add(holdout.observations().front());
        Dataset rest;
        for (std::size_t i = 1; i < holdout.size(); ++i)
            rest.add(holdout.observation(i));
        holdout = std::move(rest);
    }
    return {std::move(train), std::move(holdout)};
}

std::vector<std::pair<Dataset, Dataset>>
Dataset::k_folds(std::size_t k, std::uint64_t seed) const
{
    if (k < 2 || k > observations_.size())
        throw std::invalid_argument(
            "Dataset::k_folds: need 2 <= k <= size()");
    // Seeded Fisher-Yates permutation, then deal round-robin into folds.
    std::vector<std::size_t> order(observations_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (std::size_t i = order.size() - 1; i > 0; --i) {
        const std::size_t pick =
            runner::derive_seed(seed, i) % (i + 1);
        std::swap(order[i], order[pick]);
    }
    std::vector<std::size_t> fold_of(observations_.size());
    for (std::size_t pos = 0; pos < order.size(); ++pos)
        fold_of[order[pos]] = pos % k;

    std::vector<std::pair<Dataset, Dataset>> folds(k);
    // Dataset order is preserved within each fold (iteration is by
    // original index), so fold contents are independent of the shuffle's
    // visit order.
    for (std::size_t f = 0; f < k; ++f) {
        for (std::size_t i = 0; i < observations_.size(); ++i) {
            if (fold_of[i] == f)
                folds[f].second.add(observations_[i]);
            else
                folds[f].first.add(observations_[i]);
        }
    }
    return folds;
}

io::Json
to_json(const Dataset& data)
{
    io::Json arr{io::JsonArray{}};
    for (const auto& obs : data.observations())
        arr.push_back(to_json(obs));
    io::Json j;
    j.set("observations", std::move(arr));
    return j;
}

Dataset
dataset_from_json(const io::Json& j)
{
    Dataset data;
    // Accept either {"observations": [...]} or a bare array.
    const io::JsonArray& arr = j.is_array()
        ? j.as_array()
        : j.at("observations").as_array();
    for (const auto& item : arr)
        data.add(observation_from_json(item));
    return data;
}

Dataset
generate_dataset(const core::HardwareModel& hw,
                 const core::ExecutionGraph& graph,
                 const core::TrafficProfile& base,
                 const GenerationSpec& spec)
{
    if (spec.replications == 0)
        throw std::invalid_argument(
            "generate_dataset: zero replications");

    // Expand the grid; an absent axis keeps the base profile's value.
    struct Point {
        std::string label;
        core::TrafficProfile traffic;
    };
    std::vector<double> rates = spec.rates_gbps;
    if (rates.empty())
        rates.push_back(base.ingress_bandwidth().gbps());
    std::vector<Point> points;
    for (double rate : rates) {
        if (rate <= 0.0)
            throw std::invalid_argument(
                "generate_dataset: non-positive rate");
        if (spec.packet_sizes_bytes.empty()) {
            auto t = base;
            t.set_ingress_bandwidth(Bandwidth::from_gbps(rate));
            char label[64];
            std::snprintf(label, sizeof label, "%gG/base", rate);
            points.push_back(Point{label, std::move(t)});
            continue;
        }
        for (double size : spec.packet_sizes_bytes) {
            if (size <= 0.0)
                throw std::invalid_argument(
                    "generate_dataset: non-positive packet size");
            char label[64];
            std::snprintf(label, sizeof label, "%gG/%gB", rate, size);
            points.push_back(
                Point{label,
                      core::TrafficProfile::fixed(
                          Bytes{size}, Bandwidth::from_gbps(rate))});
        }
    }
    if (points.empty())
        throw std::invalid_argument("generate_dataset: empty grid");

    // One replicated DES campaign per point, fanned across the runner.
    // Seeds derive from (root, point index, replication index), so which
    // thread evaluates a point cannot affect its observation.
    std::vector<Observation> observations(points.size());
    runner::parallel_for(
        points.size(), spec.threads, [&](std::size_t i) {
            const runner::Replicator reps(
                spec.replications,
                runner::derive_seed(spec.root_seed, i));
            const auto stats =
                reps.run([&](std::uint64_t seed) {
                    sim::SimOptions opts = spec.sim;
                    opts.seed = seed;
                    return sim::simulate(hw, graph, points[i].traffic,
                                         opts);
                });
            Observation obs;
            obs.label = points[i].label;
            obs.traffic = points[i].traffic;
            obs.throughput =
                Bandwidth::from_gbps(stats.delivered_gbps.mean);
            obs.mean_latency =
                Seconds::from_micros(stats.mean_latency_us.mean);
            obs.p99_latency =
                Seconds::from_micros(stats.p99_latency_us.mean);
            observations[i] = std::move(obs);
        });

    Dataset data;
    for (auto& obs : observations)
        data.add(std::move(obs));
    return data;
}

} // namespace lognic::calib
