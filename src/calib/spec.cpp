#include "lognic/calib/spec.hpp"

#include <stdexcept>
#include <string>

#include "lognic/io/checkpoint.hpp"

namespace lognic::calib {

namespace {

std::uint64_t
seed_or(const io::Json& j, const std::string& key, std::uint64_t fallback)
{
    if (!j.contains(key))
        return fallback;
    const io::Json& v = j.at(key);
    if (v.is_number())
        return static_cast<std::uint64_t>(v.as_number());
    // Strict parse naming the field: a typo'd "seed" must read as an
    // error about "seed", not a bare std::invalid_argument.
    return io::parse_u64(v.as_string(), "calibration spec field \"" + key
                                            + "\"");
}

std::vector<double>
doubles_or(const io::Json& j, const std::string& key)
{
    std::vector<double> out;
    if (!j.contains(key))
        return out;
    for (const auto& v : j.at(key).as_array())
        out.push_back(v.as_number());
    return out;
}

} // namespace

CalibSpec
calib_spec_from_json(const io::Json& doc)
{
    if (!doc.contains("scenario") || !doc.contains("calib"))
        throw std::runtime_error(
            "calibration spec: need both \"scenario\" and \"calib\"");
    const io::Scenario scenario =
        io::scenario_from_json(doc.at("scenario"));
    const io::Json& c = doc.at("calib");

    // The free parameters over the scenario's catalog + graph.
    Candidate base{scenario.hw, {scenario.graph}};
    ParameterSpace space(std::move(base));
    if (!c.contains("parameters")
        || c.at("parameters").as_array().empty())
        throw std::runtime_error(
            "calibration spec: \"calib.parameters\" must name at least "
            "one parameter");
    for (const auto& p : c.at("parameters").as_array()) {
        if (p.is_string()) {
            space.add(p.as_string());
        } else if (p.contains("lower") || p.contains("upper")) {
            space.add(p.at("name").as_string(),
                      p.at("lower").as_number(),
                      p.at("upper").as_number());
        } else {
            space.add(p.at("name").as_string());
        }
    }

    CalibratorOptions options;
    if (c.contains("loss"))
        options.loss = loss_from_json(c.at("loss"));
    if (c.contains("backend"))
        options.fit.backend =
            backend_from_string(c.at("backend").as_string());
    options.fit.starts =
        static_cast<std::size_t>(c.number_or("starts", 4.0));
    options.fit.threads =
        static_cast<std::size_t>(c.number_or("threads", 1.0));
    options.fit.seed = seed_or(c, "seed", 42);
    options.fit.max_iterations = static_cast<std::size_t>(
        c.number_or("max_iterations", 200.0));
    options.fit.cache_capacity = static_cast<std::size_t>(
        c.number_or("cache_capacity", 4096.0));
    options.holdout_fraction = c.number_or("holdout_fraction", 0.0);
    options.k_folds =
        static_cast<std::size_t>(c.number_or("k_folds", 0.0));

    if (c.contains("dataset") == c.contains("generate"))
        throw std::runtime_error(
            "calibration spec: give exactly one of \"calib.dataset\" "
            "(measured points) or \"calib.generate\" (DES synthesis)");

    Dataset data;
    if (c.contains("dataset")) {
        data = dataset_from_json(c.at("dataset"));
    } else {
        const io::Json& g = c.at("generate");
        GenerationSpec gen;
        gen.rates_gbps = doubles_or(g, "rates_gbps");
        gen.packet_sizes_bytes = doubles_or(g, "packet_sizes");
        gen.replications =
            static_cast<std::size_t>(g.number_or("replications", 1.0));
        gen.root_seed = seed_or(g, "seed", options.fit.seed);
        gen.threads = options.fit.threads;
        gen.sim.duration = g.number_or("duration", 0.004);
        data = generate_dataset(scenario.hw, scenario.graph,
                                scenario.traffic, gen);
    }

    return CalibSpec{std::move(space), std::move(data),
                     std::move(options)};
}

std::string
sample_calib_spec(const io::Scenario& base)
{
    io::Json parameters{io::JsonArray{}};
    // Expose the first IP's per-request cost plus the shared interface —
    // the two knobs any scenario has.
    if (base.hw.ip_count() > 0)
        parameters.push_back("ip." + base.hw.ip(0).name
                             + ".fixed_cost_us");
    io::Json interface_param;
    interface_param.set("name", "interface_gbps");
    interface_param.set("lower",
                        base.hw.interface_bandwidth().gbps() / 4.0);
    interface_param.set("upper",
                        base.hw.interface_bandwidth().gbps() * 4.0);
    parameters.push_back(std::move(interface_param));

    io::Json loss;
    loss.set("throughput_weight", 1.0);
    loss.set("latency_weight", 0.25);

    io::Json generate;
    io::Json rates{io::JsonArray{}};
    const double line = base.hw.line_rate().gbps();
    rates.push_back(0.25 * line);
    rates.push_back(0.5 * line);
    rates.push_back(0.75 * line);
    rates.push_back(line);
    generate.set("rates_gbps", std::move(rates));
    io::Json sizes{io::JsonArray{}};
    sizes.push_back(256);
    sizes.push_back(1024);
    generate.set("packet_sizes", std::move(sizes));
    generate.set("replications", 1);
    generate.set("duration", 0.002);
    generate.set("seed", 42);

    io::Json calib;
    calib.set("parameters", std::move(parameters));
    calib.set("loss", std::move(loss));
    calib.set("backend", "least_squares");
    calib.set("starts", 2);
    calib.set("threads", 1);
    calib.set("seed", 42);
    calib.set("max_iterations", 60);
    calib.set("cache_capacity", 1024);
    calib.set("holdout_fraction", 0.25);
    calib.set("generate", std::move(generate));

    io::Json doc;
    doc.set("scenario", io::to_json(base));
    doc.set("calib", std::move(calib));
    return doc.dump(2);
}

} // namespace lognic::calib
