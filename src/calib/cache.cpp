#include "lognic/calib/cache.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

namespace lognic::calib {

std::string
cache_key(const solver::Vector& x)
{
    std::string key;
    key.resize(x.size() * sizeof(double));
    if (!x.empty())
        std::memcpy(key.data(), x.data(), key.size());
    return key;
}

EvalCache::EvalCache(std::size_t capacity) : cache_(capacity) {}

std::optional<solver::Vector>
EvalCache::lookup(const solver::Vector& x)
{
    return cache_.lookup(cache_key(x));
}

void
EvalCache::insert(const solver::Vector& x, solver::Vector value)
{
    cache_.insert(cache_key(x), std::move(value));
}

CachedResiduals::CachedResiduals(solver::VectorFn fn, std::size_t capacity)
    : fn_(std::move(fn)), cache_(capacity)
{
}

solver::Vector
CachedResiduals::operator()(const solver::Vector& x)
{
    ++requests_;
    if (auto hit = cache_.lookup(x))
        return *std::move(hit);
    solver::Vector r = fn_(x);
    ++underlying_;
    double loss = 0.0;
    for (double v : r)
        loss += 0.5 * v * v;
    if (!has_best_ || loss < best_) {
        best_ = loss;
        has_best_ = true;
        convergence_.push_back(loss);
    }
    cache_.insert(x, r);
    return r;
}

} // namespace lognic::calib
