#include "lognic/calib/cache.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

namespace lognic::calib {

std::string
cache_key(const solver::Vector& x)
{
    std::string key;
    key.resize(x.size() * sizeof(double));
    if (!x.empty())
        std::memcpy(key.data(), x.data(), key.size());
    return key;
}

EvalCache::EvalCache(std::size_t capacity) : capacity_(capacity)
{
    if (capacity_ == 0)
        throw std::invalid_argument("EvalCache: capacity must be > 0");
}

std::optional<solver::Vector>
EvalCache::lookup(const solver::Vector& x)
{
    const auto it = index_.find(cache_key(x));
    if (it == index_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    entries_.splice(entries_.begin(), entries_, it->second);
    return it->second->value;
}

void
EvalCache::insert(const solver::Vector& x, solver::Vector value)
{
    std::string key = cache_key(x);
    if (index_.count(key) != 0)
        return;
    entries_.push_front(Entry{key, std::move(value)});
    index_.emplace(std::move(key), entries_.begin());
    if (entries_.size() > capacity_) {
        index_.erase(entries_.back().key);
        entries_.pop_back();
        ++stats_.evictions;
    }
}

CachedResiduals::CachedResiduals(solver::VectorFn fn, std::size_t capacity)
    : fn_(std::move(fn)), cache_(capacity)
{
}

solver::Vector
CachedResiduals::operator()(const solver::Vector& x)
{
    ++requests_;
    if (auto hit = cache_.lookup(x))
        return *std::move(hit);
    solver::Vector r = fn_(x);
    ++underlying_;
    double loss = 0.0;
    for (double v : r)
        loss += 0.5 * v * v;
    if (!has_best_ || loss < best_) {
        best_ = loss;
        has_best_ = true;
        convergence_.push_back(loss);
    }
    cache_.insert(x, r);
    return r;
}

} // namespace lognic::calib
