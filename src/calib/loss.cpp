#include "lognic/calib/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace lognic::calib {

const char*
to_string(ResidualKind kind)
{
    switch (kind) {
    case ResidualKind::kRelative:
        return "relative";
    case ResidualKind::kAbsolute:
        return "absolute";
    }
    return "unknown";
}

ResidualKind
residual_kind_from_string(const std::string& name)
{
    if (name == "relative")
        return ResidualKind::kRelative;
    if (name == "absolute")
        return ResidualKind::kAbsolute;
    throw std::invalid_argument("calib: unknown residual kind '" + name
                                + "'");
}

io::Json
to_json(const LossOptions& loss)
{
    io::Json j;
    j.set("throughput_weight", loss.throughput_weight);
    j.set("latency_weight", loss.latency_weight);
    j.set("p99_weight", loss.p99_weight);
    j.set("kind", to_string(loss.kind));
    j.set("huber_delta", loss.huber_delta);
    return j;
}

LossOptions
loss_from_json(const io::Json& j)
{
    LossOptions loss;
    loss.throughput_weight = j.number_or("throughput_weight", 1.0);
    loss.latency_weight = j.number_or("latency_weight", 1.0);
    loss.p99_weight = j.number_or("p99_weight", 0.0);
    if (j.contains("kind"))
        loss.kind = residual_kind_from_string(j.at("kind").as_string());
    loss.huber_delta = j.number_or("huber_delta", 0.0);
    if (loss.throughput_weight < 0.0 || loss.latency_weight < 0.0
        || loss.p99_weight < 0.0 || loss.huber_delta < 0.0)
        throw std::runtime_error("calib loss: negative weight or delta");
    if (loss.throughput_weight == 0.0 && loss.latency_weight == 0.0
        && loss.p99_weight == 0.0)
        throw std::runtime_error("calib loss: all components disabled");
    return loss;
}

std::size_t
components_per_observation(const LossOptions& loss)
{
    std::size_t n = 0;
    if (loss.throughput_weight > 0.0)
        ++n;
    if (loss.latency_weight > 0.0)
        ++n;
    if (loss.p99_weight > 0.0)
        ++n;
    return n;
}

double
huberize(double r, double delta)
{
    if (delta <= 0.0)
        return r;
    const double z = r / delta;
    const double mag =
        delta * std::sqrt(2.0 * (std::sqrt(1.0 + z * z) - 1.0));
    return std::copysign(mag, r);
}

Prediction
predict(const Candidate& candidate, const Observation& obs)
{
    const core::ExecutionGraph& graph =
        candidate.graphs.at(obs.graph_index);
    const core::Model model(candidate.hw);
    const core::Report rep = model.estimate(graph, obs.traffic);
    Prediction pred;
    // "Achieved" is the apples-to-apples counterpart of the simulator's
    // delivered bandwidth (capacity-clipped offered goodput).
    pred.throughput = rep.throughput.achieved;
    pred.mean_latency = rep.latency.mean;
    pred.p99_latency = rep.latency.per_class.empty()
        ? Seconds{0.0}
        : rep.latency.per_class.front().p99;
    return pred;
}

namespace {

double
component(ResidualKind kind, double pred, double observed)
{
    if (kind == ResidualKind::kAbsolute)
        return pred - observed;
    if (observed == 0.0)
        throw std::invalid_argument(
            "calib loss: relative residual against a zero observation");
    return (pred - observed) / observed;
}

} // namespace

void
append_residuals(const LossOptions& loss, const Observation& obs,
                 const Prediction& pred, solver::Vector& out)
{
    const double w = std::sqrt(obs.weight);
    if (loss.throughput_weight > 0.0) {
        out.push_back(w * loss.throughput_weight
                      * huberize(component(loss.kind,
                                           pred.throughput.gbps(),
                                           obs.throughput.gbps()),
                                 loss.huber_delta));
    }
    if (loss.latency_weight > 0.0) {
        out.push_back(w * loss.latency_weight
                      * huberize(component(loss.kind,
                                           pred.mean_latency.micros(),
                                           obs.mean_latency.micros()),
                                 loss.huber_delta));
    }
    if (loss.p99_weight > 0.0) {
        out.push_back(w * loss.p99_weight
                      * huberize(component(loss.kind,
                                           pred.p99_latency.micros(),
                                           obs.p99_latency.micros()),
                                 loss.huber_delta));
    }
}

solver::VectorFn
make_residual_fn(const ParameterSpace& space, const Dataset& data,
                 const LossOptions& loss)
{
    if (data.empty())
        throw std::invalid_argument(
            "calib: cannot build residuals over an empty dataset");
    if (components_per_observation(loss) == 0)
        throw std::invalid_argument(
            "calib: loss has no active components");
    // The lambda owns copies: evaluations may outlive the caller's frame
    // and run on worker threads.
    return [space, data, loss](const solver::Vector& x) {
        const Candidate candidate = space.apply(x);
        solver::Vector r;
        r.reserve(data.size() * components_per_observation(loss));
        for (const auto& obs : data.observations())
            append_residuals(loss, obs, predict(candidate, obs), r);
        return r;
    };
}

double
total_loss(const solver::Vector& residuals)
{
    double s = 0.0;
    for (double v : residuals)
        s += v * v;
    return 0.5 * s;
}

} // namespace lognic::calib
