#include "lognic/calib/report.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "lognic/io/checkpoint.hpp"

namespace lognic::calib {

namespace {

std::string
hex_seed(std::uint64_t seed)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(seed));
    return buf;
}

std::uint64_t
seed_from_json(const io::Json& j, const std::string& key)
{
    if (!j.contains(key))
        return 0;
    const io::Json& v = j.at(key);
    if (v.is_number())
        return static_cast<std::uint64_t>(v.as_number());
    return io::parse_u64(v.as_string(),
                         "calibration report field \"" + key + "\"");
}

io::Json
vector_to_json(const solver::Vector& v)
{
    io::Json arr{io::JsonArray{}};
    for (double x : v)
        arr.push_back(x);
    return arr;
}

solver::Vector
vector_from_json(const io::Json& j)
{
    solver::Vector v;
    for (const auto& item : j.as_array())
        v.push_back(item.as_number());
    return v;
}

io::Json
to_json(const ResidualRecord& rec)
{
    io::Json j;
    j.set("label", rec.label);
    j.set("holdout", rec.holdout);
    j.set("observed_throughput_gbps", rec.observed_throughput_gbps);
    j.set("predicted_throughput_gbps", rec.predicted_throughput_gbps);
    j.set("throughput_rel_error", rec.throughput_rel_error);
    j.set("observed_latency_us", rec.observed_latency_us);
    j.set("predicted_latency_us", rec.predicted_latency_us);
    j.set("latency_rel_error", rec.latency_rel_error);
    return j;
}

ResidualRecord
residual_record_from_json(const io::Json& j)
{
    ResidualRecord rec;
    rec.label = j.at("label").as_string();
    rec.holdout = j.contains("holdout") && j.at("holdout").as_bool();
    rec.observed_throughput_gbps =
        j.number_or("observed_throughput_gbps", 0.0);
    rec.predicted_throughput_gbps =
        j.number_or("predicted_throughput_gbps", 0.0);
    rec.throughput_rel_error = j.number_or("throughput_rel_error", 0.0);
    rec.observed_latency_us = j.number_or("observed_latency_us", 0.0);
    rec.predicted_latency_us = j.number_or("predicted_latency_us", 0.0);
    rec.latency_rel_error = j.number_or("latency_rel_error", 0.0);
    return rec;
}

io::Json
to_json(const IdentifiabilityWarning& w)
{
    io::Json j;
    j.set("parameter", w.parameter);
    j.set("kind", w.kind);
    j.set("detail", w.detail);
    j.set("metric", w.metric);
    return j;
}

IdentifiabilityWarning
warning_from_json(const io::Json& j)
{
    IdentifiabilityWarning w;
    w.parameter = j.at("parameter").as_string();
    w.kind = j.at("kind").as_string();
    if (j.contains("detail"))
        w.detail = j.at("detail").as_string();
    w.metric = j.number_or("metric", 0.0);
    return w;
}

io::Json
to_json(const StartOutcome& s)
{
    io::Json j;
    j.set("index", static_cast<double>(s.index));
    j.set("seed", hex_seed(s.seed));
    j.set("initial_loss", s.initial_loss);
    j.set("final_loss", s.final_loss);
    j.set("converged", s.converged);
    j.set("failed", s.failed);
    j.set("message", s.message);
    j.set("iterations", static_cast<double>(s.iterations));
    j.set("model_solves", static_cast<double>(s.model_solves));
    j.set("cache_hits", static_cast<double>(s.cache_hits));
    j.set("cache_misses", static_cast<double>(s.cache_misses));
    return j;
}

StartOutcome
start_from_json(const io::Json& j)
{
    StartOutcome s;
    s.index = static_cast<std::size_t>(j.number_or("index", 0.0));
    s.seed = seed_from_json(j, "seed");
    s.initial_loss = j.number_or("initial_loss", 0.0);
    s.final_loss = j.number_or("final_loss", 0.0);
    s.converged = j.contains("converged") && j.at("converged").as_bool();
    s.failed = j.contains("failed") && j.at("failed").as_bool();
    if (j.contains("message"))
        s.message = j.at("message").as_string();
    s.iterations =
        static_cast<std::size_t>(j.number_or("iterations", 0.0));
    s.model_solves =
        static_cast<std::uint64_t>(j.number_or("model_solves", 0.0));
    s.cache_hits =
        static_cast<std::uint64_t>(j.number_or("cache_hits", 0.0));
    s.cache_misses =
        static_cast<std::uint64_t>(j.number_or("cache_misses", 0.0));
    return s;
}

io::Json
to_json(const FoldOutcome& f)
{
    io::Json j;
    j.set("fold", static_cast<double>(f.fold));
    j.set("train_error", f.train_error);
    j.set("validation_error", f.validation_error);
    j.set("failed", f.failed);
    j.set("message", f.message);
    return j;
}

FoldOutcome
fold_from_json(const io::Json& j)
{
    FoldOutcome f;
    f.fold = static_cast<std::size_t>(j.number_or("fold", 0.0));
    f.train_error = j.number_or("train_error", 0.0);
    f.validation_error = j.number_or("validation_error", 0.0);
    f.failed = j.contains("failed") && j.at("failed").as_bool();
    if (j.contains("message"))
        f.message = j.at("message").as_string();
    return f;
}

io::Json
to_json(const FitError& e)
{
    io::Json j;
    j.set("observations", static_cast<double>(e.observations));
    j.set("throughput", e.throughput);
    j.set("latency", e.latency);
    j.set("worst_throughput", e.worst_throughput);
    return j;
}

FitError
fit_error_from_json(const io::Json& j)
{
    FitError e;
    e.observations =
        static_cast<std::size_t>(j.number_or("observations", 0.0));
    e.throughput = j.number_or("throughput", 0.0);
    e.latency = j.number_or("latency", 0.0);
    e.worst_throughput = j.number_or("worst_throughput", 0.0);
    return e;
}

} // namespace

io::Json
to_json(const CalibrationReport& report)
{
    io::Json j;
    j.set("device", report.device);
    j.set("backend", report.backend);
    j.set("seed", hex_seed(report.seed));
    j.set("starts", static_cast<double>(report.starts));

    io::Json names{io::JsonArray{}};
    for (const auto& n : report.parameter_names)
        names.push_back(n);
    j.set("parameter_names", std::move(names));
    j.set("initial", vector_to_json(report.initial));
    j.set("fitted", vector_to_json(report.fitted));
    j.set("lower", vector_to_json(report.lower));
    j.set("upper", vector_to_json(report.upper));

    j.set("initial_loss", report.initial_loss);
    j.set("best_loss", report.best_loss);
    j.set("converged", report.converged);
    j.set("message", report.message);

    j.set("train_error", to_json(report.train_error));
    j.set("holdout_error", to_json(report.holdout_error));

    io::Json starts{io::JsonArray{}};
    for (const auto& s : report.start_outcomes)
        starts.push_back(to_json(s));
    j.set("start_outcomes", std::move(starts));

    io::Json folds{io::JsonArray{}};
    for (const auto& f : report.folds)
        folds.push_back(to_json(f));
    j.set("folds", std::move(folds));

    io::Json residuals{io::JsonArray{}};
    for (const auto& r : report.residuals)
        residuals.push_back(to_json(r));
    j.set("residuals", std::move(residuals));

    io::Json warnings{io::JsonArray{}};
    for (const auto& w : report.warnings)
        warnings.push_back(to_json(w));
    j.set("warnings", std::move(warnings));

    j.set("cache_hits", static_cast<double>(report.cache_hits));
    j.set("cache_misses", static_cast<double>(report.cache_misses));
    j.set("model_solves", static_cast<double>(report.model_solves));
    j.set("convergence", vector_to_json(report.convergence));

    j.set("fitted_hardware", report.fitted_hardware);
    return j;
}

CalibrationReport
report_from_json(const io::Json& j)
{
    CalibrationReport report;
    report.device = j.at("device").as_string();
    report.backend = j.at("backend").as_string();
    report.seed = seed_from_json(j, "seed");
    report.starts = static_cast<std::size_t>(j.number_or("starts", 0.0));

    for (const auto& n : j.at("parameter_names").as_array())
        report.parameter_names.push_back(n.as_string());
    report.initial = vector_from_json(j.at("initial"));
    report.fitted = vector_from_json(j.at("fitted"));
    report.lower = vector_from_json(j.at("lower"));
    report.upper = vector_from_json(j.at("upper"));
    if (report.fitted.size() != report.parameter_names.size()
        || report.initial.size() != report.parameter_names.size())
        throw std::runtime_error(
            "calibration report: parameter vectors and names disagree");

    report.initial_loss = j.number_or("initial_loss", 0.0);
    report.best_loss = j.number_or("best_loss", 0.0);
    report.converged =
        j.contains("converged") && j.at("converged").as_bool();
    if (j.contains("message"))
        report.message = j.at("message").as_string();

    report.train_error = fit_error_from_json(j.at("train_error"));
    report.holdout_error = fit_error_from_json(j.at("holdout_error"));

    for (const auto& s : j.at("start_outcomes").as_array())
        report.start_outcomes.push_back(start_from_json(s));
    if (j.contains("folds")) {
        for (const auto& f : j.at("folds").as_array())
            report.folds.push_back(fold_from_json(f));
    }
    for (const auto& r : j.at("residuals").as_array())
        report.residuals.push_back(residual_record_from_json(r));
    if (j.contains("warnings")) {
        for (const auto& w : j.at("warnings").as_array())
            report.warnings.push_back(warning_from_json(w));
    }

    report.cache_hits =
        static_cast<std::uint64_t>(j.number_or("cache_hits", 0.0));
    report.cache_misses =
        static_cast<std::uint64_t>(j.number_or("cache_misses", 0.0));
    report.model_solves =
        static_cast<std::uint64_t>(j.number_or("model_solves", 0.0));
    if (j.contains("convergence"))
        report.convergence = vector_from_json(j.at("convergence"));

    if (j.contains("fitted_hardware"))
        report.fitted_hardware = j.at("fitted_hardware");
    return report;
}

std::string
render(const CalibrationReport& report)
{
    std::ostringstream os;
    os << "calibration of " << report.device << " (" << report.backend
       << ", " << report.starts << " starts, seed "
       << hex_seed(report.seed) << ")\n";
    os << "  loss: " << report.initial_loss << " -> " << report.best_loss
       << (report.converged ? "  [converged: " : "  [not converged: ")
       << report.message << "]\n";
    os << "  parameters:\n";
    for (std::size_t i = 0; i < report.parameter_names.size(); ++i) {
        os << "    " << report.parameter_names[i] << ": "
           << report.initial[i] << " -> " << report.fitted[i] << "  (in ["
           << report.lower[i] << ", " << report.upper[i] << "])\n";
    }
    os << "  train:   " << report.train_error.observations
       << " obs, mean |rel thpt err| = "
       << 100.0 * report.train_error.throughput << "%, worst = "
       << 100.0 * report.train_error.worst_throughput << "%\n";
    if (report.holdout_error.observations > 0) {
        os << "  holdout: " << report.holdout_error.observations
           << " obs, mean |rel thpt err| = "
           << 100.0 * report.holdout_error.throughput << "%, worst = "
           << 100.0 * report.holdout_error.worst_throughput << "%\n";
    }
    for (const auto& f : report.folds) {
        os << "  fold " << f.fold << ": ";
        if (f.failed)
            os << "FAILED (" << f.message << ")\n";
        else
            os << "train " << 100.0 * f.train_error << "%, validation "
               << 100.0 * f.validation_error << "%\n";
    }
    os << "  cache: " << report.cache_hits << " hits / "
       << report.cache_misses << " misses (" << report.model_solves
       << " model solves)\n";
    for (const auto& w : report.warnings) {
        os << "  warning [" << w.kind << "] " << w.parameter << ": "
           << w.detail << "\n";
    }
    return os.str();
}

} // namespace lognic::calib
