#include "lognic/calib/parameter_space.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "lognic/io/checkpoint.hpp"

namespace lognic::calib {

namespace {

/// Split "a.b.c" on dots.
std::vector<std::string>
split_path(const std::string& path)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= path.size()) {
        const std::size_t dot = path.find('.', start);
        if (dot == std::string::npos) {
            parts.push_back(path.substr(start));
            break;
        }
        parts.push_back(path.substr(start, dot - start));
        start = dot + 1;
    }
    return parts;
}

[[noreturn]] void
bad_path(const std::string& path, const std::string& why)
{
    throw std::invalid_argument("ParameterSpace: cannot expose '" + path
                                + "': " + why);
}

core::IpId
ip_or_throw(const Candidate& c, const std::string& path,
            const std::string& name)
{
    const auto id = c.hw.find_ip(name);
    if (!id)
        bad_path(path, "no IP named '" + name + "'");
    return *id;
}

core::VertexId
vertex_or_throw(const Candidate& c, const std::string& path,
                std::size_t graph, const std::string& name)
{
    if (graph >= c.graphs.size())
        bad_path(path, "no graph with index " + std::to_string(graph));
    const auto v = c.graphs[graph].find_vertex(name);
    if (!v)
        bad_path(path, "no vertex named '" + name + "' in graph "
                           + std::to_string(graph));
    return *v;
}

/// Rebuild a roofline with one engine field changed (ExtendedRoofline is
/// immutable by design; calibration replaces it wholesale).
void
set_engine_field(core::IpSpec& spec, bool fixed_cost, double value)
{
    core::ServiceModel engine = spec.roofline.engine();
    if (fixed_cost)
        engine.fixed_cost = Seconds::from_micros(value);
    else
        engine.byte_rate = Bandwidth::from_gbps(value);
    spec.roofline =
        core::ExtendedRoofline(engine, spec.roofline.ceilings());
}

void
set_ceiling(core::IpSpec& spec, const std::string& ceiling, double gbps,
            const std::string& path)
{
    auto ceilings = spec.roofline.ceilings();
    for (auto& c : ceilings) {
        if (c.name == ceiling) {
            c.bw = Bandwidth::from_gbps(gbps);
            spec.roofline = core::ExtendedRoofline(
                spec.roofline.engine(), std::move(ceilings));
            return;
        }
    }
    bad_path(path, "IP '" + spec.name + "' has no ceiling named '"
                       + ceiling + "'");
}

/// Resolve a path into accessors, validating it against the base.
Parameter
resolve(const Candidate& base, const std::string& path)
{
    const auto parts = split_path(path);
    Parameter p;
    p.name = path;

    if (parts.size() == 1) {
        if (path == "interface_gbps") {
            p.get = [](const Candidate& c) {
                return c.hw.interface_bandwidth().gbps();
            };
            p.set = [](Candidate& c, double v) {
                c.hw.set_interface_bandwidth(Bandwidth::from_gbps(v));
            };
            return p;
        }
        if (path == "memory_gbps") {
            p.get = [](const Candidate& c) {
                return c.hw.memory_bandwidth().gbps();
            };
            p.set = [](Candidate& c, double v) {
                c.hw.set_memory_bandwidth(Bandwidth::from_gbps(v));
            };
            return p;
        }
        if (path == "line_rate_gbps") {
            p.get = [](const Candidate& c) {
                return c.hw.line_rate().gbps();
            };
            p.set = [](Candidate& c, double v) {
                c.hw.set_line_rate(Bandwidth::from_gbps(v));
            };
            return p;
        }
        bad_path(path, "unknown field");
    }

    if (parts[0] == "ip") {
        if (parts.size() == 3) {
            const std::string ip_name = parts[1];
            const std::string field = parts[2];
            ip_or_throw(base, path, ip_name);
            if (field == "fixed_cost_us") {
                p.get = [ip_name](const Candidate& c) {
                    return c.hw.ip(*c.hw.find_ip(ip_name))
                        .roofline.engine()
                        .fixed_cost.micros();
                };
                p.set = [ip_name](Candidate& c, double v) {
                    set_engine_field(c.hw.ip(*c.hw.find_ip(ip_name)),
                                     true, v);
                };
                return p;
            }
            if (field == "byte_rate_gbps") {
                p.get = [ip_name](const Candidate& c) {
                    return c.hw.ip(*c.hw.find_ip(ip_name))
                        .roofline.engine()
                        .byte_rate.gbps();
                };
                p.set = [ip_name](Candidate& c, double v) {
                    set_engine_field(c.hw.ip(*c.hw.find_ip(ip_name)),
                                     false, v);
                };
                return p;
            }
            if (field == "service_scv") {
                p.get = [ip_name](const Candidate& c) {
                    return c.hw.ip(*c.hw.find_ip(ip_name)).service_scv;
                };
                p.set = [ip_name](Candidate& c, double v) {
                    c.hw.ip(*c.hw.find_ip(ip_name)).service_scv = v;
                };
                return p;
            }
            bad_path(path, "unknown IP field '" + field + "'");
        }
        if (parts.size() == 5 && parts[2] == "ceiling"
            && parts[4] == "gbps") {
            const std::string ip_name = parts[1];
            const std::string ceiling = parts[3];
            // Validate both the IP and the ceiling now, not at apply time.
            {
                Candidate probe = base;
                set_ceiling(probe.hw.ip(ip_or_throw(base, path, ip_name)),
                            ceiling, 1.0, path);
            }
            p.get = [ip_name, ceiling](const Candidate& c) {
                const auto& spec = c.hw.ip(*c.hw.find_ip(ip_name));
                for (const auto& cl : spec.roofline.ceilings()) {
                    if (cl.name == ceiling)
                        return cl.bw.gbps();
                }
                return 0.0; // unreachable: validated above
            };
            p.set = [ip_name, ceiling, path](Candidate& c, double v) {
                set_ceiling(c.hw.ip(*c.hw.find_ip(ip_name)), ceiling, v,
                            path);
            };
            return p;
        }
        bad_path(path, "expected ip.<name>.<field> or "
                       "ip.<name>.ceiling.<ceiling>.gbps");
    }

    if (parts[0] == "graph" && parts.size() == 5 && parts[2] == "vertex"
        && parts[4] == "overhead_us") {
        std::size_t graph = 0;
        try {
            // Full-consumption parse: "12abc" is malformed, not 12.
            graph = static_cast<std::size_t>(
                io::parse_u64(parts[1], "parameter path \"" + path + "\""));
        } catch (const std::exception&) {
            bad_path(path, "graph index must be a number");
        }
        const std::string vertex = parts[3];
        vertex_or_throw(base, path, graph, vertex);
        p.get = [graph, vertex](const Candidate& c) {
            return c.graphs[graph]
                .vertex(*c.graphs[graph].find_vertex(vertex))
                .params.overhead.micros();
        };
        p.set = [graph, vertex](Candidate& c, double v) {
            c.graphs[graph]
                .vertex(*c.graphs[graph].find_vertex(vertex))
                .params.overhead = Seconds::from_micros(v);
        };
        return p;
    }

    bad_path(path, "unknown path");
}

} // namespace

ParameterSpace::ParameterSpace(Candidate base) : base_(std::move(base)) {}

std::size_t
ParameterSpace::add(const std::string& path)
{
    Parameter p = resolve(base_, path);
    const double value = p.get(base_);
    if (value <= 0.0)
        bad_path(path, "base value is not positive; give explicit bounds");
    p.lower = value / 8.0;
    p.upper = value * 8.0;
    return add_custom(std::move(p));
}

std::size_t
ParameterSpace::add(const std::string& path, double lower, double upper)
{
    Parameter p = resolve(base_, path);
    // Every built-in path is a physical quantity (a bandwidth, a cost);
    // arbitrary-sign parameters must go through add_custom().
    if (lower < 0.0)
        bad_path(path, "built-in quantities need a lower bound >= 0");
    p.lower = lower;
    p.upper = upper;
    return add_custom(std::move(p));
}

std::size_t
ParameterSpace::add_custom(Parameter p)
{
    if (!p.get || !p.set)
        throw std::invalid_argument(
            "ParameterSpace: parameter '" + p.name
            + "' needs both accessors");
    if (!(p.lower < p.upper))
        throw std::invalid_argument(
            "ParameterSpace: parameter '" + p.name
            + "' needs lower < upper bounds");
    if (find(p.name))
        throw std::invalid_argument(
            "ParameterSpace: duplicate parameter '" + p.name + "'");
    params_.push_back(std::move(p));
    return params_.size() - 1;
}

std::optional<std::size_t>
ParameterSpace::find(const std::string& name) const
{
    for (std::size_t i = 0; i < params_.size(); ++i) {
        if (params_[i].name == name)
            return i;
    }
    return std::nullopt;
}

solver::Vector
ParameterSpace::initial() const
{
    solver::Vector x(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i)
        x[i] = params_[i].get(base_);
    return x;
}

solver::Bounds
ParameterSpace::bounds() const
{
    solver::Bounds b;
    b.lower.resize(params_.size());
    b.upper.resize(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
        b.lower[i] = params_[i].lower;
        b.upper[i] = params_[i].upper;
    }
    return b;
}

solver::Vector
ParameterSpace::scales() const
{
    solver::Vector s(params_.size());
    const auto x0 = initial();
    for (std::size_t i = 0; i < params_.size(); ++i) {
        s[i] = std::max(std::abs(x0[i]),
                        (params_[i].upper - params_[i].lower) / 1000.0);
    }
    return s;
}

Candidate
ParameterSpace::apply(const solver::Vector& x) const
{
    if (x.size() != params_.size())
        throw std::invalid_argument(
            "ParameterSpace::apply: vector size mismatch");
    Candidate c = base_;
    for (std::size_t i = 0; i < params_.size(); ++i)
        params_[i].set(c, x[i]);
    return c;
}

solver::Vector
ParameterSpace::extract(const Candidate& c) const
{
    solver::Vector x(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i)
        x[i] = params_[i].get(c);
    return x;
}

} // namespace lognic::calib
