#include "lognic/queueing/mm1n.hpp"

#include <cmath>
#include <stdexcept>

namespace lognic::queueing {

namespace {

/**
 * The textbook expressions (1 - rho^k) / (1 - rho) suffer catastrophic
 * cancellation near rho = 1 (the two huge terms of Eq. 12 differ by
 * O(N) while each is O(1/(1-rho))), so the distribution moments are
 * computed by direct summation instead. To stay finite for rho > 1 and
 * large N, terms are expressed relative to the largest one:
 * e_k = rho^(k - N) when rho > 1, else rho^k; both stay in [0, 1].
 *
 * Sums return: S0 = sum e_k, S1 = sum k * e_k, plus e_N and e_0 for the
 * boundary probabilities. All O(N), exact to machine precision.
 */
struct StableSums {
    double s0{0.0};
    double s1{0.0};
    double e_first{0.0}; ///< e_0
    double e_last{0.0};  ///< e_N
};

StableSums
stable_sums(double rho, std::uint32_t n)
{
    StableSums out;
    const bool heavy = rho > 1.0;
    const double q = heavy ? 1.0 / rho : rho;
    // Iterate from the largest term (k = N when heavy, k = 0 otherwise).
    double term = 1.0;
    for (std::uint32_t i = 0; i <= n; ++i) {
        const std::uint32_t k = heavy ? n - i : i;
        out.s0 += term;
        out.s1 += static_cast<double>(k) * term;
        if (k == 0)
            out.e_first = term;
        if (k == n)
            out.e_last = term;
        term *= q;
    }
    return out;
}

/**
 * Within this distance of rho = 1, evaluate Eq. 12 through the exact
 * distribution sums instead of the cancelling textbook expression. The
 * dominant term rho/(1-rho) carries an absolute error of about
 * eps_machine/(1-rho)^2 while Q itself is O(N), so the cancelling form's
 * relative error grows like eps/((1-rho)^2 N) — at |rho-1| = 1e-3 that is
 * below 1e-9 for every N >= 1, and it degrades quadratically closer in
 * (1e-4 relative by |rho-1| = 2e-6 for N = 2). The window must therefore
 * cover the whole ill-conditioned region, not just the 0/0 point: an
 * earlier 1e-6 window substituted the rho = 1 *limit* (N-1)/(2 mu) inside,
 * which drifted from the exact occupancy/blocking/throughput quantities by
 * O(eps N^2 / 12) and left the near-edge cancellation error unaddressed.
 */
constexpr double kUnitRhoEps = 1e-3;

bool
near_unit(double rho)
{
    return std::abs(rho - 1.0) < kUnitRhoEps;
}

} // namespace

Mm1nQueue::Mm1nQueue(double lambda, double mu, std::uint32_t capacity)
    : lambda_(lambda), mu_(mu), capacity_(capacity), rho_(lambda / mu)
{
    if (!(lambda > 0.0) || !std::isfinite(lambda))
        throw std::invalid_argument("Mm1nQueue: lambda must be positive");
    if (!(mu > 0.0) || !std::isfinite(mu))
        throw std::invalid_argument("Mm1nQueue: mu must be positive");
    if (capacity == 0)
        throw std::invalid_argument("Mm1nQueue: capacity must be >= 1");
}

double
Mm1nQueue::prob(std::uint32_t k) const
{
    if (k > capacity_)
        return 0.0;
    const StableSums sums = stable_sums(rho_, capacity_);
    const double e_k = rho_ > 1.0
        ? std::pow(rho_, static_cast<double>(k)
                             - static_cast<double>(capacity_))
        : std::pow(rho_, static_cast<double>(k));
    return e_k / sums.s0;
}

double
Mm1nQueue::mean_in_system() const
{
    const StableSums sums = stable_sums(rho_, capacity_);
    return sums.s1 / sums.s0;
}

double
Mm1nQueue::effective_arrival_rate() const
{
    return lambda_ * (1.0 - blocking_probability());
}

double
Mm1nQueue::mean_sojourn_time() const
{
    return mean_in_system() / effective_arrival_rate();
}

double
Mm1nQueue::mean_queueing_delay() const
{
    return mean_sojourn_time() - 1.0 / mu_;
}

double
Mm1nQueue::paper_closed_form_delay() const
{
    const double n = static_cast<double>(capacity_);
    if (near_unit(rho_)) {
        // Inside the window the two Eq. 12 terms cancel catastrophically,
        // but Eq. 12 *is* Little's law applied to the M/M/1/N occupancy
        // distribution — so evaluate the identical quantity through the
        // same exact sums that mean_in_system()/blocking_probability()/
        // throughput() use: Q = L / lambda_e - 1/mu with L = S1/S0 and
        // lambda_e = mu * rho * (1 - e_N/S0). This keeps the closed form
        // consistent with those three quantities to machine precision as
        // rho crosses the window edge (including rho == 1 exactly, where
        // the sums reduce to the textbook limit (N-1)/(2 mu)).
        const StableSums sums = stable_sums(rho_, capacity_);
        const double accepted = rho_ * (sums.s0 - sums.e_last);
        return (1.0 / mu_) * (sums.s1 / accepted - 1.0);
    }
    // N rho^N / (1 - rho^N) overflows for rho > 1 with large N; the
    // reciprocal form N / (rho^-N - 1) is exact and stays finite (the
    // underflowing rho^-N cleanly limits the term to -N).
    double tail;
    if (rho_ > 1.0) {
        tail = n / (std::pow(1.0 / rho_, n) - 1.0);
    } else {
        const double rho_n = std::pow(rho_, n);
        tail = n * rho_n / (1.0 - rho_n);
    }
    return (1.0 / mu_) * (rho_ / (1.0 - rho_) - tail);
}

Mm1Queue::Mm1Queue(double lambda, double mu)
    : lambda_(lambda), mu_(mu), rho_(lambda / mu)
{
    if (lambda < 0.0 || !std::isfinite(lambda))
        throw std::invalid_argument("Mm1Queue: lambda must be non-negative");
    if (!(mu > 0.0) || !std::isfinite(mu))
        throw std::invalid_argument("Mm1Queue: mu must be positive");
    if (rho_ >= 1.0)
        throw std::invalid_argument("Mm1Queue: requires lambda < mu");
}

MmcQueue::MmcQueue(double lambda, double mu, std::uint32_t servers)
    : lambda_(lambda), mu_(mu), servers_(servers),
      rho_(lambda / (mu * static_cast<double>(servers)))
{
    if (servers == 0)
        throw std::invalid_argument("MmcQueue: need at least one server");
    if (!(lambda >= 0.0) || !(mu > 0.0))
        throw std::invalid_argument("MmcQueue: rates must be positive");
    if (rho_ >= 1.0)
        throw std::invalid_argument("MmcQueue: requires lambda < c * mu");

    // Erlang-C, computed with the numerically stable iterative form of the
    // Erlang-B recursion followed by the B->C conversion.
    const double a = lambda_ / mu_; // offered load in Erlangs
    double erlang_b = 1.0;
    for (std::uint32_t k = 1; k <= servers_; ++k) {
        erlang_b = a * erlang_b / (static_cast<double>(k) + a * erlang_b);
    }
    erlang_c_ = erlang_b / (1.0 - rho_ * (1.0 - erlang_b));
}

double
MmcQueue::mean_queueing_delay() const
{
    const double c = static_cast<double>(servers_);
    return erlang_c_ / (c * mu_ - lambda_);
}

double
MmcQueue::mean_in_system() const
{
    return lambda_ * mean_queueing_delay() + lambda_ / mu_;
}

} // namespace lognic::queueing
