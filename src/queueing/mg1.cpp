#include "lognic/queueing/mg1.hpp"

#include <cmath>
#include <stdexcept>

namespace lognic::queueing {

Mg1Queue::Mg1Queue(double lambda, double mean_service, double service_scv)
    : lambda_(lambda), mean_service_(mean_service), scv_(service_scv),
      rho_(lambda * mean_service)
{
    if (lambda < 0.0 || !std::isfinite(lambda))
        throw std::invalid_argument("Mg1Queue: lambda must be >= 0");
    if (!(mean_service > 0.0) || !std::isfinite(mean_service))
        throw std::invalid_argument("Mg1Queue: mean service must be > 0");
    if (service_scv < 0.0 || !std::isfinite(service_scv))
        throw std::invalid_argument("Mg1Queue: SCV must be >= 0");
    if (rho_ >= 1.0)
        throw std::invalid_argument("Mg1Queue: requires rho < 1");
}

double
Mg1Queue::mean_queueing_delay() const
{
    // E[S^2] = (1 + SCV) E[S]^2.
    const double second_moment =
        (1.0 + scv_) * mean_service_ * mean_service_;
    return lambda_ * second_moment / (2.0 * (1.0 - rho_));
}

double
Mg1Queue::mean_sojourn_time() const
{
    return mean_queueing_delay() + mean_service_;
}

double
Mg1Queue::mean_in_system() const
{
    return lambda_ * mean_sojourn_time();
}

} // namespace lognic::queueing
