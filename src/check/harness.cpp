#include "lognic/check/harness.hpp"

#include <utility>

namespace lognic::check {

namespace {

io::Json
options_to_json(const sim::SimOptions& opts, bool monotonicity)
{
    io::Json j;
    j.set("duration", opts.duration);
    j.set("warmup_fraction", opts.warmup_fraction);
    j.set("seed", static_cast<double>(opts.seed));
    j.set("exponential_service", opts.exponential_service);
    j.set("poisson_arrivals", opts.poisson_arrivals);
    j.set("monotonicity", monotonicity);
    return j;
}

sim::SimOptions
options_from_json(const io::Json& j)
{
    sim::SimOptions opts;
    opts.duration = j.number_or("duration", opts.duration);
    opts.warmup_fraction =
        j.number_or("warmup_fraction", opts.warmup_fraction);
    opts.seed =
        static_cast<std::uint64_t>(j.number_or("seed", 42.0));
    if (j.contains("exponential_service"))
        opts.exponential_service = j.at("exponential_service").as_bool();
    if (j.contains("poisson_arrivals"))
        opts.poisson_arrivals = j.at("poisson_arrivals").as_bool();
    return opts;
}

io::Json
spec_json(const std::string& name, const io::Scenario& sc,
          const sim::SimOptions& opts, bool monotonicity)
{
    io::Json j;
    j.set("name", name);
    j.set("options", options_to_json(opts, monotonicity));
    j.set("scenario", io::to_json(sc));
    return j;
}

/**
 * Shrink a failing spec: try cheaper variants in order (shorter horizon
 * twice, then a single-class restriction, then dropping the monotonicity
 * ladder) and keep each reduction that still fails *some* oracle. The
 * result is the smallest variant this greedy pass found — a handful of
 * extra runs, not a full delta-debugging loop, which is the right cost
 * for a default-on feature.
 */
io::Json
minimize_spec(const std::string& name, io::Scenario sc,
              sim::SimOptions opts, bool monotonicity,
              const CheckOptions& copts, std::uint64_t* sims_run)
{
    const auto still_fails = [&](const io::Scenario& s,
                                 const sim::SimOptions& o, bool mono) {
        return !check_scenario(s, o, copts, mono, sims_run).empty();
    };
    for (int halvings = 0; halvings < 2; ++halvings) {
        sim::SimOptions shorter = opts;
        shorter.duration = opts.duration / 2.0;
        if (still_fails(sc, shorter, monotonicity))
            opts = shorter;
        else
            break;
    }
    if (sc.traffic.classes().size() > 1) {
        io::Scenario narrowed = sc;
        narrowed.traffic = sc.traffic.class_profile(0);
        if (still_fails(narrowed, opts, monotonicity))
            sc = std::move(narrowed);
    }
    if (monotonicity && still_fails(sc, opts, false))
        monotonicity = false;
    return spec_json(name, sc, opts, monotonicity);
}

/// Run one trial/corpus unit to a self-contained outcome (the unit of
/// checkpoint journaling).
TrialOutcome
run_one_outcome(const CheckOptions& copts, const std::string& name,
                std::uint64_t generator_seed, bool single_queue,
                const io::Scenario& sc, const sim::SimOptions& opts,
                bool monotonicity)
{
    TrialOutcome out;
    out.single_queue = single_queue;
    std::vector<Violation> violations =
        check_scenario(sc, opts, copts, monotonicity, &out.sims_run);
    if (violations.empty())
        return out;
    out.violations = violations.size();
    out.failed = true;
    out.failure.name = name;
    out.failure.generator_seed = generator_seed;
    out.failure.single_queue = single_queue;
    out.failure.minimal_spec = copts.minimize
        ? minimize_spec(name, sc, opts, monotonicity, copts,
                        &out.sims_run)
        : spec_json(name, sc, opts, monotonicity);
    out.failure.violations = std::move(violations);
    return out;
}

/// Fold a unit's outcome — fresh or replayed — into the report.
void
apply_outcome(CheckReport& report, const TrialOutcome& out)
{
    report.sims_run += out.sims_run;
    report.violations += out.violations;
    if (out.failed)
        report.failures.push_back(out.failure);
}

void
run_one(CheckReport& report, const CheckOptions& copts,
        const std::string& key, const std::string& name,
        std::uint64_t generator_seed, bool single_queue,
        const io::Scenario& sc, const sim::SimOptions& opts,
        bool monotonicity)
{
    TrialOutcome out = run_one_outcome(copts, name, generator_seed,
                                       single_queue, sc, opts,
                                       monotonicity);
    apply_outcome(report, out);
    if (copts.on_trial_complete)
        copts.on_trial_complete(key, out);
}

} // namespace

io::Json
to_json(const CorpusEntry& entry)
{
    return spec_json(entry.name, entry.scenario, entry.options,
                     entry.monotonicity);
}

CorpusEntry
corpus_entry_from_json(const io::Json& j)
{
    CorpusEntry entry{j.at("name").as_string(),
                      io::scenario_from_json(j.at("scenario"))};
    if (j.contains("options")) {
        entry.options = options_from_json(j.at("options"));
        if (j.at("options").contains("monotonicity"))
            entry.monotonicity =
                j.at("options").at("monotonicity").as_bool();
    }
    return entry;
}

io::Json
to_json(const CheckReport& report)
{
    io::Json j;
    j.set("trials", static_cast<double>(report.trials));
    j.set("corpus_entries", static_cast<double>(report.corpus_entries));
    j.set("single_queue_trials",
          static_cast<double>(report.single_queue_trials));
    j.set("sims_run", static_cast<double>(report.sims_run));
    j.set("violations", static_cast<double>(report.violations));
    io::Json failures;
    for (const auto& f : report.failures) {
        io::Json fj;
        fj.set("name", f.name);
        fj.set("generator_seed", static_cast<double>(f.generator_seed));
        fj.set("single_queue", f.single_queue);
        io::Json vs;
        for (const auto& v : f.violations)
            vs.push_back(to_json(v));
        fj.set("violations", vs);
        fj.set("minimal_spec", f.minimal_spec);
        failures.push_back(fj);
    }
    if (report.failures.empty())
        failures = io::Json{io::JsonArray{}};
    j.set("failures", failures);
    return j;
}

CheckReport
merge(CheckReport a, const CheckReport& b)
{
    a.trials += b.trials;
    a.corpus_entries += b.corpus_entries;
    a.single_queue_trials += b.single_queue_trials;
    a.sims_run += b.sims_run;
    a.violations += b.violations;
    a.failures.insert(a.failures.end(), b.failures.begin(),
                      b.failures.end());
    return a;
}

std::vector<Violation>
check_scenario(const io::Scenario& sc, const sim::SimOptions& opts,
               const CheckOptions& copts, bool run_monotonicity,
               std::uint64_t* sims_run)
{
    const sim::SimResult res =
        sim::simulate(sc.hw, sc.graph, sc.traffic, opts);
    if (sims_run)
        ++*sims_run;
    std::vector<Violation> out =
        check_invariants(sc, opts, res, copts.invariants);
    for (auto& v : check_model_vs_sim(sc, res, copts.conformance))
        out.push_back(std::move(v));
    for (auto& v :
         check_closed_forms(sc, opts, res, copts.conformance))
        out.push_back(std::move(v));
    if (run_monotonicity && copts.monotonicity)
        for (auto& v : check_latency_monotonicity(
                 sc, opts, copts.conformance, sims_run))
            out.push_back(std::move(v));
    return out;
}

CheckReport
run_trials(const CheckOptions& copts)
{
    CheckReport report;
    for (std::uint64_t i = 0; i < copts.trials; ++i) {
        const std::string key = "trial:" + std::to_string(i);
        if (copts.resume_lookup) {
            TrialOutcome done;
            if (copts.resume_lookup(key, done)) {
                // Journaled outcome: replay without even regenerating
                // the scenario — the outcome carries everything the
                // report needs.
                ++report.trials;
                if (done.single_queue)
                    ++report.single_queue_trials;
                apply_outcome(report, done);
                continue;
            }
        }
        const std::uint64_t trial_seed =
            runner::derive_seed(copts.seed, i);
        const GeneratedScenario gen =
            generate_scenario(trial_seed, copts.generator);
        ++report.trials;
        if (gen.single_queue)
            ++report.single_queue_trials;
        sim::SimOptions opts;
        opts.duration = copts.duration;
        opts.warmup_fraction = copts.warmup_fraction;
        // The simulation seed derives from the trial seed on a separate
        // index so scenario shape and sample path are independent draws.
        opts.seed = runner::derive_seed(trial_seed, 1);
        run_one(report, copts, key, "trial-" + std::to_string(i),
                trial_seed, gen.single_queue, gen.scenario, opts,
                copts.monotonicity);
    }
    return report;
}

CheckReport
replay_corpus(const std::vector<CorpusEntry>& entries,
              const CheckOptions& copts)
{
    CheckReport report;
    for (const auto& entry : entries) {
        ++report.corpus_entries;
        const std::string key = "corpus:" + entry.name;
        if (copts.resume_lookup) {
            TrialOutcome done;
            if (copts.resume_lookup(key, done)) {
                apply_outcome(report, done);
                continue;
            }
        }
        run_one(report, copts, key, entry.name, 0, false, entry.scenario,
                entry.options, entry.monotonicity);
    }
    return report;
}

} // namespace lognic::check
