#include "lognic/check/conformance.hpp"

#include <algorithm>
#include <cmath>

#include "lognic/core/model.hpp"
#include "lognic/queueing/mg1.hpp"
#include "lognic/queueing/mm1n.hpp"

namespace lognic::check {

namespace {

void
band(std::vector<Violation>& out, double measured, double expected,
     double tolerance, const char* oracle, const std::string& subject,
     const char* message)
{
    if (std::abs(measured - expected) <= tolerance)
        return;
    out.push_back(
        Violation{oracle, subject, message, measured, expected, tolerance});
}

void
upper(std::vector<Violation>& out, double measured, double limit,
      const char* oracle, const std::string& subject, const char* message)
{
    if (measured <= limit)
        return;
    out.push_back(Violation{oracle, subject, message, measured, limit, 0.0});
}

} // namespace

std::vector<Violation>
check_model_vs_sim(const io::Scenario& sc, const sim::SimResult& res,
                   const ConformanceTolerances& tol)
{
    std::vector<Violation> out;
    const core::Model model(sc.hw);
    const core::Report report = model.estimate(sc.graph, sc.traffic);

    const double delivered = res.delivered.gbps();
    const double capacity = report.throughput.capacity.gbps();
    const double achieved = report.throughput.achieved.gbps();

    upper(out, delivered,
          capacity * (1.0 + tol.capacity_rel) + tol.capacity_abs_gbps,
          "conformance.model.capacity", "",
          "simulated goodput exceeds modelled capacity");
    band(out, delivered, achieved,
         tol.goodput_rel * achieved + tol.goodput_abs_gbps,
         "conformance.model.goodput", "",
         "simulated goodput diverges from modelled achieved throughput");

    if (res.completed >= tol.min_completed) {
        const double sim_us = res.mean_latency.micros();
        const double model_us = report.latency.mean.micros();
        // Load-aware upper factor (see ConformanceTolerances): the higher
        // the busiest vertex ran, the further the DES sojourn mean may
        // legitimately sit above the model's truncated-queue estimate.
        double rho_hat = 0.0;
        for (const auto& vs : res.vertex_stats)
            rho_hat = std::max(rho_hat, vs.utilization);
        const double factor_high = tol.latency_factor_high
            + tol.latency_rho_gain * rho_hat
                / (1.0 - std::min(rho_hat, tol.latency_rho_knee));
        upper(out, sim_us, model_us * factor_high + tol.latency_abs_us,
              "conformance.model.latency_high", "",
              "simulated mean latency far above model estimate");
        upper(out, model_us / tol.latency_factor_low - tol.latency_abs_us,
              sim_us, "conformance.model.latency_low", "",
              "simulated mean latency far below model estimate");
    }

    if (sc.traffic.classes().size() == 1) {
        // For a single class the byte drop fraction equals the packet
        // drop probability. The model predicts loss through two terms:
        // the fluid excess over capacity (achieved/offered) and the
        // finite-queue blocking the latency side computes per vertex —
        // below capacity only the latter is non-zero, and real queues at
        // rho ~ 0.9 do block a few percent.
        const double admitted =
            std::min(sc.traffic.ingress_bandwidth().gbps(),
                     sc.hw.line_rate().gbps());
        if (admitted > 0.0) {
            const double fluid_drop =
                std::max(0.0, 1.0 - achieved / admitted);
            const double blocking =
                std::min(1.0, report.latency.max_drop_probability);
            const double model_drop = std::max(fluid_drop, blocking);
            band(out, res.drop_rate, model_drop, tol.drop_abs,
                 "conformance.model.drop", "",
                 "simulated drop rate diverges from model prediction");
        }
    }
    return out;
}

std::optional<SingleQueueView>
single_queue_view(const io::Scenario& sc, const sim::SimOptions& opts)
{
    // Stochastic regime: Poisson arrivals, stochastic service, no bursts,
    // no faults — the assumptions the closed forms are derived under.
    if (!opts.poisson_arrivals || !opts.exponential_service
        || opts.burst.enabled || !opts.faults.empty())
        return std::nullopt;
    if (sc.traffic.classes().size() != 1)
        return std::nullopt;
    if (sc.graph.vertex_count() != 3)
        return std::nullopt;

    std::optional<core::VertexId> ip_vertex;
    for (core::VertexId v = 0; v < sc.graph.vertex_count(); ++v) {
        const core::Vertex& vx = sc.graph.vertex(v);
        switch (vx.kind) {
          case core::VertexKind::kIngress:
          case core::VertexKind::kEgress:
            continue;
          case core::VertexKind::kIp:
            if (ip_vertex)
                return std::nullopt;
            ip_vertex = v;
            continue;
          default:
            return std::nullopt;
        }
    }
    if (!ip_vertex)
        return std::nullopt;
    const core::Vertex& vx = sc.graph.vertex(*ip_vertex);
    // Zero-overhead vertex, free transfers on every edge: packets spend
    // time nowhere but this queue.
    if (vx.params.overhead.seconds() != 0.0)
        return std::nullopt;
    for (core::EdgeId e = 0; e < sc.graph.edge_count(); ++e) {
        const core::EdgeParams& ep = sc.graph.edge(e).params;
        if (ep.delta != 1.0 || ep.alpha != 0.0 || ep.beta != 0.0
            || ep.dedicated_bw)
            return std::nullopt;
    }
    const auto shape = resolve_shape(sc, *ip_vertex, true);
    if (!shape || shape->engines != 1 || shape->queue_count != 1)
        return std::nullopt;
    if (shape->service_scv <= 0.0)
        return std::nullopt; // M/D/1/N: not covered by these forms

    SingleQueueView view;
    view.vertex = vx.name;
    view.mu = 1.0 / shape->service_mean;
    view.capacity = shape->capacity;
    view.scv = shape->service_scv;
    const double admitted_bytes =
        std::min(sc.traffic.ingress_bandwidth().bytes_per_sec(),
                 sc.hw.line_rate().bytes_per_sec());
    view.lambda = admitted_bytes / sc.traffic.classes()[0].size.bytes();
    return view;
}

std::vector<Violation>
check_closed_forms(const io::Scenario& sc, const sim::SimOptions& opts,
                   const sim::SimResult& res,
                   const ConformanceTolerances& tol)
{
    std::vector<Violation> out;
    const auto view = single_queue_view(sc, opts);
    if (!view)
        return out;
    const auto vs = std::find_if(
        res.vertex_stats.begin(), res.vertex_stats.end(),
        [&](const sim::VertexStats& s) { return s.name == view->vertex; });
    if (vs == res.vertex_stats.end() || res.completed < tol.min_completed)
        return out;
    const double rho = view->lambda / view->mu;

    if (view->scv == 1.0) {
        // The simulated vertex IS an M/M/1/N queue: Poisson arrivals,
        // exponential service, one server, capacity N including the one
        // in service. All deviations are finite-horizon estimator noise.
        const queueing::Mm1nQueue q(view->lambda, view->mu,
                                    view->capacity);
        band(out, vs->mean_occupancy, q.mean_in_system(),
             tol.mm1n_occupancy_rel * q.mean_in_system()
                 + tol.mm1n_occupancy_abs,
             "conformance.mm1n.occupancy", view->vertex,
             "simulated occupancy diverges from M/M/1/N mean");
        band(out, vs->utilization, q.utilization(),
             tol.mm1n_utilization_abs, "conformance.mm1n.utilization",
             view->vertex,
             "simulated utilization diverges from M/M/1/N 1 - P0");
        band(out, res.drop_rate, q.blocking_probability(),
             tol.mm1n_drop_abs, "conformance.mm1n.blocking",
             view->vertex,
             "simulated drop rate diverges from M/M/1/N blocking");
        band(out, res.mean_latency.seconds(), q.mean_sojourn_time(),
             tol.mm1n_sojourn_rel * q.mean_sojourn_time(),
             "conformance.mm1n.sojourn", view->vertex,
             "simulated mean latency diverges from M/M/1/N sojourn");
    } else if (rho < 0.9 && view->capacity >= 64) {
        // Gamma service with scv < 1: M/G/1 via Pollaczek-Khinchine.
        // Valid only while blocking is negligible (deep queue, rho away
        // from 1) — the generator enforces both for its M/G/1 draws; any
        // other scenario is simply skipped rather than mis-compared.
        const queueing::Mg1Queue q(view->lambda, 1.0 / view->mu,
                                   view->scv);
        band(out, res.mean_latency.seconds(), q.mean_sojourn_time(),
             tol.mg1_sojourn_rel * q.mean_sojourn_time(),
             "conformance.mg1.sojourn", view->vertex,
             "simulated mean latency diverges from P-K sojourn");
        band(out, vs->mean_occupancy, q.mean_in_system(),
             tol.mm1n_occupancy_rel * q.mean_in_system()
                 + tol.mm1n_occupancy_abs,
             "conformance.mg1.occupancy", view->vertex,
             "simulated occupancy diverges from M/G/1 mean");
    }
    return out;
}

std::vector<Violation>
check_latency_monotonicity(const io::Scenario& sc,
                           const sim::SimOptions& opts,
                           const ConformanceTolerances& tol,
                           std::uint64_t* sims_run)
{
    std::vector<Violation> out;
    const double factors[] = {0.6, 1.0, 1.4};
    double prev_us = -1.0;
    double prev_factor = 0.0;
    for (const double f : factors) {
        core::TrafficProfile traffic = sc.traffic;
        traffic.set_ingress_bandwidth(Bandwidth{
            sc.traffic.ingress_bandwidth().bits_per_sec() * f});
        const sim::SimResult r =
            sim::simulate(sc.hw, sc.graph, traffic, opts);
        if (sims_run)
            ++*sims_run;
        if (r.completed < tol.min_completed)
            continue; // too few samples for the mean to be meaningful
        const double us = r.mean_latency.micros();
        if (prev_us >= 0.0) {
            const double floor_us = prev_us
                    * (1.0 - tol.monotonic_slack_rel)
                - tol.monotonic_slack_abs_us;
            if (us < floor_us)
                out.push_back(Violation{
                    "conformance.monotonic", sc.graph.name(),
                    "mean latency decreased when offered load rose from "
                        + std::to_string(prev_factor) + "x to "
                        + std::to_string(f) + "x",
                    us, prev_us, prev_us - floor_us});
        }
        prev_us = us;
        prev_factor = f;
    }
    return out;
}

} // namespace lognic::check
