#include "lognic/check/generate.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "lognic/core/model.hpp"

namespace lognic::check {

namespace {

core::IpSpec
draw_ip(CheckRng& rng, const GeneratorConfig& cfg, const std::string& name)
{
    core::IpSpec spec;
    spec.name = name;
    spec.kind = rng.bernoulli(0.5) ? core::IpKind::kCpuCores
                                   : core::IpKind::kAccelerator;
    core::ServiceModel engine;
    engine.fixed_cost = Seconds::from_micros(
        rng.uniform(cfg.min_fixed_cost_us, cfg.max_fixed_cost_us));
    engine.byte_rate = Bandwidth::from_gigabytes_per_sec(rng.uniform(
        cfg.min_byte_rate_gigabytes, cfg.max_byte_rate_gigabytes));
    spec.roofline = core::ExtendedRoofline(engine, {});
    spec.max_engines = rng.uniform_u32(1, cfg.max_engines);
    spec.default_queue_capacity =
        rng.uniform_u32(cfg.min_queue_capacity, cfg.max_queue_capacity);
    // Service-time variability mix: mostly exponential (the paper's
    // Eq. 9-12 assumption), with gamma and deterministic engines so the
    // M/G/1 path and the simulator's non-exponential draws get exercise.
    const double r = rng.uniform01();
    spec.service_scv = r < 0.6 ? 1.0 : (r < 0.85 ? 0.25 : 0.0);
    return spec;
}

/// Generous shared fabric: the interesting bottleneck should be an IP (so
/// the drawn load fraction maps onto its utilization), not the fabric.
core::HardwareModel
draw_hardware(CheckRng& rng, std::uint64_t seed)
{
    core::HardwareModel hw(
        "check-" + std::to_string(seed),
        Bandwidth::from_gbps(rng.uniform(300.0, 800.0)),
        Bandwidth::from_gbps(rng.uniform(200.0, 600.0)),
        Bandwidth::from_gbps(rng.uniform(150.0, 400.0)));
    return hw;
}

GeneratedScenario
generate_single_queue(CheckRng& rng, std::uint64_t seed,
                      const GeneratorConfig& cfg)
{
    core::HardwareModel hw = draw_hardware(rng, seed);
    core::IpSpec spec = draw_ip(rng, cfg, "worker");
    // Single server: the M/M/1/N and M/G/1 closed forms describe one
    // engine. Deterministic service would be M/D/1/N, which the latency
    // model approximates rather than matches, so restrict to exponential
    // (M/M/1/N) and gamma (M/G/1, compared only where blocking vanishes).
    spec.max_engines = 1;
    const bool exponential = rng.bernoulli(0.65);
    spec.service_scv = exponential ? 1.0 : 0.25;
    // The P-K comparison assumes no blocking: give the M/G/1 case a deep
    // queue. The M/M/1/N comparison wants the finite-N effects visible.
    spec.default_queue_capacity = exponential
        ? rng.uniform_u32(cfg.min_queue_capacity, cfg.max_queue_capacity)
        : rng.uniform_u32(128, 256);
    const core::IpId ip = hw.add_ip(spec);

    core::ExecutionGraph g("single-queue");
    const auto in = g.add_ingress();
    core::VertexParams params;
    params.parallelism = 1;
    const auto v = g.add_ip_vertex("worker", ip, params);
    const auto eg = g.add_egress();
    g.add_edge(in, v);  // default edge: delta = 1, free transfer
    g.add_edge(v, eg);

    const double size_bytes = std::floor(
        rng.uniform(cfg.min_packet_bytes, cfg.max_packet_bytes));
    const double mean_service =
        spec.roofline.engine().service_time(Bytes{size_bytes}).seconds();
    const double u = exponential
        ? rng.uniform(cfg.rho_min, cfg.rho_max)
        : rng.uniform(cfg.rho_min, std::min(cfg.rho_max, 0.8));
    // One server at rate mu = 1/E[S]: lambda = u * mu pins rho = u.
    const double lambda = u / mean_service;

    core::TrafficProfile traffic = core::TrafficProfile::fixed(
        Bytes{size_bytes},
        Bandwidth::from_bytes_per_sec(lambda * size_bytes));

    return GeneratedScenario{
        io::Scenario{std::move(hw), std::move(g), std::move(traffic)},
        true, u};
}

GeneratedScenario
generate_dag(CheckRng& rng, std::uint64_t seed, const GeneratorConfig& cfg)
{
    core::HardwareModel hw = draw_hardware(rng, seed);
    const std::uint32_t nips = rng.uniform_u32(1, cfg.max_ips);
    for (std::uint32_t i = 0; i < nips; ++i)
        hw.add_ip(draw_ip(rng, cfg, "ip" + std::to_string(i)));

    core::ExecutionGraph g("check-dag");
    const auto in = g.add_ingress();
    const auto eg = g.add_egress();

    // Layered DAG with delta-weighted fan-out. `share[u]` tracks the
    // fraction of ingress data W flowing through vertex u; an edge u -> t
    // carries delta = share[u] * (normalized branch weight), keeping the
    // Eq. 1 flow balance exact by construction.
    const std::uint32_t layers = rng.uniform_u32(1, cfg.max_layers);
    std::vector<core::VertexId> prev{in};
    std::vector<double> prev_share{1.0};
    std::uint32_t vertex_no = 0;
    for (std::uint32_t l = 0; l < layers; ++l) {
        const std::uint32_t width = rng.uniform_u32(1, cfg.max_width);
        std::vector<core::VertexId> layer;
        for (std::uint32_t w = 0; w < width; ++w) {
            const core::IpId ip = rng.uniform_u32(0, nips - 1);
            core::VertexParams params;
            params.parallelism =
                rng.uniform_u32(1, hw.ip(ip).max_engines);
            params.queue_capacity = rng.uniform_u32(
                cfg.min_queue_capacity, cfg.max_queue_capacity);
            layer.push_back(g.add_ip_vertex(
                "v" + std::to_string(vertex_no++), ip, params));
        }
        std::vector<double> layer_share(layer.size(), 0.0);
        for (std::size_t u = 0; u < prev.size(); ++u) {
            // Branch weights for this source across the layer.
            std::vector<double> weights(layer.size());
            double total = 0.0;
            for (double& wgt : weights) {
                wgt = rng.uniform(0.2, 1.0);
                total += wgt;
            }
            for (std::size_t t = 0; t < layer.size(); ++t) {
                const double delta =
                    prev_share[u] * weights[t] / total;
                if (delta <= 1e-9)
                    continue;
                core::EdgeParams ep;
                ep.delta = delta;
                if (rng.bernoulli(cfg.shared_medium_fraction))
                    ep.alpha = delta;
                if (rng.bernoulli(cfg.shared_medium_fraction))
                    ep.beta = delta;
                g.add_edge(prev[u], layer[t], ep);
                layer_share[t] += delta;
            }
        }
        prev = std::move(layer);
        prev_share = std::move(layer_share);
    }
    for (std::size_t u = 0; u < prev.size(); ++u) {
        core::EdgeParams ep;
        ep.delta = prev_share[u];
        g.add_edge(prev[u], eg, ep);
    }

    std::vector<core::PacketClass> classes(
        rng.uniform_u32(1, cfg.max_classes));
    for (auto& c : classes) {
        c.size = Bytes{std::floor(
            rng.uniform(cfg.min_packet_bytes, cfg.max_packet_bytes))};
        c.weight = rng.uniform(0.2, 1.0);
    }
    core::TrafficProfile traffic = core::TrafficProfile::mixed(
        std::move(classes), Bandwidth::from_gbps(1.0));

    // The model's capacity is load-independent, so one probe evaluation
    // gives the saturation point; scaling it by the drawn u pins the
    // binding vertex's utilization to the target regime.
    const double u = rng.uniform(cfg.rho_min, cfg.rho_max);
    const core::Model model(hw);
    const Bandwidth capacity = model.throughput(g, traffic).capacity;
    traffic.set_ingress_bandwidth(Bandwidth{capacity.bits_per_sec() * u});

    return GeneratedScenario{
        io::Scenario{std::move(hw), std::move(g), std::move(traffic)},
        false, u};
}

} // namespace

GeneratedScenario
generate_scenario(std::uint64_t seed, const GeneratorConfig& cfg)
{
    CheckRng rng(seed);
    GeneratedScenario out = rng.bernoulli(cfg.single_queue_fraction)
        ? generate_single_queue(rng, seed, cfg)
        : generate_dag(rng, seed, cfg);
    // A generated scenario that fails validation is a generator bug;
    // surface it at the source instead of deep inside a comparator.
    out.scenario.graph.validate(out.scenario.hw);
    return out;
}

} // namespace lognic::check
