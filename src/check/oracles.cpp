#include "lognic/check/oracles.hpp"

#include "lognic/io/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace lognic::check {

namespace {

/// Measurement window (warmup_end, horizon]. The simulator sets
/// sim_time_reached to the horizon for completed runs and to the
/// truncation instant otherwise, so this is the window every windowed
/// statistic was normalized over.
struct Window {
    double warmup_end{0.0};
    double length{0.0};
};

Window
measurement_window(const sim::SimOptions& opts, const sim::SimResult& res)
{
    Window w;
    w.warmup_end = opts.duration * opts.warmup_fraction;
    w.length = res.sim_time_reached - w.warmup_end;
    return w;
}

class Collector {
  public:
    Collector(std::vector<Violation>& out, const InvariantTolerances& tol)
        : out_(out), tol_(tol)
    {
    }

    void
    require(bool ok, const std::string& oracle, const std::string& subject,
            const std::string& message, double measured, double expected,
            double tolerance)
    {
        if (ok)
            return;
        out_.push_back(Violation{oracle, subject, message, measured,
                                 expected, tolerance});
    }

    /// |measured - expected| <= tolerance.
    void
    near(double measured, double expected, double tolerance,
         const std::string& oracle, const std::string& subject,
         const std::string& message)
    {
        require(std::abs(measured - expected) <= tolerance, oracle,
                subject, message, measured, expected, tolerance);
    }

    /// Exact up to relative floating-point slack.
    void
    close(double measured, double expected, const std::string& oracle,
          const std::string& subject, const std::string& message)
    {
        const double tolerance =
            tol_.rel_eps * std::max(1.0, std::abs(expected));
        near(measured, expected, tolerance, oracle, subject, message);
    }

    void
    equal_count(std::uint64_t measured, std::uint64_t expected,
                const std::string& oracle, const std::string& subject,
                const std::string& message)
    {
        require(measured == expected, oracle, subject, message,
                static_cast<double>(measured),
                static_cast<double>(expected), 0.0);
    }

  private:
    std::vector<Violation>& out_;
    const InvariantTolerances& tol_;
};

void
check_conservation(Collector& c, const sim::SimResult& res)
{
    const std::uint64_t accounted =
        res.completed_total + res.dropped_total + res.in_flight;
    c.equal_count(res.generated, accounted, "invariant.conservation", "",
                  "generated != completed_total + dropped_total + "
                  "in_flight");
    c.require(res.completed <= res.completed_total,
              "invariant.conservation", "completed",
              "windowed completions exceed lifetime completions",
              static_cast<double>(res.completed),
              static_cast<double>(res.completed_total), 0.0);
    c.require(res.dropped <= res.dropped_total, "invariant.conservation",
              "dropped", "windowed drops exceed lifetime drops",
              static_cast<double>(res.dropped),
              static_cast<double>(res.dropped_total), 0.0);
}

void
check_ranges(Collector& c, const io::Scenario& sc,
             const sim::SimOptions& opts, const sim::SimResult& res,
             const InvariantTolerances& tol)
{
    c.require(res.drop_rate >= 0.0 && res.drop_rate <= 1.0,
              "invariant.range", "drop_rate", "drop_rate outside [0, 1]",
              res.drop_rate, 0.5, 0.5);
    c.require(res.mean_latency.seconds() >= 0.0, "invariant.range",
              "mean_latency", "negative latency",
              res.mean_latency.seconds(), 0.0, 0.0);
    c.require(
        res.p50_latency.seconds() <= res.p99_latency.seconds()
            + tol.rel_eps * std::max(1.0, res.p99_latency.seconds()),
        "invariant.range", "quantiles", "p50 exceeds p99",
        res.p50_latency.seconds(), res.p99_latency.seconds(), 0.0);
    if (res.completed == 0) {
        // Empty-window sentinel contract: no completions, no latency.
        c.close(res.mean_latency.seconds(), 0.0, "invariant.sentinel",
                "mean_latency",
                "latency nonzero with zero completions");
    }

    for (const auto& vs : res.vertex_stats) {
        const auto v = sc.graph.find_vertex(vs.name);
        if (!v)
            continue;
        const auto shape =
            resolve_shape(sc, *v, opts.exponential_service);
        if (!shape)
            continue;
        const double util_slack = tol.rel_eps;
        c.require(vs.utilization >= -util_slack
                      && vs.utilization <= 1.0 + util_slack,
                  "invariant.range", vs.name,
                  "utilization outside [0, 1]", vs.utilization, 0.5,
                  0.5);
        c.require(vs.mean_occupancy >= -tol.rel_eps, "invariant.range",
                  vs.name, "negative mean occupancy", vs.mean_occupancy,
                  0.0, 0.0);
        // Mean occupancy can never fall below the mean busy-server count
        // (the queued area is pointwise non-negative) ...
        const double busy =
            vs.utilization * static_cast<double>(shape->engines);
        c.require(vs.mean_occupancy + tol.rel_eps * std::max(1.0, busy)
                      >= busy,
                  "invariant.range", vs.name,
                  "occupancy below busy-server mean", vs.mean_occupancy,
                  busy, tol.rel_eps);
        // ... nor exceed what the buffers plus engines can physically
        // hold at any instant.
        const double bound = static_cast<double>(shape->queue_count)
                * static_cast<double>(shape->per_queue_capacity)
            + static_cast<double>(shape->engines);
        c.require(vs.mean_occupancy <= bound * (1.0 + tol.rel_eps),
                  "invariant.range", vs.name,
                  "occupancy exceeds buffer + engine bound",
                  vs.mean_occupancy, bound, 0.0);
    }
}

void
check_metrics_consistency(Collector& c, const sim::SimResult& res)
{
    const auto& m = res.metrics;
    const auto counter = [&](const char* name, std::uint64_t field) {
        c.equal_count(m.counter_or_zero(name), field,
                      "invariant.metrics", name,
                      "snapshot counter disagrees with result field");
    };
    counter("sim.generated", res.generated);
    counter("sim.completed", res.completed);
    counter("sim.dropped", res.dropped);
    counter("sim.completed_total", res.completed_total);
    counter("sim.dropped_total", res.dropped_total);
    counter("sim.in_flight", res.in_flight);
    counter("sim.events_executed", res.events_executed);

    const auto gauge = [&](const char* name, double field) {
        c.close(m.gauge_or(name), field, "invariant.metrics", name,
                "snapshot gauge disagrees with result field");
    };
    gauge("sim.drop_rate", res.drop_rate);
    gauge("sim.delivered_gbps", res.delivered.gbps());
    gauge("sim.mean_latency_us", res.mean_latency.micros());
    gauge("sim.p50_latency_us", res.p50_latency.micros());
    gauge("sim.p99_latency_us", res.p99_latency.micros());
    gauge("sim.truncated", res.truncated ? 1.0 : 0.0);

    // Drop causes must decompose the lifetime total exactly.
    const std::uint64_t by_cause =
        m.counter_or_zero("sim.dropped_by_cause.overflow")
        + m.counter_or_zero("sim.dropped_by_cause.burst")
        + m.counter_or_zero("sim.dropped_by_cause.engine_fail");
    c.equal_count(by_cause, res.dropped_total, "invariant.metrics",
                  "sim.dropped_by_cause",
                  "drop causes do not sum to dropped_total");

    // The latency histogram and the completion counter are filled from
    // the same warmup-gated event, so their totals must agree — this is
    // the warmup-window accounting consistency check for the histogram
    // path.
    const auto hist = m.histograms.find("sim.latency_us");
    if (hist != m.histograms.end())
        c.equal_count(hist->second.total, res.completed,
                      "invariant.metrics", "sim.latency_us",
                      "latency histogram total != windowed completions");

    for (const auto& vs : res.vertex_stats) {
        c.equal_count(m.counter_or_zero("vertex." + vs.name + ".served"),
                      vs.served, "invariant.metrics", vs.name,
                      "snapshot served disagrees with vertex stats");
        c.equal_count(
            m.counter_or_zero("vertex." + vs.name + ".dropped"),
            vs.dropped, "invariant.metrics", vs.name,
            "snapshot dropped disagrees with vertex stats");
        c.close(m.gauge_or("vertex." + vs.name + ".utilization"),
                vs.utilization, "invariant.metrics", vs.name,
                "snapshot utilization disagrees with vertex stats");
        c.close(m.gauge_or("vertex." + vs.name + ".occupancy"),
                vs.mean_occupancy, "invariant.metrics", vs.name,
                "snapshot occupancy disagrees with vertex stats");
    }
}

void
check_window_accounting(Collector& c, const sim::SimOptions& opts,
                        const sim::SimResult& res,
                        const InvariantTolerances& tol)
{
    const auto& m = res.metrics;
    const std::uint64_t offered = m.counter_or_zero("sim.offered");
    c.require(offered <= res.generated, "invariant.window", "sim.offered",
              "windowed arrivals exceed lifetime generated",
              static_cast<double>(offered),
              static_cast<double>(res.generated), 0.0);
    // drop_rate is defined as windowed drops over windowed arrivals.
    const double expected_rate = offered > 0
        ? static_cast<double>(res.dropped) / static_cast<double>(offered)
        : 0.0;
    c.close(res.drop_rate, expected_rate, "invariant.window", "drop_rate",
            "drop_rate != dropped / offered over the same window");

    // delivered_ops is windowed completions over the window length; the
    // identity closes the loop between the rate view and the count view.
    const Window w = measurement_window(opts, res);
    if (w.length > 0.0) {
        const double implied = res.delivered_ops.per_sec() * w.length;
        c.near(implied, static_cast<double>(res.completed),
               tol.rel_eps * std::max(1.0, static_cast<double>(
                                               res.completed))
                   + 1e-6,
               "invariant.window", "delivered_ops",
               "delivered_ops * window != completed");
    }
}

/**
 * Little's law applied to the servers of each vertex: the mean busy
 * engine count (utilization * D, measured over the post-warmup window)
 * must match the service-completion rate times E[S]. Valid when E[S] is
 * the same for every request the vertex served — single-class traffic
 * with no faults (slowdowns change E[S] mid-run) and no bursts.
 *
 * The vertex `served` counter spans the whole run while utilization is
 * windowed, so the completion rate is estimated as served / horizon.
 * With stationary arrivals the two rates differ only by the warmup
 * ramp-up (the queue starts empty), whose total completion deficit is
 * bounded by the system size — hence the explicit `ramp` allowance on
 * top of the little_sigmas statistical band (sum of served service
 * draws, variance scv * E[S]^2 each) and an edge allowance for requests
 * straddling the run boundaries.
 */
void
check_littles_law(Collector& c, const io::Scenario& sc,
                  const sim::SimOptions& opts, const sim::SimResult& res,
                  const InvariantTolerances& tol)
{
    if (sc.traffic.classes().size() != 1 || !opts.faults.empty()
        || opts.burst.enabled)
        return;
    const Window w = measurement_window(opts, res);
    const double horizon = res.sim_time_reached;
    if (w.length <= 0.0 || horizon <= 0.0)
        return;
    for (const auto& vs : res.vertex_stats) {
        if (vs.served < tol.min_served)
            continue;
        const auto v = sc.graph.find_vertex(vs.name);
        if (!v)
            continue;
        const auto shape =
            resolve_shape(sc, *v, opts.exponential_service);
        if (!shape)
            continue;
        const double mean_busy =
            vs.utilization * static_cast<double>(shape->engines);
        const double expected = static_cast<double>(vs.served)
            * shape->service_mean / horizon;
        const double sigma = shape->service_mean
            * std::sqrt(static_cast<double>(vs.served)
                        * std::max(shape->service_scv, 0.0))
            / horizon;
        const double edge = 8.0 * static_cast<double>(shape->engines)
            * shape->service_mean / horizon;
        const double system_bound =
            static_cast<double>(shape->queue_count)
                * static_cast<double>(shape->per_queue_capacity)
            + static_cast<double>(shape->engines);
        const double ramp =
            3.0 * system_bound * shape->service_mean / horizon;
        c.near(mean_busy, expected,
               tol.little_sigmas * sigma + edge + ramp
                   + tol.little_rel * expected
                   + tol.rel_eps * std::max(1.0, expected),
               "invariant.little", vs.name,
               "busy servers violate Little's law vs served rate");
    }
}

} // namespace

io::Json
to_json(const Violation& v)
{
    io::Json j;
    j.set("oracle", v.oracle);
    j.set("subject", v.subject);
    j.set("message", v.message);
    j.set("measured", v.measured);
    j.set("expected", v.expected);
    j.set("tolerance", v.tolerance);
    return j;
}

Violation
violation_from_json(const io::Json& j)
{
    Violation v;
    v.oracle = j.at("oracle").as_string();
    v.subject = j.at("subject").as_string();
    v.message = j.at("message").as_string();
    // Checkpoint journals add "*_bits" hex bit patterns next to the plain
    // numbers: the JSON writer emits null for non-finite doubles, so only
    // the bits form round-trips every value. Prefer it when present.
    if (j.contains("measured_bits")) {
        v.measured = io::double_from_hex(j.at("measured_bits").as_string(),
                                         "violation measured_bits");
        v.expected = io::double_from_hex(j.at("expected_bits").as_string(),
                                         "violation expected_bits");
        v.tolerance = io::double_from_hex(
            j.at("tolerance_bits").as_string(), "violation tolerance_bits");
    } else {
        v.measured = j.number_or("measured", 0.0);
        v.expected = j.number_or("expected", 0.0);
        v.tolerance = j.number_or("tolerance", 0.0);
    }
    return v;
}

std::optional<VertexShape>
resolve_shape(const io::Scenario& sc, core::VertexId v,
              bool exponential_service)
{
    const core::Vertex& vx = sc.graph.vertex(v);
    if (vx.kind == core::VertexKind::kIngress
        || vx.kind == core::VertexKind::kEgress)
        return std::nullopt;

    VertexShape shape;
    const Bytes req = sc.traffic.granularity(0);
    if (vx.kind == core::VertexKind::kRateLimiter) {
        shape.rate_limiter = true;
        shape.engines = 1;
        shape.capacity =
            std::max<std::uint32_t>(vx.params.queue_capacity, 1);
        shape.service_mean = (req / vx.rate_limit).seconds();
        shape.service_scv = exponential_service ? 1.0 : 0.0;
    } else {
        const core::IpSpec& spec = sc.hw.ip(vx.ip);
        shape.engines = vx.params.parallelism > 0
            ? vx.params.parallelism
            : spec.max_engines;
        shape.capacity = vx.params.queue_capacity > 0
            ? vx.params.queue_capacity
            : spec.default_queue_capacity;
        shape.service_mean =
            spec.roofline.engine().service_time(req).seconds()
            / (vx.params.partition * vx.params.acceleration);
        shape.service_scv =
            exponential_service ? spec.service_scv : 0.0;
    }
    const std::size_t indegree = sc.graph.in_degree(v);
    shape.queue_count =
        (vx.params.per_input_queues && indegree > 1) ? indegree : 1;
    shape.per_queue_capacity = std::max<std::uint32_t>(
        1,
        shape.capacity / static_cast<std::uint32_t>(shape.queue_count));
    return shape;
}

std::vector<Violation>
check_invariants(const io::Scenario& sc, const sim::SimOptions& opts,
                 const sim::SimResult& res,
                 const InvariantTolerances& tol)
{
    std::vector<Violation> out;
    Collector c(out, tol);
    check_conservation(c, res);
    check_ranges(c, sc, opts, res, tol);
    check_metrics_consistency(c, res);
    check_window_accounting(c, opts, res, tol);
    check_littles_law(c, sc, opts, res, tol);
    return out;
}

} // namespace lognic::check
