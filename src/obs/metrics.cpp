#include "lognic/obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lognic::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds))
{
    if (bounds_.empty())
        throw std::invalid_argument("Histogram: bounds must be non-empty");
    if (!std::is_sorted(bounds_.begin(), bounds_.end())
        || std::adjacent_find(bounds_.begin(), bounds_.end())
            != bounds_.end())
        throw std::invalid_argument(
            "Histogram: bounds must be strictly increasing");
    counts_.assign(bounds_.size() + 1, 0);
}

void
Histogram::record(double sample)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), sample);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++total_;
    sum_ += sample;
}

double
Histogram::mean() const
{
    return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
}

void
Histogram::restore(std::vector<std::uint64_t> counts, std::uint64_t total,
                   double sum)
{
    if (counts.size() != bounds_.size() + 1)
        throw std::invalid_argument(
            "Histogram::restore: counts do not match bucket layout");
    counts_ = std::move(counts);
    total_ = total;
    sum_ = sum;
}

std::uint64_t
MetricsSnapshot::counter_or_zero(const std::string& name) const
{
    const auto it = counters.find(name);
    return it != counters.end() ? it->second : 0;
}

double
MetricsSnapshot::gauge_or(const std::string& name, double fallback) const
{
    const auto it = gauges.find(name);
    return it != gauges.end() ? it->second : fallback;
}

io::Json
MetricsSnapshot::to_json() const
{
    io::JsonObject counters_json;
    for (const auto& [name, value] : counters)
        counters_json.emplace(name,
                              io::Json(static_cast<double>(value)));
    io::JsonObject gauges_json;
    for (const auto& [name, value] : gauges)
        gauges_json.emplace(name, io::Json(value));
    io::JsonObject hists_json;
    for (const auto& [name, h] : histograms) {
        io::JsonArray bounds;
        for (double b : h.bounds)
            bounds.emplace_back(b);
        io::JsonArray counts;
        for (std::uint64_t c : h.counts)
            counts.emplace_back(static_cast<double>(c));
        io::JsonObject hist;
        hist.emplace("bounds", io::Json(std::move(bounds)));
        hist.emplace("counts", io::Json(std::move(counts)));
        hist.emplace("total", io::Json(static_cast<double>(h.total)));
        hist.emplace("sum", io::Json(h.sum));
        hists_json.emplace(name, io::Json(std::move(hist)));
    }
    io::JsonObject o;
    o.emplace("counters", io::Json(std::move(counters_json)));
    o.emplace("gauges", io::Json(std::move(gauges_json)));
    o.emplace("histograms", io::Json(std::move(hists_json)));
    return io::Json(std::move(o));
}

MetricsSnapshot
aggregate(const std::vector<MetricsSnapshot>& snapshots)
{
    MetricsSnapshot out;
    std::map<std::string, std::pair<double, std::size_t>> gauge_sums;
    for (const auto& s : snapshots) {
        for (const auto& [name, value] : s.counters)
            out.counters[name] += value;
        for (const auto& [name, value] : s.gauges) {
            auto& [sum, n] = gauge_sums[name];
            sum += value;
            ++n;
        }
        for (const auto& [name, h] : s.histograms) {
            auto [it, inserted] = out.histograms.emplace(name, h);
            if (inserted)
                continue;
            HistogramSnapshot& acc = it->second;
            if (acc.bounds != h.bounds)
                throw std::invalid_argument(
                    "aggregate: histogram '" + name
                    + "' has mismatched bounds across snapshots");
            for (std::size_t i = 0; i < acc.counts.size(); ++i)
                acc.counts[i] += h.counts[i];
            acc.total += h.total;
            acc.sum += h.sum;
        }
    }
    for (const auto& [name, sum_n] : gauge_sums)
        out.gauges[name] = sum_n.first / static_cast<double>(sum_n.second);
    return out;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    return counters_[name];
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    return gauges_[name];
}

Histogram&
MetricsRegistry::histogram(const std::string& name,
                           std::vector<double> upper_bounds)
{
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        return histograms_
            .emplace(name, Histogram(std::move(upper_bounds)))
            .first->second;
    }
    if (it->second.bounds() != upper_bounds)
        throw std::invalid_argument(
            "MetricsRegistry: histogram '" + name
            + "' already exists with different bounds");
    return it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot s;
    for (const auto& [name, c] : counters_)
        s.counters.emplace(name, c.value());
    for (const auto& [name, g] : gauges_)
        s.gauges.emplace(name, g.value());
    for (const auto& [name, h] : histograms_)
        s.histograms.emplace(
            name, HistogramSnapshot{h.bounds(), h.counts(), h.total(),
                                    h.sum()});
    return s;
}

} // namespace lognic::obs
