#include "lognic/obs/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "lognic/core/vertex_analysis.hpp"

namespace lognic::obs {

namespace {

std::string
format_line(const char* fmt, ...)
{
    char buf[160];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    return buf;
}

io::Json
to_json(const VertexObservation& v)
{
    io::JsonObject o;
    o.emplace("name", io::Json(v.name));
    o.emplace("utilization", io::Json(v.utilization));
    o.emplace("mean_occupancy", io::Json(v.mean_occupancy));
    o.emplace("served", io::Json(static_cast<double>(v.served)));
    o.emplace("dropped", io::Json(static_cast<double>(v.dropped)));
    return io::Json(std::move(o));
}

} // namespace

std::vector<VertexObservation>
model_vertex_utilization(const core::ExecutionGraph& graph,
                         const core::HardwareModel& hw,
                         const core::TrafficProfile& traffic)
{
    std::vector<VertexObservation> out;
    for (core::VertexId v = 0; v < graph.vertex_count(); ++v) {
        const core::VertexAnalysis va =
            core::analyze_vertex(graph, hw, v, traffic);
        if (va.passthrough)
            continue;
        VertexObservation obs;
        obs.name = graph.vertex(v).name;
        obs.utilization = std::min(va.rho, 1.0);
        out.push_back(std::move(obs));
    }
    return out;
}

BottleneckReport
attribute(const std::vector<VertexObservation>& sim,
          const std::vector<VertexObservation>& model, std::size_t top_k)
{
    BottleneckReport report;
    report.top = sim;
    std::stable_sort(report.top.begin(), report.top.end(),
                     [](const VertexObservation& a,
                        const VertexObservation& b) {
                         if (a.utilization != b.utilization)
                             return a.utilization > b.utilization;
                         return a.mean_occupancy > b.mean_occupancy;
                     });
    if (report.top.size() > top_k)
        report.top.resize(top_k);

    std::map<std::string, double> model_util;
    for (const auto& m : model)
        model_util.emplace(m.name, m.utilization);
    for (const auto& s : sim) {
        const auto it = model_util.find(s.name);
        if (it == model_util.end())
            continue;
        VertexDelta d;
        d.name = s.name;
        d.sim_utilization = s.utilization;
        d.model_utilization = it->second;
        d.delta = s.utilization - it->second;
        report.deltas.push_back(std::move(d));
    }
    std::stable_sort(report.deltas.begin(), report.deltas.end(),
                     [](const VertexDelta& a, const VertexDelta& b) {
                         return std::abs(a.delta) > std::abs(b.delta);
                     });
    return report;
}

std::string
render(const BottleneckReport& report)
{
    std::string out;
    out += format_line("%-4s %-16s %10s %10s %10s %10s\n", "rank", "vertex",
                       "util", "occupancy", "served", "dropped");
    std::size_t rank = 1;
    for (const auto& v : report.top) {
        out += format_line("%-4zu %-16s %10.3f %10.2f %10llu %10llu\n",
                           rank++, v.name.c_str(), v.utilization,
                           v.mean_occupancy,
                           static_cast<unsigned long long>(v.served),
                           static_cast<unsigned long long>(v.dropped));
    }
    if (!report.deltas.empty()) {
        out += format_line("%-21s %10s %10s %10s\n", "model-vs-sim",
                           "sim", "model", "delta");
        for (const auto& d : report.deltas) {
            out += format_line("%-21s %10.3f %10.3f %+10.3f\n",
                               d.name.c_str(), d.sim_utilization,
                               d.model_utilization, d.delta);
        }
    }
    return out;
}

io::Json
to_json(const BottleneckReport& report)
{
    io::JsonArray top;
    for (const auto& v : report.top)
        top.push_back(to_json(v));
    io::JsonArray deltas;
    for (const auto& d : report.deltas) {
        io::JsonObject o;
        o.emplace("name", io::Json(d.name));
        o.emplace("sim_utilization", io::Json(d.sim_utilization));
        o.emplace("model_utilization", io::Json(d.model_utilization));
        o.emplace("delta", io::Json(d.delta));
        deltas.emplace_back(std::move(o));
    }
    io::JsonObject o;
    o.emplace("top", io::Json(std::move(top)));
    o.emplace("deltas", io::Json(std::move(deltas)));
    return io::Json(std::move(o));
}

void
publish_report(const core::Report& report, MetricsRegistry& registry)
{
    registry.gauge("model.capacity_gbps")
        .set(report.throughput.capacity.gbps());
    registry.gauge("model.achieved_gbps")
        .set(report.throughput.achieved.gbps());
    registry.gauge("model.mean_latency_us").set(report.latency.mean.micros());
    registry.gauge("model.max_drop_probability")
        .set(report.latency.max_drop_probability);
    for (std::size_t c = 0; c < report.latency.per_class.size(); ++c) {
        const auto& cls = report.latency.per_class[c];
        const std::string prefix =
            "model.class." + std::to_string(c) + ".";
        registry.gauge(prefix + "p99_us").set(cls.p99.micros());
        registry.gauge(prefix + "goodput_gbps").set(cls.goodput.gbps());
    }
    registry.counter("model.estimates").add();
}

} // namespace lognic::obs
