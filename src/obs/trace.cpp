#include "lognic/obs/trace.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace lognic::obs {

namespace {

constexpr double kProcessId = 1.0;

std::string
hex_id(std::uint64_t id)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

} // namespace

TrackId
ChromeTraceWriter::register_track(const std::string& name)
{
    tracks_.push_back(name);
    return static_cast<TrackId>(tracks_.size() - 1);
}

void
ChromeTraceWriter::span(TrackId track, const std::string& name, Seconds start,
                        Seconds duration)
{
    events_.push_back(Event{Phase::kComplete, track, name, start.micros(),
                            duration.micros(), 0.0, 0});
}

void
ChromeTraceWriter::counter(TrackId track, const std::string& series,
                           Seconds t, double value)
{
    events_.push_back(
        Event{Phase::kCounter, track, series, t.micros(), 0.0, value, 0});
}

void
ChromeTraceWriter::instant(TrackId track, const std::string& name, Seconds t)
{
    events_.push_back(
        Event{Phase::kInstant, track, name, t.micros(), 0.0, 0.0, 0});
}

void
ChromeTraceWriter::async_begin(std::uint64_t id, const std::string& name,
                               Seconds t)
{
    events_.push_back(
        Event{Phase::kAsyncBegin, 0, name, t.micros(), 0.0, 0.0, id});
}

void
ChromeTraceWriter::async_end(std::uint64_t id, const std::string& name,
                             Seconds t)
{
    events_.push_back(
        Event{Phase::kAsyncEnd, 0, name, t.micros(), 0.0, 0.0, id});
}

io::Json
ChromeTraceWriter::json() const
{
    io::JsonArray events;
    events.reserve(events_.size() + tracks_.size() + 1);

    // Metadata first: name the process and every registered track, so
    // Perfetto shows "crypto" rather than "Thread 3".
    {
        io::JsonObject meta;
        meta.emplace("name", io::Json("process_name"));
        meta.emplace("ph", io::Json("M"));
        meta.emplace("pid", io::Json(kProcessId));
        meta.emplace("tid", io::Json(0.0));
        io::JsonObject args;
        args.emplace("name", io::Json("lognic-sim"));
        meta.emplace("args", io::Json(std::move(args)));
        events.emplace_back(std::move(meta));
    }
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        io::JsonObject meta;
        meta.emplace("name", io::Json("thread_name"));
        meta.emplace("ph", io::Json("M"));
        meta.emplace("pid", io::Json(kProcessId));
        meta.emplace("tid", io::Json(static_cast<double>(t)));
        io::JsonObject args;
        args.emplace("name", io::Json(tracks_[t]));
        meta.emplace("args", io::Json(std::move(args)));
        events.emplace_back(std::move(meta));
    }

    for (const Event& e : events_) {
        io::JsonObject o;
        o.emplace("name", io::Json(e.name));
        o.emplace("pid", io::Json(kProcessId));
        o.emplace("ts", io::Json(e.ts_us));
        switch (e.phase) {
        case Phase::kComplete:
            o.emplace("ph", io::Json("X"));
            o.emplace("cat", io::Json("sim"));
            o.emplace("tid", io::Json(static_cast<double>(e.track)));
            o.emplace("dur", io::Json(e.dur_us));
            break;
        case Phase::kCounter: {
            o.emplace("ph", io::Json("C"));
            o.emplace("tid", io::Json(static_cast<double>(e.track)));
            // Counters are keyed by (pid, name): prefix the track name so
            // each vertex gets its own counter track.
            o["name"] = io::Json(
                (e.track < tracks_.size() ? tracks_[e.track] + "." : "")
                + e.name);
            io::JsonObject args;
            args.emplace(e.name, io::Json(e.value));
            o.emplace("args", io::Json(std::move(args)));
            break;
        }
        case Phase::kInstant:
            o.emplace("ph", io::Json("i"));
            o.emplace("cat", io::Json("sim"));
            o.emplace("tid", io::Json(static_cast<double>(e.track)));
            o.emplace("s", io::Json("t")); // thread-scoped instant
            break;
        case Phase::kAsyncBegin:
        case Phase::kAsyncEnd:
            o.emplace("ph", io::Json(e.phase == Phase::kAsyncBegin ? "b"
                                                                   : "e"));
            o.emplace("cat", io::Json("pkt"));
            o.emplace("tid", io::Json(0.0));
            o.emplace("id", io::Json(hex_id(e.id)));
            break;
        }
        events.emplace_back(std::move(o));
    }

    io::JsonObject doc;
    doc.emplace("traceEvents", io::Json(std::move(events)));
    doc.emplace("displayTimeUnit", io::Json("ms"));
    return io::Json(std::move(doc));
}

std::string
ChromeTraceWriter::dump(int indent) const
{
    return json().dump(indent);
}

void
ChromeTraceWriter::write(std::ostream& out, int indent) const
{
    out << dump(indent) << '\n';
    if (!out)
        throw std::runtime_error("ChromeTraceWriter: write failed");
}

} // namespace lognic::obs
