/**
 * @file
 * lognic — command-line front end for the model (Figure 4a's workflow as
 * a tool). Scenarios (hardware + execution graph + traffic) travel as
 * JSON documents; see `lognic example` for a starting point.
 *
 *   lognic example                      print a sample scenario JSON
 *   lognic example sweep                print a sample sweep-spec JSON
 *   lognic estimate <scenario.json>     model throughput/latency report
 *   lognic simulate <scenario.json> [seconds] [seed]
 *                                       packet-level simulation
 *   lognic sweep <spec.json>            parallel replicated sweep (the
 *                                       document carries a "sweep" object;
 *                                       emits per-point JSON results)
 *   lognic sweep <scenario.json> <gbps> [gbps...]
 *                                       analytic rate sweep
 *   lognic dot <scenario.json>          Graphviz export of the graph
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "lognic/core/model.hpp"
#include "lognic/core/reporting.hpp"
#include "lognic/core/sensitivity.hpp"
#include "lognic/io/serialize.hpp"
#include "lognic/runner/sweep.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: lognic <command> [args]\n"
                 "  example [sweep]               print a sample scenario "
                 "(or sweep spec)\n"
                 "  estimate <scenario.json>      analytical report\n"
                 "  simulate <scenario.json> [seconds] [seed]\n"
                 "  sweep    <spec.json>          replicated parallel sweep "
                 "(JSON out)\n"
                 "  sweep    <scenario.json> <gbps> [gbps...]\n"
                 "  sensitivity <scenario.json>   parameter elasticities\n"
                 "  dot      <scenario.json>      Graphviz export\n");
    return 2;
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

io::Scenario
load(const std::string& path)
{
    return io::load_scenario(read_file(path));
}

io::Scenario
sample_scenario()
{
    core::HardwareModel hw("sample-nic", Bandwidth::from_gbps(100.0),
                           Bandwidth::from_gbps(80.0),
                           Bandwidth::from_gbps(25.0));
    core::IpSpec cores;
    cores.name = "cores";
    cores.kind = core::IpKind::kCpuCores;
    cores.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(1.0),
                           Bandwidth::from_gigabytes_per_sec(4.0)},
        {});
    cores.max_engines = 8;
    cores.default_queue_capacity = 64;
    const auto cores_id = hw.add_ip(cores);

    core::IpSpec crypto;
    crypto.name = "crypto";
    crypto.kind = core::IpKind::kAccelerator;
    crypto.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(0.4),
                           Bandwidth::from_gbps(400.0)},
        {{"feed", Bandwidth::from_gbps(50.0)}});
    crypto.max_engines = 2;
    crypto.service_scv = 0.1; // hardware pipeline
    const auto crypto_id = hw.add_ip(crypto);

    core::ExecutionGraph g("sample-offload");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto v1 = g.add_ip_vertex("cores", cores_id);
    const auto v2 = g.add_ip_vertex("crypto", crypto_id);
    g.add_edge(in, v1);
    g.add_edge(v1, v2, core::EdgeParams{1.0, 0.0, 1.0, {}});
    g.add_edge(v2, out);

    return io::Scenario{std::move(hw), std::move(g),
                        core::TrafficProfile::fixed(
                            Bytes{1024.0}, Bandwidth::from_gbps(12.0))};
}

int
cmd_estimate(const io::Scenario& sc)
{
    const core::Model model(sc.hw);
    const core::Report rep = model.estimate(sc.graph, sc.traffic);
    std::fputs(core::render_report(rep, sc.traffic).c_str(), stdout);
    std::printf("p99 (approx): %.3f us\n",
                rep.latency.per_class[0].p99.micros());
    return 0;
}

int
cmd_simulate(const io::Scenario& sc, double seconds, std::uint64_t seed)
{
    sim::SimOptions opts;
    opts.duration = seconds;
    opts.seed = seed;
    const auto res = sim::simulate(sc.hw, sc.graph, sc.traffic, opts);
    std::printf("simulated %.3fs (seed %llu)\n", seconds,
                static_cast<unsigned long long>(seed));
    std::printf("  delivered    : %.3f Gbps (%.3f Mops)\n",
                res.delivered.gbps(), res.delivered_ops.mops());
    std::printf("  latency      : mean %.3f us, p50 %.3f, p99 %.3f\n",
                res.mean_latency.micros(), res.p50_latency.micros(),
                res.p99_latency.micros());
    std::printf("  drops        : %llu of %llu (%.4f)\n",
                static_cast<unsigned long long>(res.dropped),
                static_cast<unsigned long long>(res.generated),
                res.drop_rate);
    for (const auto& vs : res.vertex_stats) {
        std::printf("  %-12s util %.3f, occupancy %.2f, served %llu, "
                    "dropped %llu\n",
                    vs.name.c_str(), vs.utilization, vs.mean_occupancy,
                    static_cast<unsigned long long>(vs.served),
                    static_cast<unsigned long long>(vs.dropped));
    }
    return 0;
}

/// Spec-driven sweep: grid x replications fanned over a thread pool,
/// per-point aggregates (mean / stddev / 95% CI) emitted as JSON.
int
cmd_sweep_spec(const io::Json& doc)
{
    const auto spec = runner::sweep_spec_from_json(doc);
    const auto sweep = runner::build_sweep(spec);
    const auto results = sweep.run(spec.options);
    std::fputs(runner::sweep_results_json(results).dump().c_str(), stdout);
    std::printf("\n");
    return 0;
}

int
cmd_sweep(const io::Scenario& sc, int argc, char** argv)
{
    const core::Model model(sc.hw);
    std::printf("%10s %12s %12s %12s %12s\n", "offered", "capacity",
                "goodput", "mean(us)", "p99(us)");
    for (int i = 0; i < argc; ++i) {
        const double gbps = std::atof(argv[i]);
        if (gbps <= 0.0) {
            std::fprintf(stderr, "bad rate '%s'\n", argv[i]);
            return 2;
        }
        auto traffic = sc.traffic;
        traffic.set_ingress_bandwidth(Bandwidth::from_gbps(gbps));
        const auto rep = model.estimate(sc.graph, traffic);
        std::printf("%9.2fG %11.2fG %11.2fG %12.3f %12.3f\n", gbps,
                    rep.throughput.capacity.gbps(),
                    rep.latency.per_class[0].goodput.gbps(),
                    rep.latency.mean.micros(),
                    rep.latency.per_class[0].p99.micros());
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        if (command == "example") {
            if (argc > 2 && std::string(argv[2]) == "sweep") {
                std::fputs(
                    runner::sample_sweep_spec(sample_scenario()).c_str(),
                    stdout);
            } else {
                std::fputs(io::save_scenario(sample_scenario()).c_str(),
                           stdout);
            }
            std::printf("\n");
            return 0;
        }
        if (argc < 3)
            return usage();
        if (command == "sweep") {
            // A document carrying a "sweep" object is a spec for the
            // parallel runner; a bare scenario keeps the legacy analytic
            // rate sweep.
            const io::Json doc = io::Json::parse(read_file(argv[2]));
            if (doc.is_object() && doc.contains("sweep"))
                return cmd_sweep_spec(doc);
            if (argc < 4)
                return usage();
            return cmd_sweep(io::scenario_from_json(doc), argc - 3,
                             argv + 3);
        }
        const io::Scenario sc = load(argv[2]);
        if (command == "estimate")
            return cmd_estimate(sc);
        if (command == "simulate") {
            const double seconds = argc > 3 ? std::atof(argv[3]) : 0.05;
            const std::uint64_t seed = argc > 4
                ? static_cast<std::uint64_t>(std::atoll(argv[4]))
                : 42;
            if (seconds <= 0.0) {
                std::fprintf(stderr, "bad duration\n");
                return 2;
            }
            return cmd_simulate(sc, seconds, seed);
        }
        if (command == "sensitivity") {
            const auto results =
                core::analyze_sensitivity(sc.graph, sc.hw, sc.traffic);
            std::printf("%-36s %12s %12s\n", "parameter", "d(cap)",
                        "d(latency)");
            for (const auto& s : results) {
                std::printf("%-36s %12.3f %12.3f\n", s.parameter.c_str(),
                            s.capacity_elasticity, s.latency_elasticity);
            }
            std::printf("\n(log-log elasticities: +1 = output scales "
                        "proportionally with the knob)\n");
            return 0;
        }
        if (command == "dot") {
            std::fputs(core::to_dot(sc.graph, sc.hw).c_str(), stdout);
            return 0;
        }
        return usage();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "lognic: %s\n", e.what());
        return 1;
    }
}
