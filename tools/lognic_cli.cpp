/**
 * @file
 * lognic — command-line front end for the model (Figure 4a's workflow as
 * a tool). Scenarios (hardware + execution graph + traffic) travel as
 * JSON documents; see `lognic example` for a starting point.
 *
 *   lognic example                      print a sample scenario JSON
 *   lognic example sweep                print a sample sweep-spec JSON
 *   lognic example faults               print a sample fault-plan JSON
 *   lognic example calib                print a sample calibration-spec JSON
 *   lognic example explore              print a sample exploration-spec JSON
 *                                       (the fig13/14 placement study)
 *   lognic example placement            print the fig13/14 NF-placement
 *                                       scenario (LogNIC-opt at MTU)
 *   lognic estimate <scenario.json>     model throughput/latency report
 *   lognic simulate <scenario.json> [seconds] [seed]
 *                                       packet-level simulation
 *   lognic sweep <spec.json>            parallel replicated sweep (the
 *                                       document carries a "sweep" object;
 *                                       emits per-point JSON results)
 *   lognic sweep <scenario.json> <gbps> [gbps...]
 *                                       analytic rate sweep
 *   lognic trace <scenario.json> [--out trace.json] [--seconds s]
 *                [--seed n] [--sample n]
 *                                       traced simulation: Chrome
 *                                       trace-event JSON (open in
 *                                       ui.perfetto.dev) + bottleneck
 *                                       attribution report
 *   lognic faults <scenario.json> <plan.json> [--seconds s] [--seed n]
 *                 [--curve vertex]
 *                                       fault-injected simulation: replay a
 *                                       fault plan mid-run, report delivery
 *                                       and cause-labeled drops; --curve
 *                                       prints the analytical graceful-
 *                                       degradation curve for a vertex
 *   lognic calibrate <spec.json> [--out report.json] [--threads n]
 *                                       fit catalog parameters to a
 *                                       measured or DES-generated dataset;
 *                                       emits a CalibrationReport JSON
 *   lognic check [--trials n] [--seed n] [--duration s]
 *                [--corpus dir] [--out report.json]
 *                [--no-monotonicity] [--no-minimize]
 *                                       differential conformance harness:
 *                                       randomized model/DES/closed-form
 *                                       cross-validation plus golden-
 *                                       corpus replay; emits a JSON
 *                                       violation report, exit 1 on any
 *                                       violation
 *   lognic explore <spec.json> [--out report.json] [--threads n]
 *                  [--prune=on|off|explain]
 *                                       design-space exploration: Pareto
 *                                       search over placements/provisioning
 *                                       knobs with DES validation of the
 *                                       frontier; emits a FrontierReport
 *                                       JSON, byte-identical at any
 *                                       --threads value and any --prune
 *                                       mode (pruning only skips solves)
 *   lognic run <scenario.json> --checkpoint <dir> [--seconds s] [--seed n]
 *              [--segment-events n] [--every n] [--no-resume]
 *              [--retention n]
 *                                       kill-tolerant simulation: run the
 *                                       DES in event-budget segments with
 *                                       crash-safe state snapshots; an
 *                                       interrupted run resumes from the
 *                                       newest valid snapshot and produces
 *                                       bit-identical results
 *   lognic dot <scenario.json>          Graphviz export of the graph
 *
 * `sweep` (spec form), `check`, `calibrate`, and `explore` accept the same
 * checkpoint flags: --checkpoint <dir> enables supervision, --no-resume
 * starts fresh, --every n sets the completions-per-checkpoint cadence,
 * --retention n the generations kept; `sweep` adds --retries n for
 * failed-point retry rounds with exponential backoff.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lognic/apps/nf_chain.hpp"
#include "lognic/calib/spec.hpp"
#include "lognic/check/harness.hpp"
#include "lognic/ckpt/supervisor.hpp"
#include "lognic/core/model.hpp"
#include "lognic/dse/report.hpp"
#include "lognic/dse/spec.hpp"
#include "lognic/dse/supervise.hpp"
#include "lognic/fault/degradation.hpp"
#include "lognic/fault/fault_plan.hpp"
#include "lognic/core/reporting.hpp"
#include "lognic/core/sensitivity.hpp"
#include "lognic/io/serialize.hpp"
#include "lognic/obs/attribution.hpp"
#include "lognic/obs/trace.hpp"
#include "lognic/runner/sweep.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: lognic <command> [args]\n"
                 "  example [sweep|placement]     print a sample scenario "
                 "(or sweep spec, or the\n"
                 "                                fig13/14 NF-placement "
                 "scenario)\n"
                 "  estimate <scenario.json>      analytical report\n"
                 "  simulate <scenario.json> [seconds] [seed]\n"
                 "  sweep    <spec.json>          replicated parallel sweep "
                 "(JSON out)\n"
                 "  sweep    <scenario.json> <gbps> [gbps...]\n"
                 "  trace    <scenario.json> [--out trace.json] "
                 "[--seconds s] [--seed n] [--sample n]\n"
                 "                                traced simulation "
                 "(Chrome trace-event JSON)\n"
                 "  faults   <scenario.json> <plan.json> [--seconds s] "
                 "[--seed n] [--curve vertex]\n"
                 "                                fault-injected simulation "
                 "(cause-labeled drops)\n"
                 "  sensitivity <scenario.json>   parameter elasticities\n"
                 "  check    [--trials n] [--seed n] [--duration s] "
                 "[--corpus dir]\n"
                 "           [--out report.json] [--no-monotonicity] "
                 "[--no-minimize]\n"
                 "                                differential conformance "
                 "harness (JSON report;\n"
                 "                                exit 1 on violations)\n"
                 "  calibrate <spec.json> [--out report.json] [--threads n]\n"
                 "                                fit catalog parameters to "
                 "a dataset; emits a\n"
                 "                                CalibrationReport JSON "
                 "(see `lognic example calib`)\n"
                 "  explore  <spec.json> [--out report.json] [--threads n] "
                 "[--prune=on|off|explain]\n"
                 "                                Pareto design-space "
                 "exploration with DES\n"
                 "                                validation of the frontier "
                 "(see `lognic example\n"
                 "                                explore`)\n"
                 "  run      <scenario.json> --checkpoint <dir> "
                 "[--seconds s] [--seed n]\n"
                 "           [--segment-events n] [--every n] [--no-resume] "
                 "[--retention n]\n"
                 "                                kill-tolerant simulation "
                 "with crash-safe\n"
                 "                                snapshots; resumes from "
                 "the newest valid one\n"
                 "  dot      <scenario.json>      Graphviz export\n"
                 "\n"
                 "sweep (spec form), check, and calibrate also accept\n"
                 "  --checkpoint <dir> [--no-resume] [--every n] "
                 "[--retention n]\n"
                 "(and sweep: --retries n) for kill-tolerant supervised "
                 "runs; explore too\n");
    return 2;
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad() || buf.fail())
        throw std::runtime_error("cannot read '" + path + "'");
    return buf.str();
}

/**
 * Write @p contents (plus a trailing newline) to @p path. Prints the
 * offending path and returns false on any open or write failure — a full
 * disk or revoked permission fails the final flush, not the open, so the
 * stream is checked after flushing.
 */
bool
write_file(const std::string& path, const std::string& contents)
{
    std::ofstream out(path);
    if (out) {
        out << contents << "\n";
        out.flush();
    }
    if (!out) {
        std::fprintf(stderr, "lognic: cannot write '%s'\n", path.c_str());
        return false;
    }
    return true;
}

/// Shared checkpoint-flag state for sweep/check/calibrate/run.
struct CkptArgs {
    bool enabled{false};
    ckpt::SupervisorOptions sup;
};

/**
 * Try to consume one checkpoint flag at argv[i] (advancing i over its
 * value). Returns true when consumed. @p allow_retries gates the
 * sweep-only --retries flag.
 */
bool
parse_ckpt_arg(CkptArgs& ck, int argc, char** argv, int& i,
               bool allow_retries)
{
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--checkpoint" && has_value) {
        ck.enabled = true;
        ck.sup.dir = argv[++i];
        return true;
    }
    if (arg == "--resume") {
        ck.sup.resume = true; // the default; accepted for explicitness
        return true;
    }
    if (arg == "--no-resume") {
        ck.sup.resume = false;
        return true;
    }
    if (arg == "--every" && has_value) {
        ck.sup.checkpoint_every =
            static_cast<std::uint64_t>(std::atoll(argv[++i]));
        return true;
    }
    if (arg == "--retention" && has_value) {
        ck.sup.retention = static_cast<std::size_t>(std::atoll(argv[++i]));
        return true;
    }
    if (allow_retries && arg == "--retries" && has_value) {
        ck.sup.retry_rounds =
            static_cast<std::size_t>(std::atoll(argv[++i]));
        return true;
    }
    return false;
}

/// Stderr diagnostics sink for supervised runs.
void
attach_logger(ckpt::SupervisorOptions& sup)
{
    sup.log = [](const std::string& m) {
        std::fprintf(stderr, "lognic: %s\n", m.c_str());
    };
}

io::Scenario
load(const std::string& path)
{
    return io::load_scenario(read_file(path));
}

io::Scenario
sample_scenario()
{
    core::HardwareModel hw("sample-nic", Bandwidth::from_gbps(100.0),
                           Bandwidth::from_gbps(80.0),
                           Bandwidth::from_gbps(25.0));
    core::IpSpec cores;
    cores.name = "cores";
    cores.kind = core::IpKind::kCpuCores;
    cores.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(1.0),
                           Bandwidth::from_gigabytes_per_sec(4.0)},
        {});
    cores.max_engines = 8;
    cores.default_queue_capacity = 64;
    const auto cores_id = hw.add_ip(cores);

    core::IpSpec crypto;
    crypto.name = "crypto";
    crypto.kind = core::IpKind::kAccelerator;
    crypto.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(0.4),
                           Bandwidth::from_gbps(400.0)},
        {{"feed", Bandwidth::from_gbps(50.0)}});
    crypto.max_engines = 2;
    crypto.service_scv = 0.1; // hardware pipeline
    const auto crypto_id = hw.add_ip(crypto);

    core::ExecutionGraph g("sample-offload");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto v1 = g.add_ip_vertex("cores", cores_id);
    const auto v2 = g.add_ip_vertex("crypto", crypto_id);
    g.add_edge(in, v1);
    g.add_edge(v1, v2, core::EdgeParams{1.0, 0.0, 1.0, {}});
    g.add_edge(v2, out);

    return io::Scenario{std::move(hw), std::move(g),
                        core::TrafficProfile::fixed(
                            Bytes{1024.0}, Bandwidth::from_gbps(12.0))};
}

// The fig13/14 NF-placement scenario at MTU: the chain under the
// placement LogNIC-opt picks for 1500 B packets, offered 80% of its
// modelled capacity — the operating point bench/fig13_14_placement
// evaluates and the one the EXPERIMENTS.md Perfetto walkthrough opens.
io::Scenario
placement_scenario()
{
    const Bytes mtu{1500.0};
    const auto probe =
        core::TrafficProfile::fixed(mtu, Bandwidth::from_gbps(50.0));
    const auto placement = apps::lognic_opt_placement(probe);
    auto sc = apps::make_nf_chain(placement);
    const core::Model model(sc.hw);
    const auto capacity = model.throughput(sc.graph, probe).capacity;
    return io::Scenario{
        std::move(sc.hw), std::move(sc.graph),
        core::TrafficProfile::fixed(
            mtu, Bandwidth::from_gbps(0.8 * capacity.gbps()))};
}

int
cmd_estimate(const io::Scenario& sc)
{
    const core::Model model(sc.hw);
    const core::Report rep = model.estimate(sc.graph, sc.traffic);
    std::fputs(core::render_report(rep, sc.traffic).c_str(), stdout);
    std::printf("p99 (approx): %.3f us\n",
                rep.latency.per_class[0].p99.micros());
    return 0;
}

void
print_sim_result(const sim::SimResult& res)
{
    std::printf("  delivered    : %.3f Gbps (%.3f Mops)\n",
                res.delivered.gbps(), res.delivered_ops.mops());
    std::printf("  latency      : mean %.3f us, p50 %.3f, p99 %.3f\n",
                res.mean_latency.micros(), res.p50_latency.micros(),
                res.p99_latency.micros());
    std::printf("  drops        : %llu of %llu (%.4f)\n",
                static_cast<unsigned long long>(res.dropped),
                static_cast<unsigned long long>(res.generated),
                res.drop_rate);
    for (const auto& vs : res.vertex_stats) {
        std::printf("  %-12s util %.3f, occupancy %.2f, served %llu, "
                    "dropped %llu\n",
                    vs.name.c_str(), vs.utilization, vs.mean_occupancy,
                    static_cast<unsigned long long>(vs.served),
                    static_cast<unsigned long long>(vs.dropped));
    }
}

int
cmd_simulate(const io::Scenario& sc, double seconds, std::uint64_t seed)
{
    sim::SimOptions opts;
    opts.duration = seconds;
    opts.seed = seed;
    const auto res = sim::simulate(sc.hw, sc.graph, sc.traffic, opts);
    std::printf("simulated %.3fs (seed %llu)\n", seconds,
                static_cast<unsigned long long>(seed));
    print_sim_result(res);
    return 0;
}

/**
 * Kill-tolerant simulation: the same run `simulate` does, cut into
 * event-budget segments with a crash-safe snapshot published every
 * --every segments. Killing the process at any point loses at most one
 * checkpoint interval; rerunning the identical command resumes from the
 * newest valid snapshot and finishes with results bit-identical to an
 * uninterrupted run.
 */
int
cmd_run(const io::Scenario& sc, int argc, char** argv)
{
    sim::SimOptions opts;
    std::uint64_t segment_events = 100000;
    CkptArgs ck;
    ck.sup.checkpoint_every = 1; // snapshots are cheap at this granularity
    for (int i = 0; i < argc; ++i) {
        if (parse_ckpt_arg(ck, argc, argv, i, /*allow_retries=*/false))
            continue;
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--seconds" && has_value) {
            opts.duration = std::atof(argv[++i]);
        } else if (arg == "--seed" && has_value) {
            opts.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--segment-events" && has_value) {
            segment_events =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else {
            std::fprintf(stderr, "run: bad argument '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (!ck.enabled) {
        std::fprintf(stderr, "run: --checkpoint <dir> is required\n");
        return 2;
    }
    if (opts.duration <= 0.0 || segment_events == 0) {
        std::fprintf(stderr, "bad duration or segment size\n");
        return 2;
    }

    attach_logger(ck.sup);
    sim::NicSimulator simulator(sc.hw, sc.graph, sc.traffic, opts);
    const auto supervised =
        ckpt::supervise_simulation(simulator, segment_events, ck.sup);
    std::printf("simulated %.3fs (seed %llu) in %llu segment(s), "
                "%llu checkpoint(s)%s\n",
                opts.duration,
                static_cast<unsigned long long>(opts.seed),
                static_cast<unsigned long long>(supervised.segments),
                static_cast<unsigned long long>(supervised.checkpoints),
                supervised.resume.resumed ? " [resumed]" : "");
    print_sim_result(supervised.result);
    return 0;
}

/**
 * Traced simulation: run the scenario with a ChromeTraceWriter attached,
 * write the trace-event document (ui.perfetto.dev opens it directly), and
 * print the bottleneck-attribution report comparing the measured per-vertex
 * utilizations against the model's ρ.
 */
int
cmd_trace(const io::Scenario& sc, int argc, char** argv)
{
    std::string out_path;
    sim::SimOptions opts;
    opts.duration = 0.005; // short horizon: traces grow with event count
    std::uint64_t sample_every = 1;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--out" && has_value) {
            out_path = argv[++i];
        } else if (arg == "--seconds" && has_value) {
            opts.duration = std::atof(argv[++i]);
        } else if (arg == "--seed" && has_value) {
            opts.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--sample" && has_value) {
            sample_every =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else {
            std::fprintf(stderr, "trace: bad argument '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (opts.duration <= 0.0) {
        std::fprintf(stderr, "bad duration\n");
        return 2;
    }

    obs::ChromeTraceWriter writer;
    opts.trace.sink = &writer;
    opts.trace.sample_every = sample_every;
    const auto res = sim::simulate(sc.hw, sc.graph, sc.traffic, opts);

    if (out_path.empty()) {
        std::fputs(writer.dump().c_str(), stdout);
        std::printf("\n");
    } else {
        std::ofstream out(out_path);
        if (out) {
            writer.write(out);
            out.flush();
        }
        if (!out) {
            std::fprintf(stderr, "lognic: cannot write '%s'\n",
                         out_path.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "wrote %zu trace events on %zu tracks to %s "
                     "(open in https://ui.perfetto.dev)\n",
                     writer.event_count(), writer.track_count(),
                     out_path.c_str());
    }

    const auto model =
        obs::model_vertex_utilization(sc.graph, sc.hw, sc.traffic);
    const auto report = obs::attribute(sim::observations(res), model);
    std::fputs(obs::render(report).c_str(), stderr);
    return 0;
}

/**
 * The conformance harness: N randomized differential trials (optionally
 * plus a golden-corpus replay), a JSON violation report on stdout or
 * --out, exit 1 when any oracle fired. `--trials 0 --corpus dir` replays
 * the corpus alone.
 */
int
cmd_check(int argc, char** argv)
{
    check::CheckOptions copts;
    CkptArgs ck;
    std::string corpus_dir;
    std::string out_path;
    for (int i = 0; i < argc; ++i) {
        if (parse_ckpt_arg(ck, argc, argv, i, /*allow_retries=*/false))
            continue;
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--trials" && has_value) {
            copts.trials =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--seed" && has_value) {
            copts.seed =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--duration" && has_value) {
            copts.duration = std::atof(argv[++i]);
        } else if (arg == "--corpus" && has_value) {
            corpus_dir = argv[++i];
        } else if (arg == "--out" && has_value) {
            out_path = argv[++i];
        } else if (arg == "--no-monotonicity") {
            copts.monotonicity = false;
        } else if (arg == "--no-minimize") {
            copts.minimize = false;
        } else {
            std::fprintf(stderr, "check: bad argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    if (copts.duration <= 0.0) {
        std::fprintf(stderr, "bad duration\n");
        return 2;
    }

    std::vector<check::CorpusEntry> entries;
    if (!corpus_dir.empty()) {
        std::vector<std::filesystem::path> files;
        for (const auto& e :
             std::filesystem::directory_iterator(corpus_dir))
            if (e.path().extension() == ".json")
                files.push_back(e.path());
        // Directory iteration order is unspecified; sort for a
        // deterministic report.
        std::sort(files.begin(), files.end());
        entries.reserve(files.size());
        for (const auto& f : files)
            entries.push_back(check::corpus_entry_from_json(
                io::Json::parse(read_file(f.string()))));
    }

    check::CheckReport report;
    if (ck.enabled) {
        attach_logger(ck.sup);
        auto supervised =
            ckpt::supervise_check(copts, entries, ck.sup);
        report = std::move(supervised.report);
    } else {
        if (!entries.empty())
            report = check::replay_corpus(entries, copts);
        if (copts.trials > 0)
            report = check::merge(std::move(report),
                                  check::run_trials(copts));
    }

    const std::string doc = check::to_json(report).dump(2);
    if (out_path.empty()) {
        std::fputs(doc.c_str(), stdout);
        std::printf("\n");
    } else if (!write_file(out_path, doc)) {
        return 1;
    }
    std::fprintf(stderr,
                 "check: %llu trials + %llu corpus entries, %llu sims, "
                 "%llu violations\n",
                 static_cast<unsigned long long>(report.trials),
                 static_cast<unsigned long long>(report.corpus_entries),
                 static_cast<unsigned long long>(report.sims_run),
                 static_cast<unsigned long long>(report.violations));
    return report.violations == 0 ? 0 : 1;
}

/// Spec-driven sweep: grid x replications fanned over a thread pool,
/// per-point aggregates (mean / stddev / 95% CI) emitted as JSON. Runs
/// guarded: a point that throws or trips the watchdog becomes a record in
/// the "failed"/"truncated" arrays instead of killing the campaign (exit
/// status 1 flags an incomplete sweep).
int
cmd_sweep_spec(const io::Json& doc, int argc, char** argv)
{
    CkptArgs ck;
    for (int i = 0; i < argc; ++i) {
        if (parse_ckpt_arg(ck, argc, argv, i, /*allow_retries=*/true))
            continue;
        std::fprintf(stderr, "sweep: bad argument '%s'\n", argv[i]);
        return 2;
    }

    const auto spec = runner::sweep_spec_from_json(doc);
    const auto sweep = runner::build_sweep(spec);
    runner::SweepReport report;
    if (ck.enabled) {
        attach_logger(ck.sup);
        auto supervised =
            ckpt::supervise_sweep(sweep, spec.options, ck.sup);
        report = std::move(supervised.report);
        if (supervised.retry_rounds_used > 0)
            std::fprintf(stderr, "lognic: %zu retry round(s) used\n",
                         supervised.retry_rounds_used);
    } else {
        report = sweep.run_guarded(spec.options);
    }
    std::fputs(runner::to_json(report).dump().c_str(), stdout);
    std::printf("\n");
    for (const auto& f : report.failed)
        std::fprintf(stderr, "lognic: point %zu (%s) failed after %zu "
                             "attempt(s): %s\n",
                     f.index, f.label.c_str(), f.attempts,
                     f.error.c_str());
    for (const auto& t : report.truncated)
        std::fprintf(stderr, "lognic: point %zu (%s) replication %zu "
                             "truncated (%s) at t=%.6fs\n",
                     t.index, t.label.c_str(), t.replication,
                     t.reason.c_str(), t.sim_time_reached);
    return report.failed.empty() ? 0 : 1;
}

/**
 * Fault-injected simulation: replay a fault plan against a scenario and
 * report delivery plus cause-labeled drop accounting; with --curve, also
 * print the analytical graceful-degradation curve for one vertex
 * (model-side counterpart of killing engines mid-run).
 */
int
cmd_faults(const io::Scenario& sc, const std::string& plan_path, int argc,
           char** argv)
{
    sim::SimOptions opts;
    opts.duration = 0.02;
    std::string curve_vertex;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--seconds" && has_value) {
            opts.duration = std::atof(argv[++i]);
        } else if (arg == "--seed" && has_value) {
            opts.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--curve" && has_value) {
            curve_vertex = argv[++i];
        } else {
            std::fprintf(stderr, "faults: bad argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    if (opts.duration <= 0.0) {
        std::fprintf(stderr, "bad duration\n");
        return 2;
    }
    opts.faults =
        fault::fault_plan_from_json(io::Json::parse(read_file(plan_path)));

    const auto res = sim::simulate(sc.hw, sc.graph, sc.traffic, opts);
    std::printf("faulted simulation: %.3fs, %zu fault event(s)\n",
                opts.duration, opts.faults.events.size());
    std::printf("  delivered    : %.3f Gbps (%.3f Mops)\n",
                res.delivered.gbps(), res.delivered_ops.mops());
    std::printf("  latency      : mean %.3f us, p50 %.3f, p99 %.3f\n",
                res.mean_latency.micros(), res.p50_latency.micros(),
                res.p99_latency.micros());
    std::printf("  conservation : generated %llu = completed %llu + "
                "dropped %llu + in-flight %llu\n",
                static_cast<unsigned long long>(res.generated),
                static_cast<unsigned long long>(res.completed_total),
                static_cast<unsigned long long>(res.dropped_total),
                static_cast<unsigned long long>(res.in_flight));
    const auto& counters = res.metrics.counters;
    for (const char* key : {"sim.dropped_by_cause.overflow",
                            "sim.dropped_by_cause.burst",
                            "sim.dropped_by_cause.engine_fail"}) {
        const auto it = counters.find(key);
        if (it != counters.end())
            std::printf("  %-28s %llu\n", key,
                        static_cast<unsigned long long>(it->second));
    }
    if (res.truncated)
        std::printf("  TRUNCATED (%s) at t=%.6fs\n",
                    res.truncation_reason.c_str(), res.sim_time_reached);

    if (!curve_vertex.empty()) {
        const auto curve = fault::degradation_curve(sc.hw, sc.graph,
                                                    sc.traffic,
                                                    curve_vertex);
        std::printf("\ngraceful degradation of '%s' (analytical):\n",
                    curve.vertex.c_str());
        std::printf("%8s %10s %12s %12s %12s\n", "failed", "fraction",
                    "capacity", "achieved", "mean(us)");
        for (const auto& pt : curve.points) {
            std::printf("%8u %9.0f%% %11.2fG %11.2fG %12.3f\n",
                        pt.engines_failed, 100.0 * pt.fraction_failed,
                        pt.capacity.gbps(), pt.achieved.gbps(),
                        pt.mean_latency.micros());
        }
    }
    return 0;
}

/**
 * Spec-driven calibration: parse the document (running the DES data
 * synthesis when the spec carries "generate"), fit, print the
 * human-readable summary to stderr, and emit the CalibrationReport JSON
 * (the artifact CI schema-checks) to --out or stdout. Exits nonzero only
 * when the calibration fails outright (every start threw, bad spec);
 * a fit that merely stalled short of a tolerance still reports — the
 * report's "converged"/"message" fields carry that verdict.
 */
int
cmd_calibrate(const io::Json& doc, int argc, char** argv)
{
    std::string out_path;
    std::size_t threads_override = 0;
    CkptArgs ck;
    for (int i = 0; i < argc; ++i) {
        if (parse_ckpt_arg(ck, argc, argv, i, /*allow_retries=*/false))
            continue;
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--out" && has_value) {
            out_path = argv[++i];
        } else if (arg == "--threads" && has_value) {
            threads_override =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else {
            std::fprintf(stderr, "calibrate: bad argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    calib::CalibSpec spec = calib::calib_spec_from_json(doc);
    if (threads_override > 0)
        spec.options.fit.threads = threads_override;

    calib::CalibrationReport report;
    if (ck.enabled) {
        attach_logger(ck.sup);
        auto supervised = ckpt::supervise_calibration(
            std::move(spec.space), std::move(spec.data), spec.options,
            ck.sup);
        report = std::move(supervised.report);
    } else {
        const calib::Calibrator calibrator(std::move(spec.space),
                                           std::move(spec.data),
                                           spec.options);
        report = calibrator.fit();
    }
    std::fputs(calib::render(report).c_str(), stderr);

    const std::string json = calib::to_json(report).dump();
    if (out_path.empty()) {
        std::fputs(json.c_str(), stdout);
        std::printf("\n");
    } else {
        if (!write_file(out_path, json))
            return 1;
        std::fprintf(stderr, "wrote calibration report to %s\n",
                     out_path.c_str());
    }
    return 0;
}

/**
 * Spec-driven design-space exploration: parse the document, search, print
 * the human-readable frontier to stderr, and emit the FrontierReport JSON
 * (the artifact CI schema-checks and byte-compares across --threads) to
 * --out or stdout. --threads only changes wall-clock, never the report.
 */
int
cmd_explore(const io::Json& doc, int argc, char** argv)
{
    std::string out_path;
    std::size_t threads_override = 0;
    std::string prune_override;
    CkptArgs ck;
    for (int i = 0; i < argc; ++i) {
        if (parse_ckpt_arg(ck, argc, argv, i, /*allow_retries=*/false))
            continue;
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--out" && has_value) {
            out_path = argv[++i];
        } else if (arg == "--threads" && has_value) {
            threads_override =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg.rfind("--prune=", 0) == 0) {
            prune_override = arg.substr(8);
        } else if (arg == "--prune" && has_value) {
            prune_override = argv[++i];
        } else {
            std::fprintf(stderr, "explore: bad argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    dse::ExploreSpec spec = dse::explore_spec_from_json(doc);
    if (threads_override > 0)
        spec.options.threads = threads_override;
    if (!prune_override.empty())
        spec.options.prune = dse::prune_mode_from_name(prune_override);
    // Explain narration goes to stderr: the report JSON on stdout stays
    // byte-identical across prune modes.
    spec.options.prune_log = [](const std::string& message) {
        std::fputs(message.c_str(), stderr);
    };

    dse::FrontierReport report;
    if (ck.enabled) {
        attach_logger(ck.sup);
        auto supervised = dse::supervise_exploration(
            spec.space, spec.objectives, spec.constraints, spec.options,
            ck.sup);
        report = std::move(supervised.report);
    } else {
        report = dse::explore(spec.space, spec.objectives, spec.constraints,
                              spec.options);
    }
    std::fputs(dse::render(report).c_str(), stderr);

    const std::string json = dse::frontier_report_to_json(report).dump();
    if (out_path.empty()) {
        std::fputs(json.c_str(), stdout);
        std::printf("\n");
    } else {
        if (!write_file(out_path, json))
            return 1;
        std::fprintf(stderr, "wrote frontier report to %s\n",
                     out_path.c_str());
    }
    return 0;
}

int
cmd_sweep(const io::Scenario& sc, int argc, char** argv)
{
    const core::Model model(sc.hw);
    std::printf("%10s %12s %12s %12s %12s\n", "offered", "capacity",
                "goodput", "mean(us)", "p99(us)");
    for (int i = 0; i < argc; ++i) {
        const double gbps = std::atof(argv[i]);
        if (gbps <= 0.0) {
            std::fprintf(stderr, "bad rate '%s'\n", argv[i]);
            return 2;
        }
        auto traffic = sc.traffic;
        traffic.set_ingress_bandwidth(Bandwidth::from_gbps(gbps));
        const auto rep = model.estimate(sc.graph, traffic);
        std::printf("%9.2fG %11.2fG %11.2fG %12.3f %12.3f\n", gbps,
                    rep.throughput.capacity.gbps(),
                    rep.latency.per_class[0].goodput.gbps(),
                    rep.latency.mean.micros(),
                    rep.latency.per_class[0].p99.micros());
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        if (command == "example") {
            if (argc > 2 && std::string(argv[2]) == "sweep") {
                std::fputs(
                    runner::sample_sweep_spec(sample_scenario()).c_str(),
                    stdout);
            } else if (argc > 2 && std::string(argv[2]) == "faults") {
                std::fputs(fault::sample_fault_plan().c_str(), stdout);
            } else if (argc > 2 && std::string(argv[2]) == "calib") {
                std::fputs(
                    calib::sample_calib_spec(sample_scenario()).c_str(),
                    stdout);
            } else if (argc > 2 && std::string(argv[2]) == "explore") {
                std::fputs(dse::sample_explore_spec().c_str(), stdout);
            } else if (argc > 2 && std::string(argv[2]) == "placement") {
                std::fputs(io::save_scenario(placement_scenario()).c_str(),
                           stdout);
            } else {
                std::fputs(io::save_scenario(sample_scenario()).c_str(),
                           stdout);
            }
            std::printf("\n");
            return 0;
        }
        if (command == "check")
            return cmd_check(argc - 2, argv + 2);
        if (argc < 3)
            return usage();
        if (command == "sweep") {
            // A document carrying a "sweep" object is a spec for the
            // parallel runner; a bare scenario keeps the legacy analytic
            // rate sweep.
            const io::Json doc = io::Json::parse(read_file(argv[2]));
            if (doc.is_object() && doc.contains("sweep"))
                return cmd_sweep_spec(doc, argc - 3, argv + 3);
            if (argc < 4)
                return usage();
            return cmd_sweep(io::scenario_from_json(doc), argc - 3,
                             argv + 3);
        }
        if (command == "faults") {
            if (argc < 4)
                return usage();
            return cmd_faults(load(argv[2]), argv[3], argc - 4, argv + 4);
        }
        if (command == "calibrate") {
            return cmd_calibrate(io::Json::parse(read_file(argv[2])),
                                 argc - 3, argv + 3);
        }
        if (command == "explore") {
            return cmd_explore(io::Json::parse(read_file(argv[2])),
                               argc - 3, argv + 3);
        }
        const io::Scenario sc = load(argv[2]);
        if (command == "estimate")
            return cmd_estimate(sc);
        if (command == "run")
            return cmd_run(sc, argc - 3, argv + 3);
        if (command == "trace")
            return cmd_trace(sc, argc - 3, argv + 3);
        if (command == "simulate") {
            const double seconds = argc > 3 ? std::atof(argv[3]) : 0.05;
            const std::uint64_t seed = argc > 4
                ? static_cast<std::uint64_t>(std::atoll(argv[4]))
                : 42;
            if (seconds <= 0.0) {
                std::fprintf(stderr, "bad duration\n");
                return 2;
            }
            return cmd_simulate(sc, seconds, seed);
        }
        if (command == "sensitivity") {
            const auto results =
                core::analyze_sensitivity(sc.graph, sc.hw, sc.traffic);
            std::printf("%-36s %12s %12s\n", "parameter", "d(cap)",
                        "d(latency)");
            for (const auto& s : results) {
                std::printf("%-36s %12.3f %12.3f\n", s.parameter.c_str(),
                            s.capacity_elasticity, s.latency_elasticity);
            }
            std::printf("\n(log-log elasticities: +1 = output scales "
                        "proportionally with the knob)\n");
            return 0;
        }
        if (command == "dot") {
            std::fputs(core::to_dot(sc.graph, sc.hw).c_str(), stdout);
            return 0;
        }
        return usage();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "lognic: %s\n", e.what());
        return 1;
    }
}
