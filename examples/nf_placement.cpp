/**
 * @file
 * Case-study-#4 explorer: where should each network function of the chain
 * FW -> LB -> DPI -> NAT -> PE run on a BlueField-2 — ARM cores or the
 * matching accelerator?
 *
 * Enumerates all 16 placements, prints the modelled capacity for small and
 * large packets, and shows which placement the LogNIC optimizer picks per
 * packet size (and why naive heuristics lose).
 */
#include <cstdio>

#include "lognic/apps/nf_chain.hpp"
#include "lognic/core/model.hpp"
#include "lognic/traffic/profiles.hpp"

using namespace lognic;

namespace {

double
capacity_gbps(const apps::NfPlacement& p, Bytes size)
{
    const auto sc = apps::make_nf_chain(p);
    const auto traffic =
        core::TrafficProfile::fixed(size, Bandwidth::from_gbps(100.0));
    return core::Model(sc.hw)
        .throughput(sc.graph, traffic)
        .capacity.gbps();
}

} // namespace

int
main()
{
    std::printf("%-34s %10s %10s\n", "placement", "64B Gbps", "1500B Gbps");
    for (const auto& p : apps::all_placements()) {
        std::printf("%-34s %10.2f %10.2f\n", p.to_string().c_str(),
                    capacity_gbps(p, Bytes{64.0}),
                    capacity_gbps(p, Bytes{1500.0}));
    }

    std::printf("\nLogNIC-opt placement per packet size:\n");
    for (Bytes size : traffic::standard_packet_sizes()) {
        const auto traffic =
            core::TrafficProfile::fixed(size, Bandwidth::from_gbps(50.0));
        const auto opt = apps::lognic_opt_placement(traffic);
        const auto sc = apps::make_nf_chain(opt);
        const auto rep = core::Model(sc.hw).estimate(sc.graph, traffic);
        std::printf("  %5.0fB -> %-34s %.2f Gbps, %.2f us "
                    "(bottleneck: %s)\n",
                    size.bytes(), opt.to_string().c_str(),
                    rep.throughput.capacity.gbps(),
                    rep.latency.mean.micros(),
                    rep.throughput.bottleneck().name.c_str());
    }

    std::printf("\nTakeaway: at 64B every offload's preparation overhead "
                "exceeds the NF's own cost, so everything stays on ARM; at "
                "MTU the ARM streaming cost dominates and all but the "
                "hash-backed LB move to accelerators.\n");
    return 0;
}
