/**
 * @file
 * The paper's fourth use case (S2.3 "Implementation portability"): predict
 * how an offloaded program behaves when ported to a different SmartNIC
 * *before* writing a line of device code.
 *
 * We take the inline crypto-acceleration program from case study #1 and
 * ask: what happens when it moves from the 25 GbE LiquidIO-II (on-chip
 * crypto fed by the CMI) to the 100 GbE BlueField-2 (crypto engines behind
 * the SoC interconnect, fatter port, fewer-but-faster cores)?
 */
#include <cstdio>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/core/model.hpp"
#include "lognic/devices/bluefield2.hpp"
#include "lognic/traffic/profiles.hpp"

using namespace lognic;

namespace {

/// The same program expressed against the BlueField-2 catalog.
struct PortedScenario {
    core::HardwareModel hw;
    core::ExecutionGraph graph;
};

PortedScenario
port_to_bluefield()
{
    core::HardwareModel hw = devices::bluefield2();
    // The orchestration loop on the ARM complex: packet RX/TX handling
    // plus the crypto offload preparation.
    const Seconds arm_cost = Seconds::from_micros(0.45)
        + devices::bf2_offload_prep(devices::NetworkFunction::kEncryption);
    const core::IpId arm = devices::add_arm_ip(hw, "arm-echo", arm_cost, 1.0);
    const core::IpId crypto = *hw.find_ip("crypto");

    core::ExecutionGraph g("inline-crypto-on-bf2");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto v_arm = g.add_ip_vertex("arm", arm);
    const auto v_crypto = g.add_ip_vertex("crypto", crypto);
    g.add_edge(in, v_arm);
    g.add_edge(v_arm, v_crypto, core::EdgeParams{1.0, 1.0, 0.0, {}});
    g.add_edge(v_crypto, out, core::EdgeParams{1.0, 1.0, 0.0, {}});
    return PortedScenario{std::move(hw), std::move(g)};
}

} // namespace

int
main()
{
    const auto source =
        apps::make_inline_accel(devices::LiquidIoKernel::kAes, 16);
    const auto target = port_to_bluefield();
    const core::Model src_model(source.hw);
    const core::Model dst_model(target.hw);

    std::printf("%10s %26s %26s\n", "", "LiquidIO-II (source)",
                "BlueField-2 (ported)");
    std::printf("%10s %14s %11s %14s %11s\n", "pktsize", "capacity",
                "bottleneck", "capacity", "bottleneck");
    for (Bytes size : traffic::standard_packet_sizes()) {
        const auto t = core::TrafficProfile::fixed(
            size, Bandwidth::from_gbps(100.0));
        const auto a = src_model.throughput(source.graph, t);
        const auto b = dst_model.throughput(target.graph, t);
        std::printf("%9.0fB %13.2fG %11s %13.2fG %11s\n", size.bytes(),
                    a.capacity.gbps(),
                    a.per_class[0].bottleneck.name.c_str(),
                    b.capacity.gbps(),
                    b.per_class[0].bottleneck.name.c_str());
    }

    std::printf(
        "\nPorting verdict: the BlueField-2 roughly doubles the attainable "
        "MTU bandwidth, but the bottleneck *moves* — on the LiquidIO the "
        "AES engine binds, on the BlueField the 8-core ARM orchestration "
        "loop does. The port therefore pays off only if the ARM-side "
        "per-packet cost also drops (e.g. hardware doorbells), which the "
        "model shows without touching either device.\n");
    return 0;
}
