/**
 * @file
 * Quickstart: model a SmartNIC-offloaded program with LogNIC in ~50 lines.
 *
 * We describe a toy SmartNIC (one CPU-core IP, one crypto accelerator),
 * express an offloaded program as an execution graph, and ask the model
 * for throughput (with the bottleneck) and latency — then cross-check the
 * analytic estimate against the packet-level simulator.
 */
#include <cstdio>

#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

int
main()
{
    // --- 1. Hardware model: interface 100G, memory 80G, 25 GbE ports. -----
    core::HardwareModel hw("toy-nic", Bandwidth::from_gbps(100.0),
                           Bandwidth::from_gbps(80.0),
                           Bandwidth::from_gbps(25.0));

    core::IpSpec cores;
    cores.name = "cores";
    cores.kind = core::IpKind::kCpuCores;
    cores.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(1.0),
                           Bandwidth::from_gigabytes_per_sec(4.0)},
        {});
    cores.max_engines = 8;
    cores.default_queue_capacity = 64;
    const core::IpId cores_id = hw.add_ip(cores);

    core::IpSpec crypto;
    crypto.name = "crypto";
    crypto.kind = core::IpKind::kAccelerator;
    crypto.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(0.4),
                           Bandwidth::from_gbps(400.0)},
        {{"feed", Bandwidth::from_gbps(50.0)}});
    crypto.max_engines = 2;
    crypto.default_queue_capacity = 32;
    const core::IpId crypto_id = hw.add_ip(crypto);

    // --- 2. Software execution graph: ingress -> cores -> crypto -> egress.
    core::ExecutionGraph g("quickstart");
    const auto ingress = g.add_ingress();
    const auto egress = g.add_egress();
    const auto v_cores = g.add_ip_vertex("cores", cores_id);
    const auto v_crypto = g.add_ip_vertex("crypto", crypto_id);
    g.add_edge(ingress, v_cores);
    g.add_edge(v_cores, v_crypto,
               core::EdgeParams{1.0, 0.0, 1.0, {}}); // payload via memory
    g.add_edge(v_crypto, egress);

    // --- 3. Traffic profile and estimation. --------------------------------
    const auto traffic = core::TrafficProfile::fixed(
        Bytes{1024.0}, Bandwidth::from_gbps(10.0));

    const core::Model model(hw);
    const core::Report report = model.estimate(g, traffic);

    std::printf("LogNIC estimate\n");
    std::printf("  capacity   : %.2f Gbps (bottleneck: %s)\n",
                report.throughput.capacity.gbps(),
                report.throughput.bottleneck().name.c_str());
    std::printf("  achieved   : %.2f Gbps at 10 Gbps offered\n",
                report.throughput.achieved.gbps());
    std::printf("  latency    : %.2f us (drop prob %.4f)\n",
                report.latency.mean.micros(),
                report.latency.max_drop_probability);

    // --- 4. Cross-check against the packet-level simulator. ----------------
    sim::SimOptions opts;
    opts.duration = 0.05;
    const sim::SimResult sim = sim::simulate(hw, g, traffic, opts);
    std::printf("Simulator (measured)\n");
    std::printf("  delivered  : %.2f Gbps\n", sim.delivered.gbps());
    std::printf("  latency    : %.2f us (p99 %.2f us, drop rate %.4f)\n",
                sim.mean_latency.micros(), sim.p99_latency.micros(),
                sim.drop_rate);
    return 0;
}
