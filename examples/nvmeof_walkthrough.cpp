/**
 * @file
 * Case-study-#2 walkthrough: model an NVMe-oF target on a SmartNIC JBOF
 * whose SSD is an opaque IP.
 *
 * Demonstrates the full S4.3/S4.7 methodology:
 *   1. characterize the drive by sweeping load and recording latency;
 *   2. curve-fit LogNIC parameters (occupancy, parallelism, base latency);
 *   3. build the Figure-2c execution graph around the calibrated IP;
 *   4. predict the latency-vs-throughput curve with the model and compare
 *      against the simulated testbed.
 */
#include <cstdio>

#include "lognic/apps/nvmeof.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

int
main()
{
    // Step 1: characterize the opaque drive (here: the synthetic ground
    // truth standing in for a physical SSD).
    const ssd::SsdGroundTruth drive;
    const auto workload = traffic::random_read_4k();
    const auto samples = drive.characterize(workload, 14);
    std::printf("characterized %zu load points, e.g. %.0f IOPS -> %.1f us\n",
                samples.size(), samples.front().offered.per_sec(),
                samples.front().latency.micros());

    // Step 2: curve-fit the LogNIC parameters.
    const auto calib = ssd::calibrate(samples, workload.block_size);
    std::printf("fitted: occupancy %.1f us, %u channels, base %.1f us, "
                "capacity %.2f GB/s (rmse %.2g)\n",
                calib.service_time.micros(), calib.parallelism,
                calib.base_latency.micros(),
                calib.capacity.gigabytes_per_sec(), calib.fit_rmse);

    // Step 3: the Figure-2c graph: eth -> cores(submit) -> ssd ->
    // cores(complete) -> eth, edges over DRAM and the PCIe link.
    const auto scenario = apps::make_nvmeof_target(calib, workload);
    const auto testbed = apps::make_nvmeof_testbed(drive, workload);
    const core::Model model(scenario.hw);

    // Step 4: sweep the ingress rate and compare.
    std::printf("\n%10s %14s %14s %14s\n", "load", "thr(GB/s)", "sim(us)",
                "model(us)");
    for (double frac : {0.25, 0.5, 0.75, 0.9}) {
        const auto traffic = core::TrafficProfile::fixed(
            workload.block_size, calib.capacity * frac);
        const auto rep = model.latency(scenario.graph, traffic);
        sim::SimOptions opts;
        opts.duration = 0.05;
        const auto res =
            sim::simulate(testbed.hw, testbed.graph, traffic, opts);
        std::printf("%9.0f%% %14.2f %14.1f %14.1f\n", 100.0 * frac,
                    res.delivered.gigabytes_per_sec(),
                    res.mean_latency.micros(), rep.mean.micros());
    }

    // Bonus: the per-hop breakdown the model gives for free.
    const auto traffic = core::TrafficProfile::fixed(workload.block_size,
                                                     calib.capacity * 0.5);
    const auto rep = model.latency(scenario.graph, traffic);
    std::printf("\nper-hop breakdown at 50%% load:\n");
    for (const auto& hop : rep.per_class[0].paths[0].hops) {
        std::printf("  %-14s Q=%6.2fus C=%6.2fus O=%6.2fus xfer=%6.2fus\n",
                    hop.vertex.c_str(), hop.queueing.micros(),
                    hop.compute.micros(), hop.overhead.micros(),
                    hop.transfer.micros());
    }
    return 0;
}
