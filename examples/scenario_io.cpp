/**
 * @file
 * The model's system interface as data: save a complete scenario
 * (hardware + execution graph + traffic) to JSON, load it back, estimate,
 * render the human-readable report, and export the graph as Graphviz.
 *
 * Pipe the DOT section into `dot -Tpng` to visualize the offloaded
 * program's structure.
 */
#include <cstdio>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/core/model.hpp"
#include "lognic/core/reporting.hpp"
#include "lognic/io/serialize.hpp"

using namespace lognic;

int
main()
{
    // Build a case-study scenario and bundle it.
    const auto sc = apps::make_inline_accel(devices::LiquidIoKernel::kAes, 12);
    const io::Scenario scenario{
        sc.hw, sc.graph,
        core::TrafficProfile::fixed(Bytes{1024.0},
                                    Bandwidth::from_gbps(18.0))};

    // Serialize and reload — the JSON is the interchange format a
    // config-driven workflow would consume.
    const std::string text = io::save_scenario(scenario);
    std::printf("serialized scenario: %zu bytes of JSON\n\n", text.size());
    const io::Scenario loaded = io::load_scenario(text);

    // Estimate from the reloaded scenario and render the full report.
    const core::Model model(loaded.hw);
    const core::Report report =
        model.estimate(loaded.graph, loaded.traffic);
    std::fputs(core::render_report(report, loaded.traffic).c_str(),
               stdout);

    std::printf("\n--- graphviz ---\n%s",
                core::to_dot(loaded.graph, loaded.hw).c_str());
    return 0;
}
