/**
 * @file
 * Case-study-#3 walkthrough: tune the per-stage core allocation of an E3
 * microservice chain with the LogNIC optimizer.
 *
 * Shows the three allocation schemes of the paper and the optimizer's
 * reasoning: per-stage costs differ, so the right core split is neither
 * "all cores run everything" (round-robin) nor "same share everywhere"
 * (equal partition).
 */
#include <cstdio>

#include "lognic/apps/microservices.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

int
main()
{
    const auto workload = apps::E3Workload::kNfvDin; // intrusion detection
    std::printf("workload %s stages:\n", apps::to_string(workload));
    for (const auto& stage : apps::e3_stages(workload)) {
        std::printf("  %-10s %.1f us + %.1f payload passes\n",
                    stage.name.c_str(), stage.fixed.micros(),
                    stage.stream_passes);
    }

    const auto traffic = core::TrafficProfile::fixed(
        apps::e3_request_size(), Bandwidth::from_gbps(4.0));

    const auto opt_alloc = apps::lognic_opt_alloc(workload, traffic);
    std::printf("\nLogNIC-opt core allocation over 16 cnMIPS cores:");
    for (auto c : opt_alloc)
        std::printf(" %u", c);
    std::printf("\n(the regex stage is ~3x the cost of parse/tx, so it "
                "gets the lion's share)\n\n");

    auto report = [&](const char* name,
                      const apps::MicroserviceScenario& sc) {
        const auto rep = core::Model(sc.hw).estimate(sc.graph, traffic);
        sim::SimOptions opts;
        opts.duration = 0.03;
        const auto res = sim::simulate(sc.hw, sc.graph, traffic, opts);
        std::printf("%-16s capacity %5.2f MRPS | simulated %5.2f MRPS, "
                    "%6.2f us\n",
                    name,
                    rep.throughput.capacity.bits_per_sec()
                        / apps::e3_request_size().bits() / 1e6,
                    res.delivered_ops.mops(), res.mean_latency.micros());
    };

    report("round-robin", apps::make_e3_run_to_completion(workload));
    report("equal-partition",
           apps::make_e3_pipeline(workload,
                                  apps::equal_partition_alloc(workload)));
    report("lognic-opt", apps::make_e3_pipeline(workload, opt_alloc));
    return 0;
}
