/**
 * @file
 * The placement study (S4.5, figures 13/14) as a design-space
 * exploration: search all 16 NF-chain placements for the Pareto frontier
 * of throughput vs p99 latency, DES-validate the survivors, and check
 * that the frontier contains the placement the LogNIC optimizer picks —
 * the paper's conclusion (offload what pays at MTU, keep the rest on
 * ARM), recovered by a generic search instead of a bespoke enumerator.
 *
 * Exits nonzero if the frontier misses the optimizer's placement, so CI
 * can run this as a conclusion-regression check.
 */
#include <cstdio>
#include <cstdlib>

#include "lognic/apps/nf_chain.hpp"
#include "lognic/dse/report.hpp"
#include "lognic/dse/spec.hpp"
#include "lognic/io/json.hpp"

using namespace lognic;

int
main()
{
    // The shipped sample spec IS the placement study: one
    // placement.nf_chain knob, exhaustive strategy, throughput vs p99.
    const io::Json doc = io::Json::parse(dse::sample_explore_spec());
    dse::ExploreSpec spec = dse::explore_spec_from_json(doc);
    const dse::FrontierReport report = dse::explore(
        spec.space, spec.objectives, spec.constraints, spec.options);
    std::fputs(dse::render(report).c_str(), stdout);

    // The optimizer's pick under the same traffic (50 Gbps at MTU).
    const auto traffic = core::TrafficProfile::fixed(
        Bytes{1500.0}, Bandwidth::from_gbps(50.0));
    const auto opt = apps::lognic_opt_placement(traffic);
    std::size_t opt_index = 0;
    const auto placements = apps::all_placements();
    for (std::size_t i = 0; i < placements.size(); ++i) {
        const auto& p = placements[i];
        if (p.fw == opt.fw && p.lb == opt.lb && p.nat == opt.nat
            && p.pe == opt.pe)
            opt_index = i;
    }
    std::printf("\nLogNIC-opt placement: %s (index %zu)\n",
                opt.to_string().c_str(), opt_index);

    for (const dse::FrontierEntry& e : report.frontier) {
        if (e.config.size() == 1 && e.config[0] == opt_index) {
            std::printf("frontier contains the optimizer's placement — "
                        "the generic search recovers the paper's "
                        "fig13/14 conclusion\n");
            return 0;
        }
    }
    std::fprintf(stderr, "FAIL: the Pareto frontier does not contain the "
                         "optimizer's placement (index %zu)\n",
                 opt_index);
    return 1;
}
