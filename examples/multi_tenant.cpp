/**
 * @file
 * The S3.7 generalization extensions in action:
 *   #1 consolidate two tenants' execution graphs on one SmartNIC;
 *   #2 mixed packet-size traffic profiles;
 *   #3 a rate limiter in front of a non-work-conserving IP.
 */
#include <cstdio>

#include "lognic/core/extensions.hpp"
#include "lognic/core/model.hpp"

using namespace lognic;

namespace {

core::HardwareModel
make_nic()
{
    core::HardwareModel hw("shared-nic", Bandwidth::from_gbps(100.0),
                           Bandwidth::from_gbps(80.0),
                           Bandwidth::from_gbps(50.0));
    core::IpSpec cores;
    cores.name = "cores";
    cores.kind = core::IpKind::kCpuCores;
    cores.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(0.6),
                           Bandwidth::from_gigabytes_per_sec(4.0)},
        {});
    cores.max_engines = 8;
    hw.add_ip(cores);
    return hw;
}

core::ExecutionGraph
tenant_graph(const core::HardwareModel& hw, const std::string& name,
             double share)
{
    core::ExecutionGraph g(name);
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    core::VertexParams vp;
    vp.partition = share; // gamma: this tenant's slice of the cores
    const auto v = g.add_ip_vertex("cores", *hw.find_ip("cores"), vp);
    g.add_edge(in, v, core::EdgeParams{1.0, 0.0, 1.0, {}});
    g.add_edge(v, out);
    return g;
}

} // namespace

int
main()
{
    const core::HardwareModel hw = make_nic();

    // Extension #1: two tenants share the NIC 2:1, each owning a matching
    // slice of the cores via the node-partition parameter gamma.
    const auto g_big = tenant_graph(hw, "tenant-A", 2.0 / 3.0);
    const auto g_small = tenant_graph(hw, "tenant-B", 1.0 / 3.0);
    const auto traffic = core::TrafficProfile::fixed(
        Bytes{1024.0}, Bandwidth::from_gbps(30.0));
    const auto cons = core::consolidate(
        hw, {{&g_big, traffic, 2.0}, {&g_small, traffic, 1.0}});
    std::printf("consolidated NIC capacity %.2f Gbps (bottleneck: %s)\n",
                cons.total_capacity.gbps(), cons.bottleneck.name.c_str());
    for (std::size_t t = 0; t < cons.tenants.size(); ++t) {
        std::printf("  tenant %zu: %.2f Gbps, %.2f us\n", t,
                    cons.tenants[t].capacity.gbps(),
                    cons.tenants[t].latency.micros());
    }

    // Extension #2: one tenant's traffic is a 64B/1500B mix; each class is
    // modelled at its own operating point and dist_size-weighted.
    const auto mixed = core::TrafficProfile::mixed(
        {{Bytes{64.0}, 0.3}, {Bytes{1500.0}, 0.7}},
        Bandwidth::from_gbps(10.0));
    const core::Model model(hw);
    const auto rep = model.estimate(g_big, mixed);
    std::printf("\nmixed traffic: capacity %.2f Gbps, latency %.2f us\n",
                rep.throughput.capacity.gbps(), rep.latency.mean.micros());
    for (std::size_t c = 0; c < rep.throughput.per_class.size(); ++c) {
        std::printf("  class %zu (%.0fB): %.2f Gbps, bottleneck %s\n", c,
                    mixed.classes()[c].size.bytes(),
                    rep.throughput.per_class[c].capacity.gbps(),
                    rep.throughput.per_class[c].bottleneck.name.c_str());
    }

    // Extension #3: shape tenant B to 5 Gbps with a rate-limiter pseudo-IP
    // (the modelling device for non-work-conserving engines).
    core::ExecutionGraph shaped = g_small;
    core::insert_rate_limiter(shaped, *shaped.find_vertex("cores"),
                              Bandwidth::from_gbps(5.0), 16);
    const auto shaped_rep = model.estimate(shaped, traffic);
    std::printf("\nshaped tenant-B: capacity %.2f Gbps (%s), drop prob at "
                "30 Gbps offered: %.2f\n",
                shaped_rep.throughput.capacity.gbps(),
                shaped_rep.throughput.bottleneck().name.c_str(),
                shaped_rep.latency.max_drop_probability);
    return 0;
}
