/**
 * @file
 * Round-trip calibration demo: re-derive the LiquidIO-II CN2360 catalog
 * from DES-generated measurements (the repository's stand-in for a real
 * testbed).
 *
 * The walkthrough follows the paper's S4.3/S4.7 methodology end to end:
 *
 *   1. take the true CN2360 catalog and the MD5 inline-acceleration
 *      program (case study #1) as the "physical device";
 *   2. run the packet-level simulator over a rate x packet-size grid to
 *      collect (traffic, throughput, latency) observations;
 *   3. deliberately warp the catalog — as if we only had vague vendor
 *      numbers — and hand the calibrator the warped catalog, the
 *      measurements, and three free parameters;
 *   4. fit, and check the recovered catalog predicts *held-out* operating
 *      points within 10% mean relative throughput error.
 *
 * The CMI bandwidth is included as a free parameter on purpose: the MD5
 * accelerator saturates long before the 50 Gbps CMI feed binds, so the
 * measurements only weakly constrain it. The printed true/warped/fitted
 * comparison makes the resulting drift visible — a weakly-identified
 * parameter can land far from its true value while the catalog still
 * predicts held-out workloads accurately, which is why the acceptance
 * check is goodness-of-fit on holdout data, not parameter recovery.
 */
#include <cstdio>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/calib/calibrator.hpp"
#include "lognic/devices/liquidio.hpp"

using namespace lognic;

int
main()
{
    // --- 1. The "physical device": true catalog + offloaded program ----
    const apps::InlineAccelScenario sc =
        apps::make_inline_accel(devices::LiquidIoKernel::kMd5, 16);

    // --- 2. Measure it: DES over a rate x packet-size grid -------------
    // Rates straddle the MD5 engine's knee (1.8 Mops => ~14.7 Gbps at
    // 1 KiB packets, ~3.7 Gbps at 256 B), so the grid sees both the
    // linear region and saturation for every packet size.
    calib::GenerationSpec gen;
    gen.rates_gbps = {2.0, 4.0, 8.0, 12.0, 16.0, 20.0};
    gen.packet_sizes_bytes = {256.0, 512.0, 1024.0, 1518.0};
    gen.replications = 1;
    gen.root_seed = 7;
    gen.threads = 4;
    gen.sim.duration = 0.004;

    const core::TrafficProfile base_traffic = core::TrafficProfile::fixed(
        Bytes{1024}, devices::liquidio_line_rate());
    const calib::Dataset data =
        calib::generate_dataset(sc.hw, sc.graph, base_traffic, gen);
    std::printf("measured %zu operating points on the true catalog\n",
                data.size());

    // --- 3. Warp the catalog: what a rough vendor sheet might say ------
    // MD5 engine 2.2x too slow, core orchestration 1.8x too cheap, CMI
    // 1.4x too fat. The warped candidate is the calibration's base.
    calib::Candidate truth{sc.hw, {sc.graph}};
    calib::ParameterSpace probe(truth);
    probe.add("ip.md5.fixed_cost_us");
    probe.add("ip.cores-md5.fixed_cost_us");
    probe.add("memory_gbps");
    const solver::Vector x_true = probe.initial();
    const calib::Candidate warped =
        probe.apply({x_true[0] * 2.2, x_true[1] / 1.8, x_true[2] * 1.4});

    calib::ParameterSpace space(warped);
    space.add("ip.md5.fixed_cost_us");
    space.add("ip.cores-md5.fixed_cost_us");
    space.add("memory_gbps");

    // --- 4. Calibrate and validate on held-out points ------------------
    calib::CalibratorOptions opts;
    opts.fit.backend = calib::Backend::kLeastSquares;
    opts.fit.starts = 3;
    opts.fit.threads = 4;
    opts.fit.seed = 7;
    opts.loss.throughput_weight = 1.0;
    opts.loss.latency_weight = 0.25;
    opts.holdout_fraction = 0.25;

    const calib::Calibrator calibrator(space, data, opts);
    const calib::CalibrationReport report = calibrator.fit();
    std::printf("%s\n", calib::render(report).c_str());

    for (std::size_t i = 0; i < report.parameter_names.size(); ++i) {
        std::printf("%-28s true %10.4f  warped %10.4f  fitted %10.4f\n",
                    report.parameter_names[i].c_str(), x_true[i],
                    report.initial[i], report.fitted[i]);
    }

    const double holdout = report.holdout_error.throughput;
    std::printf("holdout mean |rel throughput error| = %.2f%% "
                "(acceptance: < 10%%)\n",
                100.0 * holdout);
    if (holdout >= 0.10) {
        std::printf("FAILED: fitted catalog does not generalize\n");
        return 1;
    }
    std::printf("OK: recovered catalog generalizes to unseen workloads\n");
    return 0;
}
