/**
 * @file
 * Bottleneck hunting end to end: start from a slow offloaded program, let
 * the sensitivity analysis rank the knobs, then hand the top knob to the
 * satisficing optimizer with an explicit performance goal (Figure 4b) and
 * verify the fix in the simulator.
 */
#include <cstdio>

#include "lognic/core/model.hpp"
#include "lognic/core/optimizer.hpp"
#include "lognic/core/sensitivity.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

namespace {

core::HardwareModel
make_nic()
{
    core::HardwareModel hw("hunt-nic", Bandwidth::from_gbps(100.0),
                           Bandwidth::from_gbps(80.0),
                           Bandwidth::from_gbps(100.0));
    core::IpSpec parse;
    parse.name = "parser";
    parse.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(0.2),
                           Bandwidth::from_gigabytes_per_sec(8.0)},
        {});
    parse.max_engines = 8;
    hw.add_ip(parse);

    core::IpSpec work;
    work.name = "workers";
    work.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(1.2),
                           Bandwidth::from_gigabytes_per_sec(2.0)},
        {});
    work.max_engines = 12;
    hw.add_ip(work);
    return hw;
}

core::ExecutionGraph
make_graph(const core::HardwareModel& hw, std::uint32_t workers)
{
    core::ExecutionGraph g("pipeline");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    core::VertexParams pp;
    pp.parallelism = 4;
    const auto v1 = g.add_ip_vertex("parser", *hw.find_ip("parser"), pp);
    core::VertexParams wp;
    wp.parallelism = workers;
    const auto v2 = g.add_ip_vertex("workers", *hw.find_ip("workers"), wp);
    g.add_edge(in, v1);
    g.add_edge(v1, v2, core::EdgeParams{1.0, 0.0, 1.0, {}});
    g.add_edge(v2, out);
    return g;
}

} // namespace

int
main()
{
    const auto hw = make_nic();
    const auto traffic = core::TrafficProfile::fixed(
        Bytes{1024.0}, Bandwidth::from_gbps(18.0));
    const auto initial = make_graph(hw, 3); // under-provisioned workers

    // Step 1: where does the time go?
    const core::Model model(hw);
    const auto before = model.estimate(initial, traffic);
    std::printf("initial: capacity %.2f Gbps (bottleneck %s), latency "
                "%.2f us\n\n",
                before.throughput.capacity.gbps(),
                before.throughput.bottleneck().name.c_str(),
                before.latency.mean.micros());

    // Step 2: sensitivity ranking.
    std::printf("%-34s %10s %10s\n", "knob", "d(cap)", "d(lat)");
    for (const auto& s : core::analyze_sensitivity(initial, hw, traffic)) {
        std::printf("%-34s %10.3f %10.3f\n", s.parameter.c_str(),
                    s.capacity_elasticity, s.latency_elasticity);
    }

    // Step 3: the top knob is the workers' parallelism. Ask the
    // satisficing optimizer for a worker count meeting throughput
    // >= 20 Gbps and mean latency <= 5 us (latency-optimal tie-break).
    core::SatisficeProblem problem;
    problem.graph = initial;
    problem.traffic = traffic;
    problem.apply = [](core::ExecutionGraph& g, core::TrafficProfile&,
                       const solver::IntVector& x) {
        g.vertex(*g.find_vertex("workers")).params.parallelism =
            static_cast<std::uint32_t>(x[0]);
    };
    problem.ranges = {{1, 12, 1}};
    problem.objective = core::Objective::kMinimizeLatency;
    problem.goals.push_back(core::PerformanceGoal{
        "throughput>=20G",
        [](const core::Report& r) {
            return 20.0 - r.throughput.capacity.gbps();
        }});
    problem.goals.push_back(core::PerformanceGoal{
        "latency<=5us",
        [](const core::Report& r) {
            return r.latency.mean.micros() - 5.0;
        }});
    const core::Optimizer opt(hw);
    const auto res = opt.satisfice(problem);
    if (!res.satisfied) {
        std::printf("\nno configuration met the goals\n");
        return 1;
    }
    std::printf("\nsatisficed with %lld workers: capacity %.2f Gbps, "
                "latency %.2f us\n",
                static_cast<long long>(res.xi[0]),
                res.report.throughput.capacity.gbps(),
                res.report.latency.mean.micros());

    // Step 4: confirm in the simulator.
    const auto fixed =
        make_graph(hw, static_cast<std::uint32_t>(res.xi[0]));
    sim::SimOptions opts;
    opts.duration = 0.05;
    const auto measured = sim::simulate(hw, fixed, traffic, opts);
    std::printf("simulator confirms: %.2f Gbps delivered, %.2f us mean "
                "(p99 %.2f us)\n",
                measured.delivered.gbps(), measured.mean_latency.micros(),
                measured.p99_latency.micros());
    return 0;
}
