/**
 * @file
 * Fault sweep: graceful degradation under engine failures, and a campaign
 * that survives its own bad points.
 *
 * Three things happen here:
 *  1. A FaultPlan kills engines of the bottleneck IP mid-run and the
 *     simulator reports delivery with cause-labeled drop accounting.
 *  2. The analytical model predicts the same degradation as a curve of
 *     throughput/latency vs fraction of engines lost, cross-checked
 *     against the faulted simulation.
 *  3. A guarded sweep runs a rate grid where one point is deliberately
 *     broken (impossible parallelism) and one is strangled by a tiny
 *     event budget — the campaign still completes, reporting both as
 *     structured records instead of dying.
 */
#include <cstdio>

#include "lognic/core/model.hpp"
#include "lognic/fault/degradation.hpp"
#include "lognic/fault/fault_plan.hpp"
#include "lognic/runner/sweep.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

namespace {

core::HardwareModel
make_hw()
{
    core::HardwareModel hw("fault-demo-nic", Bandwidth::from_gbps(100.0),
                           Bandwidth::from_gbps(80.0),
                           Bandwidth::from_gbps(25.0));
    core::IpSpec cores;
    cores.name = "cores";
    cores.kind = core::IpKind::kCpuCores;
    cores.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(1.0),
                           Bandwidth::from_gigabytes_per_sec(4.0)},
        {});
    cores.max_engines = 8;
    cores.default_queue_capacity = 64;
    hw.add_ip(cores);
    return hw;
}

core::ExecutionGraph
make_graph(const core::HardwareModel& hw)
{
    core::ExecutionGraph g("fault-demo");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto v = g.add_ip_vertex("cores", *hw.find_ip("cores"));
    g.add_edge(in, v);
    g.add_edge(v, out);
    return g;
}

} // namespace

int
main()
{
    const auto hw = make_hw();
    const auto g = make_graph(hw);
    const auto traffic = core::TrafficProfile::fixed(
        Bytes{1024.0}, Bandwidth::from_gbps(10.0));

    // --- 1. Fault-injected simulation: lose half the engines mid-run. ----
    fault::FaultPlan plan;
    fault::FaultEvent fail;
    fail.at = 0.01;
    fail.kind = fault::FaultKind::kEngineFail;
    fail.target = "cores";
    fail.count = 4;
    plan.events.push_back(fail);

    sim::SimOptions opts;
    opts.duration = 0.03;
    opts.faults = plan;
    const auto faulted = sim::simulate(hw, g, traffic, opts);
    std::printf("faulted run (4/8 engines lost at t=10ms)\n");
    std::printf("  delivered  : %.2f Gbps, mean latency %.2f us\n",
                faulted.delivered.gbps(), faulted.mean_latency.micros());
    std::printf("  conserved  : %llu = %llu completed + %llu dropped "
                "+ %llu in flight\n",
                static_cast<unsigned long long>(faulted.generated),
                static_cast<unsigned long long>(faulted.completed_total),
                static_cast<unsigned long long>(faulted.dropped_total),
                static_cast<unsigned long long>(faulted.in_flight));

    // --- 2. The model-side graceful-degradation curve. -------------------
    const auto curve = fault::degradation_curve(hw, g, traffic, "cores");
    std::printf("\ngraceful degradation of 'cores' (analytical)\n");
    std::printf("%8s %10s %12s %12s\n", "failed", "fraction", "achieved",
                "mean(us)");
    for (const auto& pt : curve.points)
        std::printf("%8u %9.0f%% %11.2fG %12.3f\n", pt.engines_failed,
                    100.0 * pt.fraction_failed, pt.achieved.gbps(),
                    pt.mean_latency.micros());

    // --- 3. A guarded sweep that survives a bad point and a runaway. -----
    runner::Sweep sweep;
    for (double gbps : {4.0, 8.0, 12.0}) {
        char label[32];
        std::snprintf(label, sizeof label, "rate=%gGbps", gbps);
        runner::SweepPoint pt{
            label, hw, g,
            core::TrafficProfile::fixed(Bytes{1024.0},
                                        Bandwidth::from_gbps(gbps)),
            {}};
        pt.options.duration = 0.005;
        if (gbps == 8.0) {
            // Deliberately broken: more engines than the IP has.
            pt.graph.vertex(*pt.graph.find_vertex("cores"))
                .params.parallelism = 99;
        }
        if (gbps == 12.0)
            pt.options.watchdog.max_events = 2000; // strangled on purpose
        sweep.add(pt);
    }
    runner::SweepOptions so;
    so.threads = 2;
    so.max_retries = 1;
    const auto report = sweep.run_guarded(so);
    std::printf("\nguarded sweep: %zu ok, %zu failed, %zu truncated\n",
                report.results.size(), report.failed.size(),
                report.truncated.size());
    for (const auto& pr : report.results)
        std::printf("  ok        %-14s %.2f Gbps\n", pr.label.c_str(),
                    pr.stats.delivered_gbps.mean);
    for (const auto& f : report.failed)
        std::printf("  failed    %-14s after %zu attempt(s): %s\n",
                    f.label.c_str(), f.attempts, f.error.c_str());
    for (const auto& t : report.truncated)
        std::printf("  truncated %-14s (%s) reached t=%.6fs\n",
                    t.label.c_str(), t.reason.c_str(), t.sim_time_reached);
    return report.failed.size() == 1 ? 0 : 1;
}
